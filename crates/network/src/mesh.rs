//! Wormhole-routed 2D mesh (Section 5.3 of the paper).

use dirext_kernel::{Resource, Time};
use dirext_trace::NodeId;

use crate::{Envelope, Network, TrafficStats};

/// A wormhole-routed 2D mesh with dimension-order (X then Y) routing.
///
/// The paper's meshes are "wormhole-routed with two phases (routing +
/// transfer), and are clocked at the same frequency as the processors
/// (100 MHz)" with link widths of 64, 32, and 16 bits. We model:
///
/// * a per-hop header latency of `router_delay` cycles (the two phases),
/// * a body occupancy of `ceil(8 * bytes / link_bits)` cycles (one flit per
///   link cycle),
/// * per-link contention: the head flit waits for each link to become free,
///   and while the body streams through a link that link is unavailable to
///   other messages. This captures wormhole head-of-line blocking at
///   message granularity, which is what saturates the 16-bit mesh in
///   Table 3.
///
/// # Example
///
/// ```
/// use dirext_kernel::Time;
/// use dirext_network::{Envelope, MeshNetwork, Network, TrafficClass};
/// use dirext_trace::NodeId;
///
/// let mut mesh = MeshNetwork::new(4, 4, 64);
/// // 1 hop, 40-byte message on 64-bit links: 2 (router) + 5 (flits).
/// let arrival = mesh.send(
///     Time::ZERO,
///     Envelope::new(NodeId(0), NodeId(1), 40, TrafficClass::Data),
/// );
/// assert_eq!(arrival, Time::from_cycles(7));
/// ```
#[derive(Debug)]
pub struct MeshNetwork {
    cols: usize,
    rows: usize,
    link_bits: u32,
    router_delay: u64,
    /// One `Resource` per unidirectional link. Links are indexed by
    /// `(from_router * 4) + direction`.
    links: Vec<Resource>,
    /// Precomputed X-Y routes for every `(src, dst)` pair. Dimension-order
    /// routes are static, so `send` only walks an arena slice instead of
    /// re-deriving the path (which previously needed a recycled scratch
    /// `Vec` to stay allocation-free).
    routes: RouteTable,
    traffic: TrafficStats,
    name: String,
}

/// All `(src, dst)` routes of a mesh, stored back-to-back in one hop arena.
///
/// `spans[src * nodes + dst]` is the `(offset, len)` of that pair's link
/// sequence inside `hops`. Built once at construction; `send` is then a
/// pure table walk with zero per-message work beyond the links themselves.
#[derive(Debug)]
struct RouteTable {
    hops: Vec<u32>,
    spans: Vec<(u32, u16)>,
    nodes: usize,
}

impl RouteTable {
    /// Offset/length of the `src -> dst` route inside the hop arena.
    #[inline]
    fn span(&self, src: NodeId, dst: NodeId) -> (usize, usize) {
        let (off, len) = self.spans[src.idx() * self.nodes + dst.idx()];
        (off as usize, len as usize)
    }
}

/// Direction of a unidirectional mesh link out of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn idx(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

impl MeshNetwork {
    /// Creates a `cols × rows` mesh with the given link width in bits.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `link_bits` is zero.
    pub fn new(cols: usize, rows: usize, link_bits: u32) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        assert!(link_bits > 0, "link width must be positive");
        assert!(
            cols * rows <= 256,
            "the flat mesh precomputes all-pairs routes and stops at 256 nodes; \
             use HierMeshNetwork for larger machines"
        );
        let mut mesh = MeshNetwork {
            cols,
            rows,
            link_bits,
            router_delay: 2,
            links: vec![Resource::new(); cols * rows * 4],
            routes: RouteTable {
                hops: Vec::new(),
                spans: Vec::new(),
                nodes: cols * rows,
            },
            traffic: TrafficStats::new(),
            name: format!("mesh{cols}x{rows}-{link_bits}bit"),
        };
        let nodes = cols * rows;
        let mut hops = Vec::with_capacity(nodes * nodes * (cols + rows) / 2);
        let mut spans = Vec::with_capacity(nodes * nodes);
        let mut path = Vec::with_capacity(cols + rows);
        for src in 0..nodes {
            for dst in 0..nodes {
                path.clear();
                mesh.route_into(NodeId(src as u16), NodeId(dst as u16), &mut path);
                spans.push((hops.len() as u32, path.len() as u16));
                hops.extend(path.iter().map(|&l| l as u32));
            }
        }
        mesh.routes.hops = hops;
        mesh.routes.spans = spans;
        mesh
    }

    /// The paper's 16-node mesh (4×4) with the given link width (64, 32 or
    /// 16 bits in Section 5.3).
    pub fn paper_mesh(link_bits: u32) -> Self {
        Self::new(4, 4, link_bits)
    }

    /// Link width in bits.
    pub fn link_bits(&self) -> u32 {
        self.link_bits
    }

    fn coords(&self, n: NodeId) -> (usize, usize) {
        let i = n.idx();
        debug_assert!(i < self.cols * self.rows, "node id off the mesh");
        (i % self.cols, i / self.cols)
    }

    /// Body occupancy of a message in link cycles (flits).
    fn flits(&self, bytes: u32) -> u64 {
        Envelope::flits_on(bytes, self.link_bits)
    }

    fn link_index(&self, x: usize, y: usize, dir: Dir) -> usize {
        (y * self.cols + x) * 4 + dir.idx()
    }

    /// The sequence of link indices a message traverses under X-Y routing,
    /// appended to `path`.
    fn route_into(&self, src: NodeId, dst: NodeId, path: &mut Vec<usize>) {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        while x != dx {
            let dir = if dx > x { Dir::East } else { Dir::West };
            path.push(self.link_index(x, y, dir));
            if dx > x {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if dy > y { Dir::South } else { Dir::North };
            path.push(self.link_index(x, y, dir));
            if dy > y {
                y += 1;
            } else {
                y -= 1;
            }
        }
    }

    /// The arena-stored route for a pair (reads what `send` will walk).
    #[cfg(test)]
    fn route(&self, src: NodeId, dst: NodeId) -> Vec<usize> {
        let (off, len) = self.routes.span(src, dst);
        self.routes.hops[off..off + len]
            .iter()
            .map(|&l| l as usize)
            .collect()
    }
}

impl Network for MeshNetwork {
    fn send(&mut self, now: Time, env: Envelope) -> Time {
        if env.is_local() {
            return now;
        }
        self.traffic.record(&env);
        let flits = self.flits(env.bytes);
        let mut head = now;
        let (off, len) = self.routes.span(env.src, env.dst);
        for i in off..off + len {
            // The head flit must wait for the link, then spends the router
            // delay; the body then streams for `flits` cycles, keeping the
            // link busy for router_delay + flits.
            let link = self.routes.hops[i] as usize;
            let start =
                self.links[link].acquire(head, Time::from_cycles(self.router_delay + flits));
            head = start + Time::from_cycles(self.router_delay);
        }
        head + Time::from_cycles(flits)
    }

    fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Any remote message crosses at least one link: one router delay for
    /// the head plus at least one flit of payload, with contention only
    /// adding time.
    fn min_remote_latency(&self) -> Option<Time> {
        Some(Time::from_cycles(self.router_delay + 1))
    }
}

/// A hierarchical two-level wormhole mesh for machines past the flat
/// mesh's route-table budget: nodes are grouped into 4×4 clusters (each an
/// ordinary wormhole mesh), and the clusters themselves form a 2D mesh of
/// *express links* between cluster gateways (each cluster's local node 0).
///
/// An inter-cluster message rides its source cluster's mesh to the
/// gateway, crosses the cluster grid on express links (dimension-order,
/// like any mesh), and descends the destination cluster's mesh. Express
/// hops charge a higher per-hop router delay (longer, pipelined wires)
/// but the same link width, so wide machines keep the flit model of
/// Section 5.3. 1024 nodes = 64 clusters = an 8×8 express grid.
///
/// Unlike [`MeshNetwork`], routes are derived on the fly into a recycled
/// scratch buffer: an all-pairs table for 1024 nodes would dwarf the
/// caches the simulator is trying to model. Steady-state sends still do
/// not allocate (the scratch's capacity is reused).
#[derive(Debug)]
pub struct HierMeshNetwork {
    /// Intra-cluster mesh width (4 for full clusters); row count follows
    /// from `cluster_size`.
    ccols: usize,
    /// Cluster-grid width; row count follows from the cluster count.
    gcols: usize,
    cluster_size: usize,
    link_bits: u32,
    /// Per-hop header latency inside a cluster.
    router_delay: u64,
    /// Per-hop header latency on an express link.
    express_delay: u64,
    /// Intra-cluster links first (`(cluster * cluster_size + router) * 4 +
    /// dir`), then express links (`express_base + grid_router * 4 + dir`).
    links: Vec<Resource>,
    express_base: usize,
    /// Recycled route buffer (`send` is allocation-free in steady state).
    scratch: Vec<usize>,
    traffic: TrafficStats,
    name: String,
}

impl HierMeshNetwork {
    /// Creates a hierarchical mesh covering `nodes` processors with the
    /// given link width in bits.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `link_bits` is zero.
    pub fn new(nodes: usize, link_bits: u32) -> Self {
        assert!(nodes > 0, "a network needs nodes");
        assert!(link_bits > 0, "link width must be positive");
        let cluster_size = nodes.min(16);
        let clusters = nodes.div_ceil(cluster_size);
        let ccols = (cluster_size as f64).sqrt().ceil() as usize;
        let crows = cluster_size.div_ceil(ccols.max(1));
        let gcols = (clusters as f64).sqrt().ceil() as usize;
        let grows = clusters.div_ceil(gcols.max(1));
        let express_base = clusters * cluster_size * 4;
        HierMeshNetwork {
            ccols,
            gcols,
            cluster_size,
            link_bits,
            router_delay: 2,
            express_delay: 4,
            links: vec![Resource::new(); express_base + gcols * grows * 4],
            express_base,
            scratch: Vec::with_capacity(2 * (ccols + crows) + gcols + grows),
            traffic: TrafficStats::new(),
            name: format!("hmesh{gcols}x{grows}x{cluster_size}-{link_bits}bit"),
        }
    }

    /// Link width in bits.
    pub fn link_bits(&self) -> u32 {
        self.link_bits
    }

    fn flits(&self, bytes: u32) -> u64 {
        Envelope::flits_on(bytes, self.link_bits)
    }

    /// Appends the X-Y route `from -> to` on a `cols`-wide grid to `path`,
    /// mapping each hop through `link_of(router, dir)`.
    fn grid_route(
        cols: usize,
        from: usize,
        to: usize,
        path: &mut Vec<usize>,
        link_of: impl Fn(usize, Dir) -> usize,
    ) {
        let (mut x, mut y) = (from % cols, from / cols);
        let (dx, dy) = (to % cols, to / cols);
        while x != dx {
            let dir = if dx > x { Dir::East } else { Dir::West };
            path.push(link_of(y * cols + x, dir));
            if dx > x {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if dy > y { Dir::South } else { Dir::North };
            path.push(link_of(y * cols + x, dir));
            if dy > y {
                y += 1;
            } else {
                y -= 1;
            }
        }
    }

    /// Builds the full route into the scratch buffer: intra-cluster ascent
    /// to the gateway, express traversal of the cluster grid, intra-cluster
    /// descent. Same-cluster traffic never touches an express link.
    fn route_into(&self, src: NodeId, dst: NodeId, path: &mut Vec<usize>) {
        let (sc, sl) = (src.idx() / self.cluster_size, src.idx() % self.cluster_size);
        let (dc, dl) = (dst.idx() / self.cluster_size, dst.idx() % self.cluster_size);
        let intra = |cluster: usize| {
            move |router: usize, dir: Dir| (cluster * self.cluster_size + router) * 4 + dir.idx()
        };
        if sc == dc {
            Self::grid_route(self.ccols, sl, dl, path, intra(sc));
            return;
        }
        Self::grid_route(self.ccols, sl, 0, path, intra(sc));
        let express_start = path.len();
        Self::grid_route(self.gcols, sc, dc, path, |router, dir| {
            self.express_base + router * 4 + dir.idx()
        });
        debug_assert!(path.len() > express_start, "distinct clusters need hops");
        Self::grid_route(self.ccols, 0, dl, path, intra(dc));
    }
}

impl Network for HierMeshNetwork {
    fn send(&mut self, now: Time, env: Envelope) -> Time {
        if env.is_local() {
            return now;
        }
        self.traffic.record(&env);
        let flits = self.flits(env.bytes);
        let mut path = std::mem::take(&mut self.scratch);
        path.clear();
        self.route_into(env.src, env.dst, &mut path);
        let mut head = now;
        for &link in &path {
            let delay = if link >= self.express_base {
                self.express_delay
            } else {
                self.router_delay
            };
            let start = self.links[link].acquire(head, Time::from_cycles(delay + flits));
            head = start + Time::from_cycles(delay);
        }
        self.scratch = path;
        head + Time::from_cycles(flits)
    }

    fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Every remote path has at least one intra-cluster hop (and express
    /// hops are strictly slower per hop), so the flat-mesh bound holds.
    fn min_remote_latency(&self) -> Option<Time> {
        Some(Time::from_cycles(self.router_delay + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficClass;
    use proptest::prelude::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    fn env(src: u16, dst: u16, bytes: u32) -> Envelope {
        Envelope::new(NodeId(src), NodeId(dst), bytes, TrafficClass::Data)
    }

    #[test]
    fn flit_count_rounds_up() {
        let mesh = MeshNetwork::paper_mesh(64);
        assert_eq!(mesh.flits(40), 5); // 320 bits / 64
        assert_eq!(mesh.flits(8), 1);
        assert_eq!(mesh.flits(9), 2); // 72 bits -> 2 flits
        let narrow = MeshNetwork::paper_mesh(16);
        assert_eq!(narrow.flits(40), 20);
    }

    #[test]
    fn route_arena_matches_fresh_derivation() {
        for dims in [(4usize, 4usize), (3, 5), (1, 7)] {
            let mesh = MeshNetwork::new(dims.0, dims.1, 32);
            for src in 0..dims.0 * dims.1 {
                for dst in 0..dims.0 * dims.1 {
                    let (s, d) = (NodeId(src as u16), NodeId(dst as u16));
                    let mut fresh = Vec::new();
                    mesh.route_into(s, d, &mut fresh);
                    assert_eq!(mesh.route(s, d), fresh, "{dims:?} {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn xy_route_lengths() {
        let mesh = MeshNetwork::paper_mesh(64);
        // Node 0 = (0,0); node 15 = (3,3): 6 hops.
        assert_eq!(mesh.route(NodeId(0), NodeId(15)).len(), 6);
        assert_eq!(mesh.route(NodeId(0), NodeId(3)).len(), 3);
        assert_eq!(mesh.route(NodeId(5), NodeId(5)).len(), 0);
        // Route back differs in links but not in length.
        assert_eq!(mesh.route(NodeId(15), NodeId(0)).len(), 6);
    }

    #[test]
    fn uncontended_latency() {
        let mut mesh = MeshNetwork::paper_mesh(64);
        // 0 -> 15: 6 hops * 2 cycles + 5 flits = 17.
        assert_eq!(mesh.send(t(0), env(0, 15, 40)), t(17));
    }

    #[test]
    fn contention_on_shared_link_delays_second_message() {
        let mut mesh = MeshNetwork::paper_mesh(16);
        // Both messages cross the same first link (0 -> 1 eastbound).
        let a = mesh.send(t(0), env(0, 1, 40));
        let b = mesh.send(t(0), env(0, 1, 40));
        assert!(b > a, "second message must queue behind the first");
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut mesh = MeshNetwork::paper_mesh(16);
        let a = mesh.send(t(0), env(0, 1, 40));
        let b = mesh.send(t(0), env(15, 14, 40));
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn narrower_links_are_slower() {
        let mut wide = MeshNetwork::paper_mesh(64);
        let mut narrow = MeshNetwork::paper_mesh(16);
        let a = wide.send(t(0), env(0, 15, 40));
        let b = narrow.send(t(0), env(0, 15, 40));
        assert!(b > a);
    }

    #[test]
    fn hier_mesh_same_cluster_matches_flat_mesh() {
        // 16 nodes = one full cluster: the hierarchy degenerates to 4x4.
        let mut hier = HierMeshNetwork::new(16, 64);
        let mut flat = MeshNetwork::paper_mesh(64);
        for (s, d) in [(0u16, 15u16), (3, 12), (5, 5), (15, 0)] {
            assert_eq!(
                hier.send(t(0), env(s, d, 40)),
                flat.send(t(0), env(s, d, 40)),
                "{s}->{d}"
            );
        }
    }

    #[test]
    fn hier_mesh_scales_to_1024_nodes() {
        let mut hier = HierMeshNetwork::new(1024, 64);
        assert_eq!(hier.name(), "hmesh8x8x16-64bit");
        // Same cluster: purely local mesh hops.
        let near = hier.send(t(0), env(0, 15, 40));
        assert_eq!(near, t(17)); // 6 hops * 2 + 5 flits, as on the flat 4x4
        // Node 0 is cluster 0's gateway: no ascent, 14 express hops
        // (corner to corner of the 8x8 grid), 6-hop descent.
        let gw = hier.send(t(0), env(0, 1023, 40));
        assert_eq!(gw, t(14 * 4 + 6 * 2 + 5));
        // Opposite corners of the machine (fresh network, so the gateway
        // send above cannot contend): 6-hop ascent, 14 express hops,
        // 6-hop descent.
        let far = HierMeshNetwork::new(1024, 64).send(t(0), env(15, 1023, 40));
        assert_eq!(far, t(6 * 2 + 14 * 4 + 6 * 2 + 5));
        assert!(far > near);
    }

    #[test]
    fn hier_mesh_express_links_contend() {
        let mut hier = HierMeshNetwork::new(64, 16);
        // Two messages from cluster 0 to cluster 3 share the gateway path.
        let a = hier.send(t(0), env(0, 48, 40));
        let b = hier.send(t(0), env(1, 49, 40));
        let solo = HierMeshNetwork::new(64, 16).send(t(0), env(1, 49, 40));
        assert!(b > solo || a < b, "shared express links must serialize");
    }

    #[test]
    fn hier_mesh_routes_are_deterministic() {
        let mut a = HierMeshNetwork::new(256, 32);
        let mut b = HierMeshNetwork::new(256, 32);
        for i in 0..200u16 {
            let (s, d) = (i % 256, (i * 37 + 11) % 256);
            assert_eq!(a.send(t(i as u64), env(s, d, 40)), b.send(t(i as u64), env(s, d, 40)));
        }
    }

    proptest! {
        /// Any route under X-Y routing has Manhattan-distance length and
        /// delivery never precedes departure.
        #[test]
        fn routes_are_manhattan(src in 0u16..16, dst in 0u16..16, bytes in 1u32..200) {
            let mut mesh = MeshNetwork::paper_mesh(32);
            let (sx, sy) = (src % 4, src / 4);
            let (dx, dy) = (dst % 4, dst / 4);
            let dist = (sx.abs_diff(dx) + sy.abs_diff(dy)) as usize;
            prop_assert_eq!(mesh.route(NodeId(src), NodeId(dst)).len(), dist);
            let arrival = mesh.send(t(100), env(src, dst, bytes));
            prop_assert!(arrival >= t(100));
        }
    }
}
