//! What the network sees of a protocol message.

use dirext_trace::NodeId;

/// Coarse classification of network traffic, used for the Figure-4 traffic
/// breakdown. The protocol layer maps each message kind onto one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Address/control-only messages (requests, invalidations, acks).
    Control,
    /// Messages carrying a full cache block.
    Data,
    /// Competitive-update messages carrying modified words.
    Update,
    /// Synchronization messages (lock and barrier traffic).
    Sync,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Control,
        TrafficClass::Data,
        TrafficClass::Update,
        TrafficClass::Sync,
    ];

    /// Index into [`TrafficClass::ALL`].
    pub fn idx(self) -> usize {
        match self {
            TrafficClass::Control => 0,
            TrafficClass::Data => 1,
            TrafficClass::Update => 2,
            TrafficClass::Sync => 3,
        }
    }
}

/// A network-level view of one message: endpoints, size and class.
///
/// # Example
///
/// ```
/// use dirext_network::{Envelope, TrafficClass};
/// use dirext_trace::NodeId;
///
/// let env = Envelope::new(NodeId(0), NodeId(3), 40, TrafficClass::Data);
/// assert_eq!(env.bytes, 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Total message size in bytes (header + payload).
    pub bytes: u32,
    /// Traffic class for accounting.
    pub class: TrafficClass,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, bytes: u32, class: TrafficClass) -> Self {
        Envelope {
            src,
            dst,
            bytes,
            class,
        }
    }

    /// Whether the message stays within one node.
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }

    /// Flit count of a `bytes`-byte message on a `link_bits`-wide link:
    /// one flit per link cycle, rounded up. Shared by the mesh and ring
    /// models so their body-occupancy arithmetic cannot drift apart.
    pub fn flits_on(bytes: u32, link_bits: u32) -> u64 {
        (u64::from(bytes) * 8).div_ceil(u64::from(link_bits))
    }

    /// Body occupancy of this message on a `link_bits`-wide link.
    pub fn flits(&self, link_bits: u32) -> u64 {
        Self::flits_on(self.bytes, link_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality() {
        assert!(Envelope::new(NodeId(2), NodeId(2), 8, TrafficClass::Control).is_local());
        assert!(!Envelope::new(NodeId(2), NodeId(3), 8, TrafficClass::Control).is_local());
    }

    #[test]
    fn flits_round_up() {
        assert_eq!(Envelope::flits_on(40, 64), 5); // 320 bits / 64
        assert_eq!(Envelope::flits_on(8, 64), 1);
        assert_eq!(Envelope::flits_on(9, 64), 2); // 72 bits -> 2 flits
        assert_eq!(Envelope::flits_on(40, 16), 20);
        let e = Envelope::new(NodeId(0), NodeId(1), 40, TrafficClass::Data);
        assert_eq!(e.flits(32), 10);
    }

    #[test]
    fn class_indices_are_distinct() {
        let mut seen = [false; 4];
        for c in TrafficClass::ALL {
            assert!(!seen[c.idx()]);
            seen[c.idx()] = true;
        }
    }
}
