//! Network traffic accounting (basis of the paper's Figure 4).

use crate::{Envelope, TrafficClass};

/// Accumulated network traffic: message and byte counts, total and per
/// [`TrafficClass`]. Local (same-node) messages are never recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    msgs: u64,
    bytes: u64,
    class_bytes: [u64; 4],
    class_msgs: [u64; 4],
}

impl TrafficStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one network message.
    pub fn record(&mut self, env: &Envelope) {
        debug_assert!(!env.is_local(), "local messages are not network traffic");
        self.msgs += 1;
        self.bytes += u64::from(env.bytes);
        self.class_bytes[env.class.idx()] += u64::from(env.bytes);
        self.class_msgs[env.class.idx()] += 1;
    }

    /// Total messages sent over the network.
    pub fn msgs(&self) -> u64 {
        self.msgs
    }

    /// Total bytes sent over the network.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes sent in a given class.
    pub fn bytes_in(&self, class: TrafficClass) -> u64 {
        self.class_bytes[class.idx()]
    }

    /// Messages sent in a given class.
    pub fn msgs_in(&self, class: TrafficClass) -> u64 {
        self.class_msgs[class.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirext_trace::NodeId;

    #[test]
    fn records_by_class() {
        let mut t = TrafficStats::new();
        t.record(&Envelope::new(
            NodeId(0),
            NodeId(1),
            8,
            TrafficClass::Control,
        ));
        t.record(&Envelope::new(NodeId(0), NodeId(1), 40, TrafficClass::Data));
        t.record(&Envelope::new(NodeId(1), NodeId(0), 40, TrafficClass::Data));
        assert_eq!(t.msgs(), 3);
        assert_eq!(t.bytes(), 88);
        assert_eq!(t.bytes_in(TrafficClass::Data), 80);
        assert_eq!(t.msgs_in(TrafficClass::Control), 1);
        assert_eq!(t.bytes_in(TrafficClass::Update), 0);
    }
}
