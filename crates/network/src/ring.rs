//! Bidirectional ring interconnect.
//!
//! A point-to-point register-insertion-style ring, as in the
//! cache-coherent ring multiprocessors contemporary with the paper (e.g.
//! Barroso & Dubois' slotted ring): messages travel hop by hop in whichever
//! direction is shorter, contending for each inter-node link. Rings have
//! the lowest wiring cost of the three models here but bisection bandwidth
//! that *shrinks* relative to traffic as the machine grows — a harsher
//! environment for the traffic-hungry P+CW combination than even the
//! 16-bit mesh.

use dirext_kernel::{Resource, Time};
use dirext_trace::NodeId;

use crate::{Envelope, Network, TrafficStats};

/// A bidirectional ring with per-link contention.
///
/// Per hop a message pays `router_delay` cycles for the header plus
/// `ceil(8·bytes / link_bits)` cycles of body occupancy on the link, like
/// the mesh model.
///
/// # Example
///
/// ```
/// use dirext_kernel::Time;
/// use dirext_network::{Envelope, Network, RingNetwork, TrafficClass};
/// use dirext_trace::NodeId;
///
/// let mut ring = RingNetwork::new(16, 32);
/// // 1 hop (neighbours), 40-byte message on 32-bit links: 2 + 10 cycles.
/// let t = ring.send(
///     Time::ZERO,
///     Envelope::new(NodeId(0), NodeId(1), 40, TrafficClass::Data),
/// );
/// assert_eq!(t, Time::from_cycles(12));
/// ```
#[derive(Debug)]
pub struct RingNetwork {
    nodes: usize,
    link_bits: u32,
    router_delay: u64,
    /// `links[n][0]` = clockwise link out of node n (to n+1),
    /// `links[n][1]` = counter-clockwise (to n-1).
    links: Vec<[Resource; 2]>,
    traffic: TrafficStats,
    name: String,
}

impl RingNetwork {
    /// Creates a ring of `nodes` nodes with `link_bits`-wide links.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `link_bits` is zero.
    pub fn new(nodes: usize, link_bits: u32) -> Self {
        assert!(nodes >= 2, "a ring needs at least two nodes");
        assert!(link_bits > 0, "link width must be positive");
        RingNetwork {
            nodes,
            link_bits,
            router_delay: 2,
            links: vec![[Resource::new(), Resource::new()]; nodes],
            traffic: TrafficStats::new(),
            name: format!("ring{nodes}-{link_bits}bit"),
        }
    }

    fn flits(&self, bytes: u32) -> u64 {
        Envelope::flits_on(bytes, self.link_bits)
    }

    /// `(hops, clockwise)` for the shorter direction.
    fn route(&self, src: NodeId, dst: NodeId) -> (usize, bool) {
        let n = self.nodes;
        let cw = (dst.idx() + n - src.idx()) % n;
        let ccw = (src.idx() + n - dst.idx()) % n;
        if cw <= ccw {
            (cw, true)
        } else {
            (ccw, false)
        }
    }
}

impl Network for RingNetwork {
    fn send(&mut self, now: Time, env: Envelope) -> Time {
        if env.is_local() {
            return now;
        }
        self.traffic.record(&env);
        let flits = self.flits(env.bytes);
        let (hops, clockwise) = self.route(env.src, env.dst);
        let dir = usize::from(!clockwise);
        let mut at = env.src.idx();
        let mut head = now;
        for _ in 0..hops {
            let start =
                self.links[at][dir].acquire(head, Time::from_cycles(self.router_delay + flits));
            head = start + Time::from_cycles(self.router_delay);
            at = if clockwise {
                (at + 1) % self.nodes
            } else {
                (at + self.nodes - 1) % self.nodes
            };
        }
        head + Time::from_cycles(flits)
    }

    fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// At least one hop: one router delay plus one flit, before contention.
    fn min_remote_latency(&self) -> Option<Time> {
        Some(Time::from_cycles(self.router_delay + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficClass;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    fn env(src: u16, dst: u16, bytes: u32) -> Envelope {
        Envelope::new(NodeId(src), NodeId(dst), bytes, TrafficClass::Data)
    }

    #[test]
    fn shortest_direction_is_chosen() {
        let ring = RingNetwork::new(16, 32);
        assert_eq!(ring.route(NodeId(0), NodeId(3)), (3, true));
        assert_eq!(ring.route(NodeId(0), NodeId(13)), (3, false));
        // Antipodal: 8 hops either way; clockwise by convention.
        assert_eq!(ring.route(NodeId(0), NodeId(8)), (8, true));
    }

    #[test]
    fn uncontended_latency_scales_with_hops() {
        let mut ring = RingNetwork::new(16, 32);
        // 40 B on 32-bit links = 10 flits; 3 hops * 2 + 10 = 16.
        assert_eq!(ring.send(t(0), env(0, 3, 40)), t(16));
        // Antipodal distance dominates: 8 hops * 2 + 10 = 26.
        assert_eq!(ring.send(t(100), env(0, 8, 40)), t(126));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut ring = RingNetwork::new(8, 16);
        let a = ring.send(t(0), env(0, 1, 40)); // clockwise out of 0
        let b = ring.send(t(0), env(0, 7, 40)); // counter-clockwise out of 0
        assert_eq!(a, b);
    }

    #[test]
    fn same_link_contends() {
        let mut ring = RingNetwork::new(8, 16);
        let a = ring.send(t(0), env(0, 2, 40));
        let b = ring.send(t(0), env(0, 2, 40));
        assert!(b > a);
    }

    #[test]
    fn local_messages_are_free() {
        let mut ring = RingNetwork::new(4, 16);
        assert_eq!(ring.send(t(5), env(2, 2, 40)), t(5));
        assert_eq!(ring.traffic().msgs(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_ring_rejected() {
        let _ = RingNetwork::new(1, 16);
    }
}
