//! The paper's default contention-free uniform network.

use dirext_kernel::Time;

use crate::{Envelope, Network, TrafficStats};

/// A uniform-access-time network with a fixed node-to-node latency and no
/// link contention — the paper's default ("we assume a contention-free
/// uniform access time network with a node-to-node latency of 54 pclocks").
///
/// Traffic is still metered, so Figure 4 (traffic normalized to BASIC) is
/// produced from runs on this network.
///
/// # Example
///
/// ```
/// use dirext_kernel::Time;
/// use dirext_network::{Envelope, Network, TrafficClass, UniformNetwork};
/// use dirext_trace::NodeId;
///
/// let mut net = UniformNetwork::new(Time::from_cycles(54));
/// let arrival = net.send(
///     Time::from_cycles(100),
///     Envelope::new(NodeId(0), NodeId(5), 8, TrafficClass::Control),
/// );
/// assert_eq!(arrival, Time::from_cycles(154));
/// ```
#[derive(Debug)]
pub struct UniformNetwork {
    hop_latency: Time,
    traffic: TrafficStats,
    name: String,
}

impl UniformNetwork {
    /// Creates a network with the given node-to-node latency.
    pub fn new(hop_latency: Time) -> Self {
        UniformNetwork {
            name: format!("uniform-{}", hop_latency.cycles()),
            hop_latency,
            traffic: TrafficStats::new(),
        }
    }

    /// The paper's configuration: 54-pclock node-to-node latency.
    pub fn paper_default() -> Self {
        Self::new(Time::from_cycles(54))
    }
}

impl Network for UniformNetwork {
    fn send(&mut self, now: Time, env: Envelope) -> Time {
        if env.is_local() {
            return now;
        }
        self.traffic.record(&env);
        now + self.hop_latency
    }

    fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Contention-free: every remote message takes exactly `hop_latency`.
    fn min_remote_latency(&self) -> Option<Time> {
        Some(self.hop_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrafficClass;
    use dirext_trace::NodeId;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn fixed_latency_no_contention() {
        let mut net = UniformNetwork::paper_default();
        // Two messages at the same instant both arrive 54 cycles later.
        let e = Envelope::new(NodeId(0), NodeId(1), 40, TrafficClass::Data);
        assert_eq!(net.send(t(0), e), t(54));
        assert_eq!(net.send(t(0), e), t(54));
        assert_eq!(net.traffic().msgs(), 2);
        assert_eq!(net.traffic().bytes(), 80);
    }

    #[test]
    fn local_messages_are_free_and_unmetered() {
        let mut net = UniformNetwork::paper_default();
        let e = Envelope::new(NodeId(3), NodeId(3), 40, TrafficClass::Data);
        assert_eq!(net.send(t(10), e), t(10));
        assert_eq!(net.traffic().msgs(), 0);
    }
}
