//! Deterministic fault injection on top of any [`Network`] model.
//!
//! [`FaultyNetwork`] wraps an inner topology (uniform, mesh, ring) and
//! perturbs each remote message with seeded, reproducible faults:
//!
//! * **delay jitter** — a uniform extra latency of `0..=jitter_cycles`;
//! * **drops** — modelled as a *link-layer retransmission chain*: every
//!   dropped attempt charges an exponentially growing backoff before the
//!   retransmission, up to [`FaultPlan::retry_budget`] attempts. A message
//!   whose budget is exhausted is **permanently lost** (delivered never),
//!   which is how wedged-run scenarios for the watchdog are constructed;
//! * **duplication** — a second delivery of the same message a short,
//!   random lag after the first. The duplicate occupies the wire and is
//!   counted, but whether it reaches the protocol is the receiver's call:
//!   the machine delivers duplicates only for synchronization traffic
//!   (which is sequence-tagged and replay-tolerant) and absorbs them for
//!   coherence transactions, which — as in DASH-style machines — assume
//!   exactly-once transport on their virtual channels.
//!
//! Soundness keystone: deliveries are forced to be **FIFO per (src, dst)
//! pair**. Each pair carries a monotone "pair clock"; every delivery
//! (including duplicates) is moved up to at least the pair's previous
//! delivery time, and ties preserve send order through the event queue's
//! FIFO tie-break. Cross-pair reordering — the interesting kind for
//! protocol races — still happens freely, but a stale message can never
//! overtake a newer one on the same channel, which is the property the
//! duplicate-tolerance rules in the protocol layer rely on.
//!
//! All randomness comes from one [`Pcg32`] seeded by the plan, consumed in
//! simulation event order, so the same seed reproduces the same fault
//! schedule (and therefore the same metrics) byte for byte.

use crate::{Deliveries, Envelope, Network, TrafficStats};
use dirext_kernel::{Pcg32, Time};
use dirext_trace::NodeId;

/// Pair-clock table stride: the machine's presence vector caps it at 64
/// nodes, so a flat 64×64 table (32 KB) replaces a per-message hash lookup.
const PAIR_STRIDE: usize = 64;

/// Spread (in cycles) of the random lag between a message and its duplicate.
const DUP_LAG_SPREAD: u32 = 128;

/// Cap on the exponential-backoff shift so delays stay bounded.
const MAX_BACKOFF_SHIFT: u32 = 10;

/// A seeded description of the faults to inject into a network.
///
/// Probabilities are expressed in permille (0..=1000) so plans stay exactly
/// representable and reproducible in integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the fault RNG; the same seed reproduces the same schedule.
    pub seed: u64,
    /// Per-message drop probability in permille (each *attempt* re-rolls).
    pub drop_permille: u32,
    /// Per-message duplication probability in permille.
    pub dup_permille: u32,
    /// Maximum extra delivery delay in cycles (uniform `0..=jitter_cycles`).
    pub jitter_cycles: u64,
    /// Link-layer retransmissions allowed before a message is permanently
    /// lost. With the default budget a loss needs `drop_permille/1000` to
    /// come up 17 times in a row — effectively never for realistic rates.
    pub retry_budget: u32,
    /// Base backoff in cycles; attempt *n* waits `retry_base << min(n, 10)`.
    pub retry_base: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            drop_permille: 0,
            dup_permille: 0,
            jitter_cycles: 0,
            retry_budget: 16,
            retry_base: 64,
        }
    }
}

impl FaultPlan {
    /// A plan with the given seed and no faults (useful as a base for
    /// builder-style field updates).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether this plan can perturb any message at all.
    pub fn is_active(&self) -> bool {
        self.drop_permille > 0 || self.dup_permille > 0 || self.jitter_cycles > 0
    }
}

/// Counters describing the faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Remote messages that passed through the fault layer.
    pub messages: u64,
    /// Messages that received nonzero delay jitter.
    pub delayed: u64,
    /// Link-layer retransmissions (one per dropped attempt).
    pub retransmitted: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages permanently lost after exhausting the retry budget.
    pub lost: u64,
}

/// A [`Network`] decorator that injects the faults described by a
/// [`FaultPlan`] while delegating base latency and traffic accounting to
/// the wrapped topology.
#[derive(Debug)]
pub struct FaultyNetwork {
    inner: Box<dyn Network>,
    plan: FaultPlan,
    rng: Pcg32,
    /// Monotone last-delivery time per (src, dst) pair, as a dense
    /// `src * stride + dst` table; enforces pair-FIFO. Fault
    /// injection perturbs *every* remote message, so this lookup is as hot
    /// as the network model itself under fault runs.
    pair_clock: Vec<Time>,
    /// Row stride of `pair_clock`: the node count this network serves.
    stride: usize,
    stats: FaultStats,
    name: String,
}

impl FaultyNetwork {
    /// Wraps `inner` with the faults described by `plan`, sized for
    /// machines of up to `PAIR_STRIDE` (64) nodes. Larger machines must
    /// use [`FaultyNetwork::with_nodes`].
    pub fn new(inner: Box<dyn Network>, plan: FaultPlan) -> Self {
        Self::with_nodes(inner, plan, PAIR_STRIDE)
    }

    /// Wraps `inner` with the faults described by `plan`, sizing the
    /// per-pair FIFO clock table for a machine of `nodes` nodes.
    pub fn with_nodes(inner: Box<dyn Network>, plan: FaultPlan, nodes: usize) -> Self {
        let name = format!("{}+faults", inner.name());
        let stride = nodes.max(PAIR_STRIDE);
        FaultyNetwork {
            inner,
            rng: Pcg32::with_stream(plan.seed, 0xFA17),
            plan,
            pair_clock: vec![Time::ZERO; stride * stride],
            stride,
            stats: FaultStats::default(),
            name,
        }
    }

    /// The plan this network was built with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn pair_key(&self, src: NodeId, dst: NodeId) -> usize {
        src.idx() * self.stride + dst.idx()
    }
}

impl Network for FaultyNetwork {
    /// Single-delivery view: faults are applied, but loss cannot be
    /// expressed through this signature, so a message that exhausts its
    /// retry budget degrades to a worst-case-delayed delivery instead.
    /// The simulator always uses [`Network::send_all`], which reports loss
    /// faithfully.
    fn send(&mut self, now: Time, env: Envelope) -> Time {
        let worst_case = self.plan.retry_base << MAX_BACKOFF_SHIFT;
        match self.send_all(now, env).primary {
            Some(t) => t,
            None => now + Time::from_cycles(worst_case.max(1)),
        }
    }

    fn send_all(&mut self, now: Time, env: Envelope) -> Deliveries {
        if env.is_local() {
            // Node-internal traffic never crosses a link; no faults apply.
            return Deliveries {
                primary: Some(self.inner.send(now, env)),
                duplicate: None,
            };
        }
        self.stats.messages += 1;
        let mut arrival = self.inner.send(now, env);
        if self.plan.jitter_cycles > 0 {
            let extra = u64::from(self.rng.below(self.plan.jitter_cycles as u32 + 1));
            if extra > 0 {
                self.stats.delayed += 1;
            }
            arrival += Time::from_cycles(extra);
        }
        if self.plan.drop_permille > 0 {
            let mut attempts = 0u32;
            while self.rng.chance(self.plan.drop_permille, 1000) {
                if attempts >= self.plan.retry_budget {
                    self.stats.lost += 1;
                    return Deliveries {
                        primary: None,
                        duplicate: None,
                    };
                }
                arrival +=
                    Time::from_cycles(self.plan.retry_base << attempts.min(MAX_BACKOFF_SHIFT));
                attempts += 1;
                self.stats.retransmitted += 1;
            }
        }
        let key = self.pair_key(env.src, env.dst);
        let arrival = arrival.max(self.pair_clock[key]);
        let mut last = arrival;
        let mut duplicate = None;
        if self.plan.dup_permille > 0 && self.rng.chance(self.plan.dup_permille, 1000) {
            self.stats.duplicated += 1;
            let lag = 1 + u64::from(self.rng.below(DUP_LAG_SPREAD));
            let dup_at = last + Time::from_cycles(lag);
            duplicate = Some(dup_at);
            last = dup_at;
        }
        self.pair_clock[key] = last;
        Deliveries {
            primary: Some(arrival),
            duplicate,
        }
    }

    fn traffic(&self) -> &TrafficStats {
        self.inner.traffic()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        Some(&self.stats)
    }

    /// Faults only ever *add* delay: jitter and retransmission backoff are
    /// nonnegative, and the pair-FIFO clamp is a `max`. The wrapped
    /// topology's bound therefore survives the decoration unchanged.
    fn min_remote_latency(&self) -> Option<Time> {
        self.inner.min_remote_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrafficClass, UniformNetwork};

    fn env(src: u16, dst: u16) -> Envelope {
        Envelope::new(NodeId(src), NodeId(dst), 8, TrafficClass::Control)
    }

    fn faulty(plan: FaultPlan) -> FaultyNetwork {
        FaultyNetwork::new(Box::new(UniformNetwork::paper_default()), plan)
    }

    #[test]
    fn no_faults_matches_inner_latency() {
        let mut plain = UniformNetwork::paper_default();
        let mut net = faulty(FaultPlan::default());
        for i in 0..10 {
            let t = Time::from_cycles(i * 100);
            let d = net.send_all(t, env(0, 1));
            assert_eq!(d.primary, Some(plain.send(t, env(0, 1))));
            assert_eq!(d.duplicate, None);
        }
        assert_eq!(net.fault_stats().unwrap().messages, 10);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            drop_permille: 100,
            dup_permille: 100,
            jitter_cycles: 40,
            ..FaultPlan::seeded(42)
        };
        let run = |mut net: FaultyNetwork| {
            (0..200)
                .map(|i| net.send_all(Time::from_cycles(i * 7), env(i as u16 % 4, 3)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(faulty(plan)), run(faulty(plan)));
    }

    #[test]
    fn pair_deliveries_are_fifo() {
        let plan = FaultPlan {
            drop_permille: 150,
            dup_permille: 200,
            jitter_cycles: 200,
            ..FaultPlan::seeded(7)
        };
        let mut net = faulty(plan);
        let mut last = Time::ZERO;
        for i in 0..500 {
            let d = net.send_all(Time::from_cycles(i * 3), env(0, 1));
            if let Some(t) = d.primary {
                assert!(t >= last, "primary overtook pair clock");
                last = t;
            }
            if let Some(t) = d.duplicate {
                assert!(t >= last, "duplicate overtook pair clock");
                last = t;
            }
        }
        let s = net.fault_stats().unwrap();
        assert!(s.duplicated > 0 && s.retransmitted > 0);
    }

    #[test]
    fn zero_budget_loses_every_dropped_message() {
        let plan = FaultPlan {
            drop_permille: 1000,
            retry_budget: 0,
            ..FaultPlan::seeded(3)
        };
        let mut net = faulty(plan);
        for i in 0..20 {
            let d = net.send_all(Time::from_cycles(i), env(0, 2));
            assert_eq!(d.primary, None);
        }
        assert_eq!(net.fault_stats().unwrap().lost, 20);
    }

    #[test]
    fn local_messages_bypass_faults() {
        let plan = FaultPlan {
            drop_permille: 1000,
            retry_budget: 0,
            ..FaultPlan::seeded(5)
        };
        let mut net = faulty(plan);
        let d = net.send_all(Time::from_cycles(9), env(2, 2));
        assert_eq!(d.primary, Some(Time::from_cycles(9)));
        assert_eq!(net.fault_stats().unwrap().messages, 0);
    }

    #[test]
    fn plain_send_cannot_lose() {
        let plan = FaultPlan {
            drop_permille: 1000,
            retry_budget: 0,
            ..FaultPlan::seeded(11)
        };
        let mut net = faulty(plan);
        let t = net.send(Time::from_cycles(4), env(0, 1));
        assert!(t > Time::from_cycles(4));
    }
}
