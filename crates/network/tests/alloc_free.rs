//! Proves the network models are allocation-free in steady state.
//!
//! Every topology (and the fault layer) is driven through thousands of
//! sends under a counting global allocator; after construction, no send may
//! touch the heap. This pins the arena/recycling properties the end-to-end
//! perf gate relies on: mesh routes live in a precomputed hop arena, the
//! fault layer's pair clocks are a dense table, and traffic accounting is
//! plain counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dirext_kernel::Time;
use dirext_network::{
    Envelope, FaultPlan, FaultyNetwork, HierMeshNetwork, MeshNetwork, Network, RingNetwork,
    TrafficClass, UniformNetwork,
};
use dirext_trace::NodeId;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Streams a deterministic mix of control/data/update/sync messages across
/// all node pairs and returns how many heap allocations they caused.
fn allocs_during_sends(net: &mut dyn Network, rounds: u64) -> u64 {
    let classes = [
        (8, TrafficClass::Control),
        (40, TrafficClass::Data),
        (20, TrafficClass::Update),
        (8, TrafficClass::Sync),
    ];
    let before = ALLOCS.load(Ordering::Relaxed);
    for r in 0..rounds {
        for src in 0..16u16 {
            for dst in 0..16u16 {
                let (bytes, class) = classes[(src as usize + dst as usize + r as usize) % 4];
                let env = Envelope::new(NodeId(src), NodeId(dst), bytes, class);
                net.send_all(Time::from_cycles(r * 100), env);
            }
        }
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn uniform_network_sends_never_allocate() {
    let mut net = UniformNetwork::paper_default();
    assert_eq!(allocs_during_sends(&mut net, 20), 0);
}

#[test]
fn mesh_sends_never_allocate() {
    for link_bits in [64, 32, 16] {
        let mut net = MeshNetwork::paper_mesh(link_bits);
        assert_eq!(allocs_during_sends(&mut net, 20), 0, "{link_bits}-bit mesh");
    }
}

#[test]
fn ring_sends_never_allocate() {
    let mut net = RingNetwork::new(16, 32);
    assert_eq!(allocs_during_sends(&mut net, 20), 0);
}

/// Like [`allocs_during_sends`], but with the 16×16 pair grid spread
/// across the whole `nodes`-node id space so hierarchical topologies cross
/// cluster boundaries (gateway ascent, express grid, descent) instead of
/// staying inside cluster 0.
fn allocs_during_spread_sends(net: &mut dyn Network, nodes: u16, rounds: u64) -> u64 {
    let classes = [
        (8, TrafficClass::Control),
        (40, TrafficClass::Data),
        (20, TrafficClass::Update),
        (8, TrafficClass::Sync),
    ];
    let stride = (nodes / 16).max(1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for r in 0..rounds {
        for si in 0..16u16 {
            for di in 0..16u16 {
                // Offset by the round so every pass hits different routers.
                let src = (si * stride + r as u16) % nodes;
                let dst = (di * stride + 7 * r as u16) % nodes;
                let (bytes, class) = classes[(si as usize + di as usize + r as usize) % 4];
                let env = Envelope::new(NodeId(src), NodeId(dst), bytes, class);
                net.send_all(Time::from_cycles(r * 100), env);
            }
        }
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn hier_mesh_sends_never_allocate() {
    for (nodes, link_bits) in [(64u16, 64), (256, 32), (1024, 16)] {
        let mut net = HierMeshNetwork::new(nodes as usize, link_bits);
        assert_eq!(
            allocs_during_spread_sends(&mut net, nodes, 20),
            0,
            "{nodes}-node {link_bits}-bit hier mesh"
        );
    }
}

#[test]
fn faulty_hier_mesh_sends_never_allocate() {
    // 1024 nodes exceeds the fault layer's default 64-node pair-clock
    // table; `with_nodes` sizes it at construction so fault-perturbed
    // cross-cluster sends stay allocation-free (and in bounds).
    let plan = FaultPlan {
        drop_permille: 100,
        dup_permille: 100,
        jitter_cycles: 40,
        ..FaultPlan::seeded(42)
    };
    let mut net = FaultyNetwork::with_nodes(Box::new(HierMeshNetwork::new(1024, 32)), plan, 1024);
    assert_eq!(allocs_during_spread_sends(&mut net, 1024, 20), 0);
}

#[test]
fn fault_layer_sends_never_allocate() {
    let plan = FaultPlan {
        drop_permille: 100,
        dup_permille: 100,
        jitter_cycles: 40,
        ..FaultPlan::seeded(42)
    };
    let mut net = FaultyNetwork::new(Box::new(MeshNetwork::paper_mesh(32)), plan);
    assert_eq!(allocs_during_sends(&mut net, 20), 0);
}
