//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the lowest layer of the `dirext` simulator: it knows nothing
//! about caches or protocols. It provides
//!
//! * [`Time`] — simulated time in *pclocks* (processor clock cycles, 10 ns at
//!   the paper's 100 MHz),
//! * [`EventQueue`] — a priority queue of timestamped events with a
//!   deterministic FIFO tie-break for events scheduled at the same cycle,
//! * [`Pcg32`] — a tiny, self-contained, reproducible PRNG used by the
//!   workload generators,
//! * [`Resource`] — a single-server occupancy model (bus, cache port, memory
//!   bank) that serializes accesses and reports when each one starts.
//!
//! Everything here is deliberately allocation-light and single-threaded: the
//! simulator's determinism guarantee ("same seed, same metrics") rests on
//! this crate.
//!
//! # Example
//!
//! ```
//! use dirext_kernel::{EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::from_cycles(10), "late");
//! q.push(Time::from_cycles(5), "early");
//! q.push(Time::from_cycles(5), "early-too"); // same cycle: FIFO order
//!
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (Time::from_cycles(5), "early"));
//! assert_eq!(q.pop().unwrap().1, "early-too");
//! assert_eq!(q.pop().unwrap().1, "late");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod queue;
mod resource;
mod rng;
mod time;

pub use queue::{EventQueue, HeapEventQueue, ShardedEventQueue};
pub use resource::Resource;
pub use rng::Pcg32;
pub use time::Time;
