//! The event queue at the heart of the simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// A timestamped event priority queue with deterministic ordering.
///
/// Events pop in nondecreasing time order; events pushed for the *same* cycle
/// pop in the order they were pushed (FIFO). This tie-break is what makes
/// whole-machine simulations bit-reproducible: two runs with the same seed
/// schedule the identical event sequence.
///
/// # Example
///
/// ```
/// use dirext_kernel::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_cycles(3), 'b');
/// q.push(Time::from_cycles(1), 'a');
/// assert_eq!(q.pop(), Some((Time::from_cycles(1), 'a')));
/// assert_eq!(q.pop(), Some((Time::from_cycles(3), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap(), (Time::from_cycles(7), i));
        }
    }

    #[test]
    fn interleaved_times() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(5), "c");
        q.push(Time::from_cycles(1), "a");
        q.push(Time::from_cycles(3), "b");
        q.push(Time::from_cycles(5), "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_cycles(9), ());
        q.push(Time::from_cycles(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_cycles(2)));
    }

    proptest! {
        /// Popping always yields events in nondecreasing time order, and
        /// events with equal time in push order.
        #[test]
        fn pops_sorted_stable(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_cycles(t), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t > lt || (t == lt && i > li));
                }
                last = Some((t, i));
            }
        }
    }
}
