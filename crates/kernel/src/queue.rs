//! The event queue at the heart of the simulator.
//!
//! Two implementations share one ordering contract:
//!
//! * [`EventQueue`] — the production queue: a two-tier design pairing a
//!   near-future circular **bucket wheel** (the common case: almost every
//!   event a simulated machine schedules lands within a few hundred cycles
//!   of "now") with a [`BinaryHeap`] fallback for far-future events. Pushes
//!   and pops into the wheel are O(1) amortized and allocation-free in
//!   steady state — each bucket is a [`VecDeque`] that keeps its capacity
//!   across reuse.
//! * [`HeapEventQueue`] — the original pure-heap implementation, kept as
//!   the recorded perf baseline (`BENCH_kernel.json`) and as the oracle for
//!   differential property tests.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::Time;

/// Number of cycles (and buckets) the near-future wheel covers. Events
/// scheduled less than this many cycles ahead of the last popped event go
/// to the wheel; later ones spill to the heap. Must be a power of two.
const WHEEL_SPAN: u64 = 256;
const WHEEL_MASK: u64 = WHEEL_SPAN - 1;
/// Words in the wheel occupancy bitmap (one bit per bucket).
const OCC_WORDS: usize = (WHEEL_SPAN / 64) as usize;

/// A timestamped event priority queue with deterministic ordering.
///
/// Events pop in nondecreasing time order; events pushed for the *same* cycle
/// pop in the order they were pushed (FIFO). This tie-break is what makes
/// whole-machine simulations bit-reproducible: two runs with the same seed
/// schedule the identical event sequence.
///
/// Internally this is a two-tier structure: a circular bucket wheel covering
/// the next `WHEEL_SPAN` (256) cycles after the most recently popped event, and a
/// binary heap for everything further out (or scheduled in the past, which
/// the simulator never does but the contract permits). The FIFO tie-break is
/// carried by a global push sequence number that orders entries *across* the
/// two tiers, so wheel/heap placement is invisible to callers.
///
/// # Example
///
/// ```
/// use dirext_kernel::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_cycles(3), 'b');
/// q.push(Time::from_cycles(1), 'a');
/// assert_eq!(q.pop(), Some((Time::from_cycles(1), 'a')));
/// assert_eq!(q.pop(), Some((Time::from_cycles(3), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future tier: bucket `c & WHEEL_MASK` holds the events of cycle
    /// `c` for `c` in `[cursor, cursor + WHEEL_SPAN)`. Within the window a
    /// bucket holds at most one distinct cycle, and its entries are in push
    /// (= seq) order, so each bucket is a plain FIFO.
    wheel: Vec<VecDeque<(u64, E)>>,
    /// One occupancy bit per wheel bucket, so finding the next non-empty
    /// bucket is a handful of word scans (`trailing_zeros`) instead of up
    /// to `WHEEL_SPAN` `VecDeque::is_empty` probes when the wheel is
    /// sparse — the common case for a small machine between bursts.
    occ: [u64; OCC_WORDS],
    /// Events in the wheel.
    wheel_len: usize,
    /// Cycle of the most recently popped event: the left edge of the wheel
    /// window. Never decreases (pops yield nondecreasing times).
    cursor: u64,
    /// Far-future (and past-time) tier.
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Memoized [`EventQueue::peek_key`] result: `None` means stale
    /// (recompute on next peek), `Some((t, seq))` is the known current
    /// minimum entry key (`Some(None)` = known empty). A push can only
    /// *lower* the minimum, so it refreshes the memo with one compare; a
    /// pop invalidates it. This makes the simulator's inline-retirement
    /// checks — one peek per retired instruction — O(1) instead of a
    /// bitmap scan.
    peeked: Option<Option<(Time, u64)>>,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SPAN).map(|_| VecDeque::new()).collect(),
            occ: [0; OCC_WORDS],
            wheel_len: 0,
            cursor: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            peeked: Some(None),
        }
    }

    /// Creates an empty queue with `capacity` pre-reserved in the far-future
    /// tier (wheel buckets grow on demand and keep their capacity).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.heap.reserve(capacity);
        q
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.push_seq(at, seq, event);
    }

    /// Schedules `event` with an explicit, caller-allocated sequence
    /// number. This is the [`ShardedEventQueue`] entry point: the sharded
    /// wrapper allocates sequence numbers from one *global* counter so the
    /// FIFO tie-break stays machine-wide even though entries are spread
    /// across per-shard sub-queues. Callers must keep per-queue pushes in
    /// increasing seq order (the wheel buckets rely on it).
    pub fn push_with_seq(&mut self, at: Time, seq: u64, event: E) {
        self.seq = self.seq.max(seq + 1);
        self.push_seq(at, seq, event);
    }

    fn push_seq(&mut self, at: Time, seq: u64, event: E) {
        if let Some(p) = self.peeked {
            if p.is_none_or(|min| (at, seq) < min) {
                self.peeked = Some(Some((at, seq)));
            }
        }
        let c = at.cycles();
        if c >= self.cursor && c - self.cursor < WHEEL_SPAN {
            let idx = (c & WHEEL_MASK) as usize;
            let bucket = &mut self.wheel[idx];
            debug_assert!(
                bucket.back().is_none_or(|&(s, _)| s < seq),
                "bucket seq order violated"
            );
            bucket.push_back((seq, event));
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        } else {
            self.heap.push(Reverse(Entry {
                time: at,
                seq,
                event,
            }));
        }
    }

    /// Finds the earliest wheel entry: `(cycle, bucket index)`. The search
    /// walks the occupancy bitmap circularly from the cursor's bucket —
    /// every live wheel entry sits at circular distance `[0, WHEEL_SPAN)`
    /// from the cursor, so the first set bit in that order *is* the
    /// minimum. Bounded by `limit` cycles past the cursor (the caller
    /// passes the heap top's distance so a closer heap event wins without
    /// a full scan).
    #[inline]
    fn wheel_min(&self, limit: u64) -> Option<(u64, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor & WHEEL_MASK) as usize;
        let (w0, b0) = (start / 64, start % 64);
        // Circular first-set-bit search: the tail of the cursor's word,
        // then the remaining full words, then the cursor word's head.
        let head = self.occ[w0] >> b0;
        let dist = if head != 0 {
            u64::from(head.trailing_zeros())
        } else {
            let mut dist = (64 - b0) as u64;
            let mut found = None;
            for k in 1..OCC_WORDS {
                let w = self.occ[(w0 + k) % OCC_WORDS];
                if w != 0 {
                    found = Some(dist + u64::from(w.trailing_zeros()));
                    break;
                }
                dist += 64;
            }
            match found {
                Some(d) => d,
                None => {
                    let tail = self.occ[w0] & ((1u64 << b0) - 1);
                    if tail == 0 {
                        return None;
                    }
                    dist + u64::from(tail.trailing_zeros())
                }
            }
        };
        if dist >= WHEEL_SPAN.min(limit) {
            return None;
        }
        let c = self.cursor + dist;
        Some((c, (c & WHEEL_MASK) as usize))
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// When the wheel and the heap both hold events for the same cycle
    /// (possible when an event was pushed far ahead of its time and the
    /// window has since caught up with it), the global sequence number
    /// decides, preserving cross-tier FIFO.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Like [`EventQueue::pop`], but also returns the entry's sequence
    /// number. The sharded queue's global pop uses the seq to tie-break
    /// same-cycle entries *across* sub-queues.
    pub fn pop_entry(&mut self) -> Option<(Time, u64, E)> {
        self.peeked = None;
        let heap_top = self.heap.peek().map(|Reverse(e)| (e.time, e.seq));
        // Never scan the wheel further than the heap's earliest event: past
        // that point the heap entry wins regardless.
        let limit = match heap_top {
            Some((t, _)) => t.cycles().saturating_sub(self.cursor) + 1,
            None => WHEEL_SPAN,
        };
        let wheel_best = self.wheel_min(limit);
        let take_heap = match (wheel_best, heap_top) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((wc, idx)), Some((ht, hseq))) => {
                let wt = Time::from_cycles(wc);
                ht < wt || (ht == wt && hseq < self.wheel[idx].front().expect("nonempty").0)
            }
        };
        if take_heap {
            let Reverse(e) = self.heap.pop().expect("checked nonempty");
            // Advancing the cursor to the popped (global-minimum) time keeps
            // the wheel invariant: every remaining wheel entry is >= it.
            self.cursor = self.cursor.max(e.time.cycles());
            Some((e.time, e.seq, e.event))
        } else {
            let (wc, idx) = wheel_best.expect("checked nonempty");
            let (seq, event) = self.wheel[idx].pop_front().expect("nonempty");
            if self.wheel[idx].is_empty() {
                self.occ[idx / 64] &= !(1 << (idx % 64));
            }
            self.wheel_len -= 1;
            self.cursor = wc;
            Some((Time::from_cycles(wc), seq, event))
        }
    }

    /// Returns the time of the earliest pending event without removing it.
    ///
    /// Memoized: the scan runs at most once between pops (pushes keep the
    /// memo fresh with a single compare), so repeated peeks are O(1).
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// Returns the `(time, seq)` key of the earliest pending entry without
    /// removing it. Same memoization as [`EventQueue::peek_time`].
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        if let Some(p) = self.peeked {
            return p;
        }
        let heap_top = self.heap.peek().map(|Reverse(e)| (e.time, e.seq));
        let limit = match heap_top {
            Some((t, _)) => t.cycles().saturating_sub(self.cursor) + 1,
            None => WHEEL_SPAN,
        };
        let wheel_top = self.wheel_min(limit).map(|(c, idx)| {
            let seq = self.wheel[idx].front().expect("nonempty").0;
            (Time::from_cycles(c), seq)
        });
        let min = match (wheel_top, heap_top) {
            (Some(w), Some(h)) => Some(w.min(h)),
            (w, h) => w.or(h),
        };
        self.peeked = Some(min);
        min
    }

    /// Visits every pending entry with `time < limit` as `(time, seq,
    /// &event)`, in no particular order. The windowed-parallel engine's
    /// conflict preflight uses this to enumerate the events a safe window
    /// would retire without disturbing the queue.
    pub fn for_each_before(&self, limit: Time, mut f: impl FnMut(Time, u64, &E)) {
        let horizon = limit.cycles().saturating_sub(self.cursor).min(WHEEL_SPAN);
        for dist in 0..horizon {
            let c = self.cursor + dist;
            let idx = (c & WHEEL_MASK) as usize;
            if self.occ[idx / 64] & (1 << (idx % 64)) == 0 {
                continue;
            }
            let t = Time::from_cycles(c);
            for &(seq, ref ev) in &self.wheel[idx] {
                f(t, seq, ev);
            }
        }
        for Reverse(e) in &self.heap {
            if e.time < limit {
                f(e.time, e.seq, &e.event);
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A set of per-shard [`EventQueue`]s sharing one global push-sequence
/// counter.
///
/// Routing every event to the sub-queue of the node that will handle it
/// lets the windowed-parallel engine hand each worker thread exclusive
/// `&mut` access to its shard's sub-queue, while the *global* sequence
/// counter preserves the machine-wide same-cycle FIFO contract: popping
/// globally (argmin of the per-shard `(time, seq)` heads) yields exactly
/// the sequence a single [`EventQueue`] would have, entry for entry.
///
/// With one shard this degenerates to a thin wrapper around a single
/// `EventQueue` — the serial engine's configuration.
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
    seq: u64,
}

impl<E> ShardedEventQueue<E> {
    /// Creates a queue with `shards` empty sub-queues (at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedEventQueue {
            shards: (0..shards.max(1)).map(|_| EventQueue::new()).collect(),
            seq: 0,
        }
    }

    /// Number of sub-queues.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Allocates the next global sequence number. Exposed so the parallel
    /// engine's replay phase can assign canonical seqs to events that were
    /// staged inside a window before pushing them.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Schedules `event` on sub-queue `shard` with a freshly allocated
    /// global sequence number.
    pub fn push(&mut self, shard: usize, at: Time, event: E) {
        let seq = self.alloc_seq();
        self.shards[shard].push_with_seq(at, seq, event);
    }

    /// Schedules `event` on sub-queue `shard` under a caller-allocated
    /// sequence number (from [`ShardedEventQueue::alloc_seq`]).
    pub fn push_with_seq(&mut self, shard: usize, at: Time, seq: u64, event: E) {
        self.shards[shard].push_with_seq(at, seq, event);
    }

    /// Removes and returns the globally earliest event: the argmin over
    /// the memoized per-shard `(time, seq)` heads.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let mut best: Option<((Time, u64), usize)> = None;
        for i in 0..self.shards.len() {
            if let Some(key) = self.shards[i].peek_key() {
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, i));
                }
            }
        }
        let (_, i) = best?;
        self.shards[i].pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Time of the globally earliest pending event (min over shard heads).
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// `(time, seq)` key of the globally earliest pending entry.
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        let mut min: Option<(Time, u64)> = None;
        for q in &mut self.shards {
            if let Some(key) = q.peek_key() {
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
            }
        }
        min
    }

    /// Exclusive access to one sub-queue (coordinator-side use).
    pub fn shard_mut(&mut self, shard: usize) -> &mut EventQueue<E> {
        &mut self.shards[shard]
    }

    /// The sub-queues as a slice, so the parallel engine can split them
    /// into disjoint `&mut` borrows for its worker threads.
    pub fn shards_mut(&mut self) -> &mut [EventQueue<E>] {
        &mut self.shards
    }

    /// Total pending events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Whether no events are pending on any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|q| q.is_empty())
    }
}

/// The original single-tier `BinaryHeap` event queue.
///
/// Same ordering contract as [`EventQueue`] (nondecreasing time, same-cycle
/// FIFO). Kept as the measured baseline for the kernel benchmark and as the
/// oracle in differential property tests; not used by the simulator.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap(), (Time::from_cycles(7), i));
        }
    }

    #[test]
    fn interleaved_times() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(5), "c");
        q.push(Time::from_cycles(1), "a");
        q.push(Time::from_cycles(3), "b");
        q.push(Time::from_cycles(5), "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_cycles(9), ());
        q.push(Time::from_cycles(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_cycles(2)));
    }

    #[test]
    fn far_events_spill_to_heap_and_return() {
        let mut q = EventQueue::new();
        // Far beyond the wheel span at push time.
        q.push(Time::from_cycles(10_000), "far");
        q.push(Time::from_cycles(3), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "near");
        // The heap event must surface even though the wheel window has
        // advanced past nothing in particular.
        assert_eq!(q.pop().unwrap(), (Time::from_cycles(10_000), "far"));
        assert!(q.is_empty());
    }

    #[test]
    fn cross_tier_fifo_at_same_cycle() {
        // Push an event for cycle 1000 while it is far (heap), then advance
        // near it and push another for the same cycle (wheel). The heap one
        // was pushed first and must pop first.
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(1000), "first");
        q.push(Time::from_cycles(900), "advance");
        assert_eq!(q.pop().unwrap().1, "advance"); // cursor -> 900
        q.push(Time::from_cycles(1000), "second");
        assert_eq!(q.pop().unwrap(), (Time::from_cycles(1000), "first"));
        assert_eq!(q.pop().unwrap(), (Time::from_cycles(1000), "second"));
    }

    #[test]
    fn push_in_the_past_still_pops_in_order() {
        // The simulator never schedules into the past, but the queue
        // contract tolerates it: such events go to the heap and pop
        // immediately (they are the minimum).
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(50), "a");
        assert_eq!(q.pop().unwrap().1, "a"); // cursor -> 50
        q.push(Time::from_cycles(10), "past");
        q.push(Time::from_cycles(51), "near");
        assert_eq!(q.pop().unwrap(), (Time::from_cycles(10), "past"));
        assert_eq!(q.pop().unwrap(), (Time::from_cycles(51), "near"));
    }

    #[test]
    fn spill_boundary_is_exact() {
        // cursor = 0: cycle WHEEL_SPAN-1 is the last wheel cycle, cycle
        // WHEEL_SPAN the first heap cycle. Both must pop in time order with
        // FIFO among equals regardless of tier.
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(WHEEL_SPAN), "heap1");
        q.push(Time::from_cycles(WHEEL_SPAN - 1), "wheel");
        q.push(Time::from_cycles(WHEEL_SPAN), "heap2");
        assert_eq!(q.pop().unwrap().1, "wheel");
        assert_eq!(q.pop().unwrap().1, "heap1");
        assert_eq!(q.pop().unwrap().1, "heap2");
    }

    /// Drains `q` and checks (time, seq-as-payload) global ordering.
    fn assert_sorted_stable(mut q: EventQueue<usize>) {
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li), "order violated at {t}/{i}");
            }
            last = Some((t, i));
        }
    }

    #[test]
    fn large_mixed_push_pop_across_boundary() {
        // 10^5 mixed pushes/pops with deltas straddling the wheel->heap
        // spill boundary, checked differentially against the pure-heap
        // oracle at every pop.
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut q = EventQueue::new();
        let mut oracle = HeapEventQueue::new();
        let mut now = 0u64;
        let mut pushed = 0usize;
        for i in 0..100_000 {
            if pushed == 0 || step() % 3 != 0 {
                // Deltas cluster just around WHEEL_SPAN: 0..2*WHEEL_SPAN.
                let delta = step() % (2 * WHEEL_SPAN);
                let t = Time::from_cycles(now + delta);
                q.push(t, i);
                oracle.push(t, i);
                pushed += 1;
            } else {
                let got = q.pop();
                let want = oracle.pop();
                assert_eq!(got, want);
                now = got.expect("pushed > 0").0.cycles();
                pushed -= 1;
            }
        }
        loop {
            let got = q.pop();
            assert_eq!(got, oracle.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pop_entry_returns_push_seqs() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(5), "b");
        q.push(Time::from_cycles(2), "a");
        q.push(Time::from_cycles(1000), "far");
        assert_eq!(q.pop_entry(), Some((Time::from_cycles(2), 1, "a")));
        assert_eq!(q.pop_entry(), Some((Time::from_cycles(5), 0, "b")));
        assert_eq!(q.pop_entry(), Some((Time::from_cycles(1000), 2, "far")));
        assert_eq!(q.pop_entry(), None);
    }

    #[test]
    fn push_with_seq_orders_by_explicit_seq() {
        // Two entries at the same cycle, in different tiers, with
        // caller-chosen seqs: the smaller seq pops first.
        let mut q = EventQueue::new();
        q.push_with_seq(Time::from_cycles(1000), 7, "heap");
        q.push_with_seq(Time::from_cycles(3), 3, "near");
        assert_eq!(q.pop().unwrap().1, "near");
        q.push_with_seq(Time::from_cycles(1000), 9, "wheel");
        assert_eq!(q.pop_entry(), Some((Time::from_cycles(1000), 7, "heap")));
        assert_eq!(q.pop_entry(), Some((Time::from_cycles(1000), 9, "wheel")));
        // The internal counter advanced past the explicit seqs.
        q.push(Time::from_cycles(2000), "next");
        assert_eq!(q.pop_entry().unwrap().1, 10);
    }

    #[test]
    fn for_each_before_covers_both_tiers() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(2), "w1");
        q.push(Time::from_cycles(7), "w2");
        q.push(Time::from_cycles(5000), "h-far");
        // Land a heap entry inside the scan range: push far, then advance.
        q.push(Time::from_cycles(300), "h-near");
        let mut seen = Vec::new();
        q.for_each_before(Time::from_cycles(301), |t, seq, e| seen.push((t.cycles(), seq, *e)));
        seen.sort();
        assert_eq!(seen, vec![(2, 0, "w1"), (7, 1, "w2"), (300, 3, "h-near")]);
        let mut none = 0;
        q.for_each_before(Time::from_cycles(2), |_, _, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn peek_key_matches_pop_entry() {
        let mut q = EventQueue::new();
        q.push(Time::from_cycles(9), ());
        q.push(Time::from_cycles(9), ());
        q.push(Time::from_cycles(400), ());
        while let Some(key) = q.peek_key() {
            let (t, seq, ()) = q.pop_entry().unwrap();
            assert_eq!(key, (t, seq));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_single_shard_matches_plain_queue() {
        let mut s = ShardedEventQueue::new(1);
        let mut q = EventQueue::new();
        for (t, i) in [(5u64, 0), (1, 1), (5, 2), (900, 3)] {
            s.push(0, Time::from_cycles(t), i);
            q.push(Time::from_cycles(t), i);
        }
        loop {
            let got = s.pop();
            assert_eq!(got, q.pop());
            if got.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Popping always yields events in nondecreasing time order, and
        /// events with equal time in push order.
        #[test]
        fn pops_sorted_stable(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_cycles(t), i);
            }
            assert_sorted_stable(q);
        }

        /// Same property with deltas spanning the wheel->heap boundary and
        /// interleaved pops (the pop path moves the cursor, which is where
        /// windowing bugs would hide).
        #[test]
        fn pops_sorted_stable_across_tiers(
            ops in proptest::collection::vec((0u64..3 * WHEEL_SPAN, any::<bool>()), 0..400)
        ) {
            let mut q = EventQueue::new();
            let mut oracle = HeapEventQueue::new();
            let mut now = 0u64;
            for (i, &(delta, do_pop)) in ops.iter().enumerate() {
                if do_pop {
                    let got = q.pop();
                    prop_assert_eq!(got, oracle.pop());
                    if let Some((t, _)) = got {
                        now = t.cycles();
                    }
                } else {
                    let t = Time::from_cycles(now + delta);
                    q.push(t, i);
                    oracle.push(t, i);
                }
            }
            loop {
                let got = q.pop();
                prop_assert_eq!(got, oracle.pop());
                if got.is_none() { break; }
            }
        }

        /// A sharded queue with any shard routing pops the identical global
        /// sequence a single queue would: the global seq counter makes the
        /// sub-queue placement invisible.
        #[test]
        fn sharded_pop_order_matches_single_queue(
            nshards in 1usize..5,
            ops in proptest::collection::vec((0u64..3 * WHEEL_SPAN, 0usize..5, any::<bool>()), 0..300)
        ) {
            let mut s = ShardedEventQueue::new(nshards);
            let mut q = EventQueue::new();
            let mut now = 0u64;
            for (i, &(delta, shard, do_pop)) in ops.iter().enumerate() {
                if do_pop {
                    let got = s.pop();
                    prop_assert_eq!(got, q.pop());
                    prop_assert_eq!(s.peek_time(), q.peek_time());
                    if let Some((t, _)) = got {
                        now = t.cycles();
                    }
                } else {
                    let t = Time::from_cycles(now + delta);
                    s.push(shard % nshards, t, i);
                    q.push(t, i);
                }
                prop_assert_eq!(s.len(), q.len());
            }
            loop {
                let got = s.pop();
                prop_assert_eq!(got, q.pop());
                if got.is_none() { break; }
            }
        }

        /// The memoized `peek_time` always equals the true minimum of the
        /// live multiset, no matter how pushes, pops and repeated peeks
        /// interleave across the wheel/heap boundary (the memo is refreshed
        /// by pushes and invalidated by pops; a stale memo would surface
        /// here as a peek that disagrees with the multiset minimum).
        #[test]
        fn peek_memo_matches_multiset_min(
            ops in proptest::collection::vec((0u64..3 * WHEEL_SPAN, 0u8..3), 0..400)
        ) {
            let mut q = EventQueue::new();
            let mut live: Vec<u64> = Vec::new();
            let mut now = 0u64;
            for (i, &(delta, op)) in ops.iter().enumerate() {
                match op {
                    0 => {
                        let t = now + delta;
                        q.push(Time::from_cycles(t), i);
                        live.push(t);
                    }
                    1 => {
                        let got = q.pop();
                        let min = live.iter().copied().min();
                        prop_assert_eq!(got.map(|(t, _)| t.cycles()), min);
                        if let Some(m) = min {
                            live.swap_remove(live.iter().position(|&t| t == m).unwrap());
                            now = m;
                        }
                    }
                    _ => {} // fall through to the peek below
                }
                let expect = live.iter().copied().min().map(Time::from_cycles);
                prop_assert_eq!(q.peek_time(), expect);
                prop_assert_eq!(q.peek_time(), expect); // repeated peek: memo path
            }
        }
    }
}
