//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in *pclocks* (processor clock cycles).
///
/// The paper clocks processors at 100 MHz, so one pclock is 10 ns. `Time` is
/// also used for durations: the difference of two `Time`s is a `Time`.
///
/// # Example
///
/// ```
/// use dirext_kernel::Time;
///
/// let t = Time::from_cycles(54);
/// assert_eq!(t + Time::from_cycles(6), Time::from_cycles(60));
/// assert_eq!(t.as_nanos(), 540);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero (start of simulation).
    pub const ZERO: Time = Time(0);

    /// Creates a `Time` from a number of processor cycles.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        Time(cycles)
    }

    /// Returns the number of processor cycles.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Returns this time in nanoseconds (1 pclock = 10 ns at 100 MHz).
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 * 10
    }

    /// Saturating subtraction: returns `self - other`, or zero if `other`
    /// is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Add for Time {
    type Output = Time;

    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(rhs.0 <= self.0, "time went backwards: {rhs} > {self}");
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}pc", self.0)
    }
}

impl From<u64> for Time {
    fn from(cycles: u64) -> Self {
        Time(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_display() {
        let a = Time::from_cycles(30);
        let b = Time::from_cycles(12);
        assert_eq!((a + b).cycles(), 42);
        assert_eq!((a - b).cycles(), 18);
        assert_eq!(a.to_string(), "30pc");
        assert_eq!(Time::ZERO.cycles(), 0);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        let a = Time::from_cycles(5);
        let b = Time::from_cycles(9);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a).cycles(), 4);
    }

    #[test]
    fn nanos_conversion() {
        assert_eq!(Time::from_cycles(1).as_nanos(), 10);
        assert_eq!(Time::from_cycles(54).as_nanos(), 540);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_cycles(1) < Time::from_cycles(2));
        assert_eq!(Time::from_cycles(7).max(Time::from_cycles(3)).cycles(), 7);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    #[cfg(debug_assertions)]
    fn subtraction_underflow_panics_in_debug() {
        let _ = Time::from_cycles(1) - Time::from_cycles(2);
    }
}
