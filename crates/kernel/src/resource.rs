//! Single-server occupancy modelling.

use crate::Time;

/// A serially reusable resource (a bus, a cache port, a network link).
///
/// Requests acquire the resource for a duration; if it is busy, the request
/// is queued behind the current holder. `acquire` returns the time at which
/// the request actually *starts* service, so callers can schedule the
/// completion event at `start + duration` and attribute the waiting time
/// `start - now` to contention.
///
/// This is the node-level contention model the paper relies on: "contention
/// is accurately modelled in each node" even when the network is ideal.
///
/// # Example
///
/// ```
/// use dirext_kernel::{Resource, Time};
///
/// let mut bus = Resource::new();
/// let t0 = bus.acquire(Time::from_cycles(100), Time::from_cycles(3));
/// assert_eq!(t0, Time::from_cycles(100)); // idle: starts immediately
/// let t1 = bus.acquire(Time::from_cycles(101), Time::from_cycles(3));
/// assert_eq!(t1, Time::from_cycles(103)); // queued behind first transfer
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resource {
    busy_until: Time,
    busy_cycles: u64,
    acquisitions: u64,
    wait_cycles: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `duration` starting no earlier than `now`.
    ///
    /// Returns the service start time (`>= now`).
    pub fn acquire(&mut self, now: Time, duration: Time) -> Time {
        let start = self.busy_until.max(now);
        self.wait_cycles += (start - now).cycles();
        self.busy_until = start + duration;
        self.busy_cycles += duration.cycles();
        self.acquisitions += 1;
        start
    }

    /// The time at which the resource next becomes free.
    pub fn free_at(&self) -> Time {
        self.busy_until
    }

    /// Whether the resource is idle at `now`.
    pub fn is_idle(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Total cycles of service performed so far (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total cycles requests spent queued behind earlier holders.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Number of acquisitions served.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new();
        assert!(r.is_idle(t(0)));
        assert_eq!(r.acquire(t(5), t(10)), t(5));
        assert_eq!(r.free_at(), t(15));
        assert!(!r.is_idle(t(10)));
        assert!(r.is_idle(t(15)));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(t(0), t(4)), t(0));
        assert_eq!(r.acquire(t(1), t(4)), t(4));
        assert_eq!(r.acquire(t(2), t(4)), t(8));
        assert_eq!(r.wait_cycles(), 3 + 6);
        assert_eq!(r.busy_cycles(), 12);
        assert_eq!(r.acquisitions(), 3);
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = Resource::new();
        r.acquire(t(0), t(2));
        // Request long after the first completes: no waiting.
        assert_eq!(r.acquire(t(100), t(2)), t(100));
        assert_eq!(r.wait_cycles(), 0);
    }
}
