//! A tiny deterministic PRNG for workload generation.

/// A PCG-XSH-RR 32-bit pseudo-random number generator.
///
/// The simulator needs reproducible randomness that is stable across
/// platforms and library versions, so we carry our own 64-bit-state PCG
/// instead of depending on an external RNG crate. The generator is *not*
/// cryptographic — it drives synthetic workload generation only.
///
/// # Example
///
/// ```
/// use dirext_kernel::Pcg32;
///
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // same seed, same stream
/// let die = a.below(6); // uniform in 0..6
/// assert!(die < 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_INC: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_INC >> 1)
    }

    /// Creates a generator with an explicit stream selector, so independent
    /// components (e.g. per-processor generators) can share a seed without
    /// sharing a sequence.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.state = rng.inc.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Returns the next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform value in `0..bound` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Returns a uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.below(den) < num
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_stream_is_stable() {
        // Golden values: if this test ever fails, workload traces (and
        // therefore every recorded experiment) have silently changed.
        let mut rng = Pcg32::new(0xCAFE);
        let got: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let again: Vec<u32> = {
            let mut r = Pcg32::new(0xCAFE);
            (0..4).map(|_| r.next_u32()).collect()
        };
        assert_eq!(got, again);
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::with_stream(1, 10);
        let mut b = Pcg32::with_stream(1, 11);
        let av: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let bv: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Pcg32::new(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.below(6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Pcg32::new(1).below(0);
    }

    proptest! {
        #[test]
        fn below_always_in_bounds(seed in any::<u64>(), bound in 1u32..1000) {
            let mut rng = Pcg32::new(seed);
            for _ in 0..64 {
                prop_assert!(rng.below(bound) < bound);
            }
        }

        #[test]
        fn range_always_in_bounds(seed in any::<u64>(), lo in 0u32..100, width in 1u32..100) {
            let mut rng = Pcg32::new(seed);
            let v = rng.range(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
    }
}
