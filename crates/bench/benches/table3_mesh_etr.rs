//! Table 3 — execution-time ratios vs BASIC on wormhole meshes of 64-, 32-
//! and 16-bit links (the network-contention experiment of Section 5.3).

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::{suite, workload};
use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::{experiments, NetworkKind};
use dirext_workloads::App;

fn bench(c: &mut Criterion) {
    let table = experiments::table3(&suite()).expect("table3 sweep");
    eprintln!("\n{table}\n");
    for row in &table.rows {
        let (pcw, pm) = row.degradation();
        eprintln!(
            "  {:9} degradation 64b -> 16b: P+CW {pcw:+.2}, P+M {pm:+.2}",
            row.app
        );
    }

    let mut group = c.benchmark_group("table3_mesh_etr");
    group.sample_size(10);
    let w = workload(App::Mp3d);
    for bits in [64u32, 16] {
        group.bench_function(format!("MP3D/P+CW/mesh{bits}"), |b| {
            b.iter(|| {
                experiments::run_protocol_on(
                    &w,
                    ProtocolKind::PCw,
                    Consistency::Rc,
                    NetworkKind::Mesh { link_bits: bits },
                    None,
                )
                .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
