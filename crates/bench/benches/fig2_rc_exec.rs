//! Figure 2 — execution times relative to BASIC under release consistency.
//!
//! Prints the regenerated figure, then benches one simulation per
//! (application × protocol) cell.

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::{suite, workload};
use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::experiments;
use dirext_workloads::App;

fn bench(c: &mut Criterion) {
    let fig = experiments::fig2(&suite()).expect("fig2 sweep");
    eprintln!("\n{fig}\n");

    let mut group = c.benchmark_group("fig2_rc_exec");
    group.sample_size(10);
    for app in App::ALL {
        let w = workload(app);
        for kind in [ProtocolKind::Basic, ProtocolKind::PCw, ProtocolKind::PCwM] {
            group.bench_function(format!("{app}/{kind}"), |b| {
                b.iter(|| experiments::run_protocol(&w, kind, Consistency::Rc).expect("run"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
