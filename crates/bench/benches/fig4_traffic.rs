//! Figure 4 — total network traffic normalized to BASIC.

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::{suite, workload};
use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::experiments;
use dirext_workloads::App;

fn bench(c: &mut Criterion) {
    let fig = experiments::fig4(&suite()).expect("fig4 sweep");
    eprintln!("\n{fig}\n");

    let mut group = c.benchmark_group("fig4_traffic");
    group.sample_size(10);
    for kind in [ProtocolKind::Basic, ProtocolKind::M, ProtocolKind::PCw] {
        let w = workload(App::Cholesky);
        group.bench_function(format!("Cholesky/{kind}"), |b| {
            b.iter(|| experiments::run_protocol(&w, kind, Consistency::Rc).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
