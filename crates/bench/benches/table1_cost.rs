//! Table 1 — hardware cost of BASIC and each extension.
//!
//! The table is a property of the implementation (`dirext_core::cost`);
//! the bench prints it and measures the (trivial) computation plus a
//! machine-construction round for each protocol, which exercises how the
//! per-line state scales.

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_core::cost::HardwareCost;
use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::{Machine, MachineConfig};
use dirext_workloads::micro;

fn bench(c: &mut Criterion) {
    eprintln!("\n{}", dirext_sim::experiments::table1(16));

    let mut group = c.benchmark_group("table1_cost");
    group.bench_function("cost_model_all_protocols", |b| {
        b.iter(|| {
            ProtocolKind::ALL
                .iter()
                .map(|k| HardwareCost::of(&k.config(Consistency::Rc), 16).slc_bits_per_line)
                .sum::<u32>()
        })
    });
    let w = micro::migratory_pingpong(16, 4, 50);
    for kind in [ProtocolKind::Basic, ProtocolKind::PCwM] {
        group.bench_function(format!("machine_build_and_run/{kind}"), |b| {
            b.iter(|| {
                Machine::new(MachineConfig::paper_default(kind.config(Consistency::Rc)))
                    .run(&w)
                    .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
