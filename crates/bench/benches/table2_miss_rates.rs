//! Table 2 — cold and coherence miss-rate components.

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::{suite, workload};
use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::experiments;
use dirext_workloads::App;

fn bench(c: &mut Criterion) {
    let table = experiments::table2(&suite()).expect("table2 sweep");
    eprintln!("\n{table}\n");
    // The additivity observation the paper highlights in boldface.
    for row in &table.rows {
        let (cold_gap, coh_gap) = row.additivity_error();
        eprintln!(
            "  {:9} additivity error: cold {:.2}pp, coherence {:.2}pp",
            row.app, cold_gap, coh_gap
        );
    }

    let mut group = c.benchmark_group("table2_miss_rates");
    group.sample_size(10);
    for kind in [
        ProtocolKind::Basic,
        ProtocolKind::P,
        ProtocolKind::Cw,
        ProtocolKind::PCw,
    ] {
        let w = workload(App::Mp3d);
        group.bench_function(format!("MP3D/{kind}"), |b| {
            b.iter(|| experiments::run_protocol(&w, kind, Consistency::Rc).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
