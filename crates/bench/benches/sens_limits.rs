//! Section 5.4 — sensitivity to buffer depth (FLWB4/SLWB4) and to a
//! limited 16-KB second-level cache.

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::{suite, workload};
use dirext_core::{Consistency, ProtocolKind};
use dirext_memsys::Timing;
use dirext_sim::experiments::{self, sens::Constraint};
use dirext_sim::NetworkKind;
use dirext_workloads::App;

fn bench(c: &mut Criterion) {
    for constraint in [Constraint::SmallBuffers, Constraint::SmallSlc] {
        let s = experiments::sensitivity(&suite(), constraint).expect("sensitivity sweep");
        eprintln!("\n{s}");
    }
    eprintln!();

    let mut group = c.benchmark_group("sens_limits");
    group.sample_size(10);
    let w = workload(App::Lu);
    group.bench_function("LU/P/slc16k", |b| {
        b.iter(|| {
            experiments::run_protocol_on(
                &w,
                ProtocolKind::P,
                Consistency::Rc,
                NetworkKind::Uniform,
                Some(Timing::paper_default().with_limited_slc()),
            )
            .expect("run")
        })
    });
    group.bench_function("LU/BASIC/buffers4", |b| {
        b.iter(|| {
            experiments::run_protocol_on(
                &w,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                Some(Timing::paper_default().with_small_buffers()),
            )
            .expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
