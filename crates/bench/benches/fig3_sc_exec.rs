//! Figure 3 — execution times under sequential consistency
//! (B-SC, P, M-SC, P+M, with the BASIC-RC reference line).

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::{suite, workload};
use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::experiments;
use dirext_workloads::App;

fn bench(c: &mut Criterion) {
    let fig = experiments::fig3(&suite()).expect("fig3 sweep");
    eprintln!("\n{fig}\n");

    let mut group = c.benchmark_group("fig3_sc_exec");
    group.sample_size(10);
    for app in [App::Mp3d, App::Cholesky, App::Water] {
        let w = workload(app);
        for kind in [ProtocolKind::Basic, ProtocolKind::PM] {
            group.bench_function(format!("{app}/{kind}-SC"), |b| {
                b.iter(|| experiments::run_protocol(&w, kind, Consistency::Sc).expect("run"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
