//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **adaptive vs fixed-degree prefetching** — the ICPP'93 claim the paper
//!   leans on ("the need to adjust the degree of prefetching dynamically
//!   ... was demonstrated");
//! * **competitive threshold 1 with write caches vs threshold 4 without**
//!   — the paper's Section 3.3 trade-off ("a competitive update protocol
//!   with write caches and a threshold of one will in general exhibit less
//!   network traffic ... than a competitive-update protocol using a
//!   threshold of four and no write caches");
//! * **migratory reversion on/off** — the extra cache state's payoff;
//! * **write-cache capacity** — the paper's "a direct-mapped write cache
//!   with only four blocks is very effective" sizing claim.

use criterion::{criterion_group, criterion_main, Criterion};
use dirext_bench::workload;
use dirext_core::config::{CompetitiveConfig, Consistency, PrefetchConfig, ProtocolConfig};
use dirext_sim::{Machine, MachineConfig};
use dirext_workloads::App;

fn prefetch_cfg(adaptive: bool, k: u32) -> ProtocolConfig {
    ProtocolConfig {
        consistency: Consistency::Rc,
        prefetch: Some(PrefetchConfig {
            initial_k: k,
            adaptive,
            ..PrefetchConfig::default()
        }),
        migratory: false,
        migratory_revert: true,
        exclusive_clean: false,
        competitive: None,
    }
}

fn competitive_cfg(threshold: u8, write_cache: bool) -> ProtocolConfig {
    ProtocolConfig {
        consistency: Consistency::Rc,
        prefetch: None,
        migratory: false,
        migratory_revert: true,
        exclusive_clean: false,
        competitive: Some(CompetitiveConfig {
            threshold,
            write_cache,
        }),
    }
}

fn run(cfg: ProtocolConfig, w: &dirext_sim::trace::Workload) -> dirext_sim::stats::Metrics {
    Machine::new(MachineConfig::paper_default(cfg))
        .run(w)
        .expect("run")
}

fn bench(c: &mut Criterion) {
    // --- Ablation 1: adaptive vs fixed K -------------------------------
    eprintln!("\nAblation: adaptive vs fixed-degree sequential prefetching");
    eprintln!("app        variant      exec(pclk)  misses  pf-issued  pf-useful%");
    for app in [App::Lu, App::Mp3d, App::Ocean] {
        let w = workload(app);
        for (label, cfg) in [
            ("adaptive", prefetch_cfg(true, 1)),
            ("fixed-K1", prefetch_cfg(false, 1)),
            ("fixed-K4", prefetch_cfg(false, 4)),
            ("fixed-K16", prefetch_cfg(false, 16)),
        ] {
            let m = run(cfg, &w);
            eprintln!(
                "{:10} {:11}  {:10}  {:6}  {:9}  {:9.0}",
                app.name(),
                label,
                m.exec_cycles,
                m.slc_misses,
                m.prefetches_issued,
                100.0 * m.prefetch_efficiency()
            );
        }
    }

    // --- Ablation 2: write cache vs larger threshold -------------------
    eprintln!("\nAblation: competitive threshold 1 + write cache vs threshold 4 without");
    eprintln!("app        variant      exec(pclk)  coh-misses  net-bytes");
    for app in [App::Water, App::Ocean] {
        let w = workload(app);
        for (label, cfg) in [
            ("t1+wc", competitive_cfg(1, true)),
            ("t4+wc", competitive_cfg(4, true)),
            ("t4-nowc", competitive_cfg(4, false)),
            ("t1-nowc", competitive_cfg(1, false)),
        ] {
            let m = run(cfg, &w);
            eprintln!(
                "{:10} {:11}  {:10}  {:10}  {:9}",
                app.name(),
                label,
                m.exec_cycles,
                m.coh_misses,
                m.net_bytes
            );
        }
    }
    // --- Ablation 3: migratory reversion on/off ------------------------
    eprintln!("\nAblation: migratory reversion (the self-correcting cache state)");
    eprintln!("app        variant      exec(pclk)  reverts  coh-misses");
    for app in [App::Mp3d, App::Ocean] {
        let w = workload(app);
        for (label, revert) in [("revert-on", true), ("revert-off", false)] {
            let cfg = ProtocolConfig {
                consistency: Consistency::Rc,
                prefetch: None,
                migratory: true,
                migratory_revert: revert,
                exclusive_clean: false,
                competitive: None,
            };
            let m = run(cfg, &w);
            eprintln!(
                "{:10} {:11}  {:10}  {:7}  {:10}",
                app.name(),
                label,
                m.exec_cycles,
                m.migratory_reverts,
                m.coh_misses
            );
        }
    }

    // --- Ablation: hardware vs software prefetching ---------------------
    eprintln!("\nAblation: hardware adaptive vs software-annotated prefetching (LU)");
    {
        use dirext_workloads::{lu, lu_software_prefetch};
        let plain = lu(16, dirext_bench::bench_scale());
        let swpf = lu_software_prefetch(16, dirext_bench::bench_scale());
        let base = run(ProtocolConfig::basic(Consistency::Rc), &plain);
        let hw = run(prefetch_cfg(true, 1), &plain);
        let sw = run(ProtocolConfig::basic(Consistency::Rc), &swpf);
        eprintln!(
            "  BASIC              exec={} misses={}",
            base.exec_cycles, base.slc_misses
        );
        eprintln!(
            "  P (hardware)       exec={} misses={} rel={:.2}",
            hw.exec_cycles,
            hw.slc_misses,
            hw.relative_time(&base)
        );
        eprintln!(
            "  software prefetch  exec={} misses={} rel={:.2}",
            sw.exec_cycles,
            sw.slc_misses,
            sw.relative_time(&base)
        );
    }

    // --- Ablation: MESI E-state vs the migratory optimization -----------
    eprintln!("\nAblation: how much of M does a plain MESI exclusive-clean state capture?");
    eprintln!("(SC, where the write penalty is visible)");
    eprintln!("app        variant      exec(pclk)  ownership-reqs  write-stall");
    for app in [App::Mp3d, App::Water] {
        let w = workload(app);
        let variants: [(&str, ProtocolConfig); 3] = [
            ("BASIC", ProtocolConfig::basic(Consistency::Sc)),
            (
                "MESI-E",
                ProtocolConfig {
                    exclusive_clean: true,
                    ..ProtocolConfig::basic(Consistency::Sc)
                },
            ),
            (
                "M",
                ProtocolConfig {
                    migratory: true,
                    ..ProtocolConfig::basic(Consistency::Sc)
                },
            ),
        ];
        for (label, cfg) in variants {
            let m = run(cfg, &w);
            eprintln!(
                "{:10} {:11}  {:10}  {:14}  {:11}",
                app.name(),
                label,
                m.exec_cycles,
                m.ownership_reqs,
                m.stalls.write
            );
        }
    }

    // --- Ablation 4: write-cache size -----------------------------------
    eprintln!("\nAblation: write-cache capacity (paper: 'four blocks is very effective')");
    eprintln!("app        wc-blocks  exec(pclk)  update-reqs  net-bytes");
    for blocks in [1usize, 2, 4, 8, 16] {
        let w = workload(App::Water);
        let mut timing = dirext_memsys::Timing::paper_default();
        timing.write_cache_blocks = blocks;
        let cfg = MachineConfig::paper_default(competitive_cfg(1, true)).with_timing(timing);
        let m = Machine::new(cfg).run(&w).expect("run");
        eprintln!(
            "{:10} {:9}  {:10}  {:11}  {:9}",
            "Water", blocks, m.exec_cycles, m.update_reqs, m.net_bytes
        );
    }
    eprintln!();

    // --- Timed benches --------------------------------------------------
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let w = workload(App::Lu);
    group.bench_function("LU/adaptive-prefetch", |b| {
        b.iter(|| run(prefetch_cfg(true, 1), &w))
    });
    group.bench_function("LU/fixed-K16-prefetch", |b| {
        b.iter(|| run(prefetch_cfg(false, 16), &w))
    });
    let w = workload(App::Water);
    group.bench_function("Water/cw-t1-wc", |b| {
        b.iter(|| run(competitive_cfg(1, true), &w))
    });
    group.bench_function("Water/cw-t4-nowc", |b| {
        b.iter(|| run(competitive_cfg(4, false), &w))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
