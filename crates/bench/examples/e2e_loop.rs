//! End-to-end throughput loop: repeatedly runs the MP3D/BASIC/RC
//! experiment cell and reports aggregate sim-cycles/sec.
//!
//! This is the measurement core of the `e2e` perfbench phase, split out so
//! a profiler can be attached to exactly the workload the perf gate times:
//!
//! ```text
//! cargo build --release --example e2e_loop
//! perf record -- target/release/examples/e2e_loop 300
//! ```

use dirext_core::{Consistency, ProtocolKind};
use dirext_sim::experiments;
use dirext_workloads::{App, Scale};

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let w = App::Mp3d.workload(16, Scale::Small);
    let t0 = std::time::Instant::now();
    let mut cycles = 0u64;
    for _ in 0..reps {
        let metrics =
            experiments::run_protocol(&w, ProtocolKind::Basic, Consistency::Rc).expect("MP3D run");
        cycles += metrics.exec_cycles;
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "{reps} reps in {secs:.3}s: {:.0} sim-cycles/sec",
        cycles as f64 / secs
    );
}
