//! `perfbench` — the repo's recorded performance baseline.
//!
//! Times the three layers the hot-path work targets and writes the numbers
//! to two JSON files (default: the current directory, i.e. the repo root
//! when run via `cargo run`):
//!
//! - `BENCH_kernel.json` — event-queue push/pop cost, two-tier bucket
//!   wheel vs the pure-`BinaryHeap` baseline it replaced, on a hold-model
//!   workload shaped like the simulator's (mostly near-future inserts, a
//!   tail of far-future timeouts).
//! - `BENCH_sweep.json` — one application end-to-end, and the Figure-2
//!   sweep wall-clock serially vs on the worker pool (with an equality
//!   check of the two CSVs).
//! - `BENCH_e2e.json` — full runs of **all five applications** across every
//!   extension config (all eight [`ProtocolKind`]s under release
//!   consistency), reporting sim-cycles/sec and trace-events/sec per
//!   workload (with deterministic per-config cycle counts) plus the
//!   aggregate. This section always runs at `small`/16-proc scale — even
//!   under `--quick` — so a CI smoke run produces numbers directly
//!   comparable to the committed baseline; only the repetition count
//!   shrinks. It also records a `dir_scale` grid — Water on the
//!   hierarchical mesh, one cell per directory organization × node count —
//!   tracking the cost of the machinery a 64-node full-map run never
//!   touches (wide fan-outs, multi-word ack masks, two-level routing), and
//!   a `parallel_engine` grid — Water/P+CW at 256 and 1024 nodes under
//!   `sim_threads` 1 vs 4 — recording the windowed-parallel engine's
//!   throughput and speedup on this host (informational, not gated: the
//!   speedup is a property of the host's core count; single-core hosts
//!   record an honest slowdown from barrier thrash).
//!
//! Usage: `perfbench [--quick] [--jobs N] [--out-dir DIR] [--baseline FILE]
//! [--min-wall-secs S]`
//! `--quick` shrinks op counts and problem scale for CI smoke runs.
//! `--baseline FILE` compares the fresh end-to-end throughput against FILE
//! (a committed `BENCH_e2e.json`) and exits nonzero on a regression of more
//! than 20% — per workload when FILE carries the per-workload schema, per
//! `dir_scale` cell when FILE carries the cell grid, and on the aggregate
//! either way.
//! `--min-wall-secs S` scales each timed section's repetition count up
//! until the section's timed reps cover at least `S` seconds of wall clock
//! in total, so a fast machine cannot produce a median from two or three
//! unmeasurably short samples.
//!
//! [`ProtocolKind`]: dirext_core::ProtocolKind

use std::hint::black_box;
use std::time::Instant;

use dirext_kernel::{EventQueue, HeapEventQueue, Time};
use dirext_sim::experiments::{self, SweepOpts};
use dirext_trace::Workload;
use dirext_workloads::{App, Scale};

/// Deterministic xorshift64* — the bench must not depend on ambient
/// randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The hold-model delay distribution: mostly short hops inside the bucket
/// wheel's window, one in eight far enough to spill to the heap tier —
/// roughly the mix a 16-node machine's network and timeout events produce.
fn delay(rng: &mut Rng) -> u64 {
    let r = rng.next();
    if r.is_multiple_of(8) {
        300 + r % 4096
    } else {
        1 + r % 64
    }
}

macro_rules! hold_model {
    ($queue:expr, $ops:expr) => {{
        let mut q = $queue;
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let mut now = 0u64;
        for _ in 0..4096u64 {
            let d = delay(&mut rng);
            q.push(Time::from_cycles(now + d), d);
        }
        let t0 = Instant::now();
        for _ in 0..$ops {
            let (t, v) = q.pop().expect("hold model keeps the queue non-empty");
            now = t.cycles();
            let d = delay(&mut rng);
            q.push(Time::from_cycles(now + d), black_box(v ^ d));
        }
        let nanos = t0.elapsed().as_nanos() as f64;
        black_box(q.len());
        // One pop + one push per iteration.
        nanos / (2.0 * $ops as f64)
    }};
}

/// Median of `reps` timed repetitions of `f`.
fn median_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut xs: Vec<f64> = (0..reps).map(|_| f()).collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn json_escape_free(s: &str) -> &str {
    // All strings written below are static identifiers; assert rather than
    // escape so the hand-rolled JSON stays trivially correct.
    assert!(!s.contains(['"', '\\', '\n']), "unescapable string: {s}");
    s
}

/// Parses the number following `key` in `text`, starting the search at
/// byte offset `from`. Returns the value and the offset just past it.
fn number_after(text: &str, key: &str, from: usize, what: &str) -> Option<(f64, usize)> {
    let at = text[from..].find(key)? + from + key.len();
    let rest = text[at..].trim_start();
    let skipped = at + (text[at..].len() - rest.len());
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    let v = rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("{what}: bad {key} value: {e}"));
    Some((v, skipped + end))
}

/// Pulls the `agg_sim_cycles_per_sec` value out of a committed
/// `BENCH_e2e.json` by string search — the key is named uniquely so no
/// JSON parser is needed (serde_json in this workspace is an offline stub).
fn baseline_agg_cycles_per_sec(text: &str, path: &str) -> f64 {
    number_after(text, "\"agg_sim_cycles_per_sec\":", 0, path)
        .unwrap_or_else(|| panic!("--baseline {path}: no agg_sim_cycles_per_sec field"))
        .0
}

/// Pulls the per-workload `(name, sim_cycles_per_sec)` pairs out of a
/// committed `BENCH_e2e.json`. Workload entries use the `"workload":` key
/// (the legacy `single_app` block uses `"app":`), so an old-schema baseline
/// simply yields an empty list and the gate falls back to aggregate-only.
fn baseline_workload_rates(text: &str, path: &str) -> Vec<(String, f64)> {
    let mut rates = Vec::new();
    let mut from = 0;
    while let Some(at) = text[from..].find("\"workload\": \"") {
        let name_start = from + at + "\"workload\": \"".len();
        let name_len = text[name_start..]
            .find('"')
            .unwrap_or_else(|| panic!("--baseline {path}: unterminated workload name"));
        let name = text[name_start..name_start + name_len].to_string();
        let (rate, next) = number_after(
            text,
            "\"sim_cycles_per_sec\":",
            name_start + name_len,
            path,
        )
        .unwrap_or_else(|| panic!("--baseline {path}: workload {name} has no sim_cycles_per_sec"));
        rates.push((name, rate));
        from = next;
    }
    rates
}

/// Pulls the per-cell `(key, dirscale_cycles_per_sec)` pairs out of a
/// committed `BENCH_e2e.json`'s `dir_scale` grid. The rate field is named
/// uniquely, so an old-schema baseline (single `dir_scale` object, no
/// cells) yields an empty list and the per-cell gate is skipped.
fn baseline_dirscale_rates(text: &str, path: &str) -> Vec<(String, f64)> {
    let mut rates = Vec::new();
    let mut from = 0;
    while let Some(at) = text[from..].find("\"cell\": \"") {
        let key_start = from + at + "\"cell\": \"".len();
        let key_len = text[key_start..]
            .find('"')
            .unwrap_or_else(|| panic!("--baseline {path}: unterminated cell key"));
        let key = text[key_start..key_start + key_len].to_string();
        let Some((rate, next)) = number_after(
            text,
            "\"dirscale_cycles_per_sec\":",
            key_start + key_len,
            path,
        ) else {
            // parallel_engine cells reuse the "cell" key but carry no
            // dirscale rate; they are informational and never gated.
            from = key_start + key_len;
            continue;
        };
        rates.push((key, rate));
        from = next;
    }
    rates
}

/// Repetition count for a timed section: at least `base`, raised until the
/// timed reps together span `min_wall_secs` of wall clock given one rep
/// takes `per_rep_secs` (capped so a mis-measured warm-up cannot run away).
fn reps_for(base: usize, per_rep_secs: f64, min_wall_secs: f64) -> usize {
    if min_wall_secs <= 0.0 {
        return base;
    }
    let need = (min_wall_secs / per_rep_secs.max(1e-9)).ceil() as usize;
    base.max(need.min(1000))
}

fn main() {
    let mut quick = false;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut jobs_requested = host_cpus;
    let mut out_dir = String::from(".");
    let mut baseline: Option<String> = None;
    let mut min_wall_secs = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                jobs_requested = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--out-dir" => out_dir = args.next().expect("--out-dir DIR"),
            "--baseline" => baseline = Some(args.next().expect("--baseline FILE")),
            "--min-wall-secs" => {
                min_wall_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-wall-secs S");
            }
            other => panic!("unknown argument '{other}'"),
        }
    }
    // Oversubscribing a small host makes the "parallel" sweep *slower* than
    // serial (context-switch thrash), so the effective job count is clamped
    // to the cores actually available; both numbers are recorded.
    let jobs = jobs_requested.clamp(1, host_cpus);
    if jobs != jobs_requested {
        eprintln!(
            "perfbench: clamping --jobs {jobs_requested} to {jobs} (host has {host_cpus} CPUs)"
        );
    }
    let ops: u64 = if quick { 400_000 } else { 4_000_000 };
    let reps = if quick { 3 } else { 5 };
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    let scale_name = if quick { "tiny" } else { "small" };
    let procs = if quick { 4 } else { 16 };

    // --- Kernel tier: event-queue push/pop ---------------------------------
    // Warm-up probe doubles as the per-rep cost estimate for --min-wall-secs.
    let probe_ns = hold_model!(EventQueue::with_capacity(4096), ops);
    let kernel_reps = reps_for(reps, probe_ns * 2.0 * ops as f64 / 1e9, min_wall_secs);
    eprintln!("perfbench: kernel hold model ({ops} ops x {kernel_reps} reps)...");
    let two_tier_ns = median_of(kernel_reps, || hold_model!(EventQueue::with_capacity(4096), ops));
    let heap_ns = median_of(kernel_reps, || hold_model!(HeapEventQueue::new(), ops));
    let kernel = format!(
        "{{\n  \"benchmark\": \"event_queue_hold_model\",\n  \
         \"description\": \"one pop + one push per op, 4096 live events, 1/8 far-future\",\n  \
         \"ops\": {ops},\n  \"reps\": {kernel_reps},\n  \
         \"two_tier_ns_per_op\": {two_tier_ns:.2},\n  \
         \"heap_baseline_ns_per_op\": {heap_ns:.2},\n  \
         \"two_tier_events_per_sec\": {:.0},\n  \
         \"heap_baseline_events_per_sec\": {:.0},\n  \
         \"speedup_vs_heap\": {:.3}\n}}\n",
        1e9 / two_tier_ns,
        1e9 / heap_ns,
        heap_ns / two_tier_ns
    );
    std::fs::write(format!("{out_dir}/BENCH_kernel.json"), &kernel)
        .expect("write BENCH_kernel.json");
    eprintln!(
        "  two-tier {two_tier_ns:.1} ns/op vs heap {heap_ns:.1} ns/op ({:.2}x)",
        heap_ns / two_tier_ns
    );

    // --- End-to-end tier: one application, one protocol --------------------
    eprintln!("perfbench: single-app end-to-end (MP3D, {scale_name}, {procs} procs)...");
    let w = App::Mp3d.workload(procs, scale);
    let run_once = || {
        let t0 = Instant::now();
        let m = experiments::run_protocol(
            &w,
            dirext_core::ProtocolKind::Basic,
            dirext_core::Consistency::Rc,
        )
        .expect("MP3D run");
        (t0.elapsed().as_secs_f64(), m.exec_cycles)
    };
    let (warm_secs, exec_cycles) = run_once(); // warm-up, and the cycle count
    let app_secs = median_of(reps_for(reps, warm_secs, min_wall_secs), || run_once().0);
    let trace_events = w.total_events();

    // --- Sweep tier: Figure 2, serial vs pool ------------------------------
    let suite: Vec<Workload> = App::ALL.iter().map(|a| a.workload(procs, scale)).collect();
    eprintln!("perfbench: fig2 sweep serial...");
    let t0 = Instant::now();
    let serial = experiments::fig2_with(&suite, &SweepOpts::default()).expect("fig2 serial");
    let serial_secs = t0.elapsed().as_secs_f64();
    eprintln!("perfbench: fig2 sweep --jobs {jobs}...");
    let t0 = Instant::now();
    let parallel = experiments::fig2_with(&suite, &SweepOpts::jobs(jobs)).expect("fig2 parallel");
    let parallel_secs = t0.elapsed().as_secs_f64();
    let identical = serial.csv() == parallel.csv();
    assert!(identical, "parallel sweep output diverged from serial");

    // Same sweep with the write-ahead journal armed: measures the cost of
    // crash-safe bookkeeping (one JSONL append per cell) on the hot path.
    eprintln!("perfbench: fig2 sweep --jobs {jobs} with journal...");
    let journal_path = std::env::temp_dir().join(format!(
        "dirext-perfbench-journal-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);
    let journal = std::sync::Arc::new(
        experiments::Journal::create(&journal_path).expect("create bench journal"),
    );
    let t0 = Instant::now();
    let journaled = experiments::fig2_with(&suite, &SweepOpts::jobs(jobs).with_journal(journal))
        .expect("fig2 journaled");
    let journaled_secs = t0.elapsed().as_secs_f64();
    let journal_identical = serial.csv() == journaled.csv();
    assert!(
        journal_identical,
        "journaled sweep output diverged from serial"
    );
    std::fs::remove_file(&journal_path).ok();

    // Same sweep as a single-worker fleet: measures the full coordination
    // tax (lease claims, heartbeat thread, confirm re-reads of the lease
    // log) relative to the plain journaled run. One worker claims every
    // cell, so this is the per-cell overhead ceiling a real N-worker fleet
    // amortises across processes.
    eprintln!("perfbench: fig2 sweep --jobs {jobs} as single-worker fleet...");
    let fleet_dir =
        std::env::temp_dir().join(format!("dirext-perfbench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fleet_dir);
    let fleet = experiments::Fleet::new(experiments::FleetConfig::new(&fleet_dir, "bench"))
        .expect("join bench fleet");
    let t0 = Instant::now();
    let fleeted = experiments::fig2_with(
        &suite,
        &SweepOpts::jobs(jobs).with_fleet(std::sync::Arc::new(fleet)),
    )
    .expect("fig2 fleet");
    let fleet_secs = t0.elapsed().as_secs_f64();
    let fleet_identical = serial.csv() == fleeted.csv();
    assert!(fleet_identical, "fleet sweep output diverged from serial");
    std::fs::remove_dir_all(&fleet_dir).ok();

    let sweep = format!(
        "{{\n  \"benchmark\": \"sweep_and_end_to_end\",\n  \
         \"scale\": \"{}\",\n  \"procs\": {procs},\n  \
         \"single_app\": {{\n    \"app\": \"MP3D\",\n    \"protocol\": \"BASIC\",\n    \
         \"trace_events\": {trace_events},\n    \"exec_cycles\": {exec_cycles},\n    \
         \"wall_secs\": {app_secs:.4},\n    \
         \"trace_events_per_sec\": {:.0},\n    \
         \"sim_cycles_per_sec\": {:.0}\n  }},\n  \
         \"fig2_sweep\": {{\n    \"configs\": {},\n    \
         \"serial_secs\": {serial_secs:.3},\n    \
         \"parallel_secs\": {parallel_secs:.3},\n    \
         \"journaled_secs\": {journaled_secs:.3},\n    \
         \"journal_overhead\": {:.3},\n    \
         \"fleet_secs\": {fleet_secs:.3},\n    \
         \"fleet_overhead\": {:.3},\n    \
         \"jobs_requested\": {jobs_requested},\n    \"jobs\": {jobs},\n    \
         \"host_cpus\": {host_cpus},\n    \
         \"speedup\": {:.3},\n    \"outputs_identical\": {identical},\n    \
         \"journal_outputs_identical\": {journal_identical},\n    \
         \"fleet_outputs_identical\": {fleet_identical}\n  }}\n}}\n",
        json_escape_free(scale_name),
        trace_events as f64 / app_secs,
        exec_cycles as f64 / app_secs,
        suite.len() * experiments::fig2::FIG2_PROTOCOLS.len(),
        journaled_secs / parallel_secs,
        fleet_secs / journaled_secs,
        serial_secs / parallel_secs
    );
    std::fs::write(format!("{out_dir}/BENCH_sweep.json"), &sweep).expect("write BENCH_sweep.json");
    eprintln!(
        "  single app {app_secs:.3}s; sweep serial {serial_secs:.2}s vs --jobs {jobs} \
         {parallel_secs:.2}s ({:.2}x), journaled {journaled_secs:.2}s ({:.3}x overhead), \
         fleet {fleet_secs:.2}s ({:.3}x vs journaled), outputs identical",
        serial_secs / parallel_secs,
        journaled_secs / parallel_secs,
        fleet_secs / journaled_secs
    );

    // --- End-to-end tier: every app, every extension config, fixed scale ---
    // Always small/16 so quick CI runs stay comparable to the committed
    // baseline file; only the repetition count shrinks under --quick.
    let e2e_protocols = dirext_core::ProtocolKind::ALL;
    let e2e_loads: Vec<Workload> = App::ALL
        .iter()
        .map(|a| a.workload(16, Scale::Small))
        .collect();
    let e2e_configs = e2e_loads.len() * e2e_protocols.len();
    eprintln!(
        "perfbench: end-to-end {} apps x {} protocols (small, 16 procs)...",
        e2e_loads.len(),
        e2e_protocols.len()
    );
    // One timed section per workload: a rep runs the workload under all
    // eight protocols. Per-config exec-cycle counts are deterministic, so
    // they are recorded from the warm-up pass; wall clock is only trusted
    // at workload granularity (single configs finish in milliseconds).
    struct WorkloadBench {
        app: &'static str,
        reps: usize,
        wall_secs: f64,
        exec_cycles: u64,
        trace_events: u64,
        per_config: Vec<(&'static str, u64)>,
    }
    let mut workload_benches: Vec<WorkloadBench> = Vec::new();
    for (app, w) in App::ALL.iter().zip(&e2e_loads) {
        let run_wl = || {
            let t0 = Instant::now();
            let mut cycles = Vec::with_capacity(e2e_protocols.len());
            for kind in e2e_protocols {
                let m = experiments::run_protocol(w, kind, dirext_core::Consistency::Rc)
                    .expect("e2e run");
                cycles.push((kind.name(), m.exec_cycles));
            }
            (t0.elapsed().as_secs_f64(), cycles)
        };
        let (warm_secs, per_config) = run_wl(); // warm-up + deterministic cycles
        let wl_reps = reps_for(reps, warm_secs, min_wall_secs / e2e_loads.len() as f64);
        let wall_secs = median_of(wl_reps, || run_wl().0);
        let exec_cycles = per_config.iter().map(|&(_, c)| c).sum();
        eprintln!(
            "  {}: {} configs x {wl_reps} reps, {wall_secs:.3}s/rep, {:.0} sim-cycles/sec",
            app.name(),
            e2e_protocols.len(),
            exec_cycles as f64 / wall_secs
        );
        workload_benches.push(WorkloadBench {
            app: app.name(),
            reps: wl_reps,
            wall_secs,
            exec_cycles,
            trace_events: (w.total_events() * e2e_protocols.len()) as u64,
            per_config,
        });
    }
    let e2e_cycles: u64 = workload_benches.iter().map(|b| b.exec_cycles).sum();
    let e2e_events: u64 = workload_benches.iter().map(|b| b.trace_events).sum();
    let e2e_secs: f64 = workload_benches.iter().map(|b| b.wall_secs).sum();

    // Single MP3D/BASIC at the same fixed scale: the direct comparison
    // point against historical BENCH_sweep.json single_app numbers.
    let w0 = &e2e_loads[0];
    let run_mp3d = || {
        let t0 = Instant::now();
        let m = experiments::run_protocol(
            w0,
            dirext_core::ProtocolKind::Basic,
            dirext_core::Consistency::Rc,
        )
        .expect("e2e MP3D run");
        (t0.elapsed().as_secs_f64(), m.exec_cycles)
    };
    let (mp3d_warm, mp3d_cycles) = run_mp3d();
    let mp3d_secs = median_of(reps_for(reps, mp3d_warm, min_wall_secs), || run_mp3d().0);
    let mp3d_events = w0.total_events();

    // Directory-scaling grid: Water x P+CW on the hierarchical mesh, one
    // cell per directory organization x node count. The 256-node cells are
    // machines the full-map directory cannot build at all, so they get
    // their own records: the numbers track the cost of wide broadcast
    // fan-outs, >64-node ack masks and two-level routing on the hot path.
    // Each cell is regression-gated individually under --baseline, so a
    // slowdown specific to one organization (say, coarse-vector region
    // scans) cannot hide behind the health of the others.
    struct DirCell {
        key: String,
        dir_name: &'static str,
        procs: usize,
        reps: usize,
        trace_events: u64,
        exec_cycles: u64,
        wall_secs: f64,
    }
    let dir_orgs: [(&'static str, dirext_core::sharer::DirOrg); 2] = [
        (
            "ptr4b",
            dirext_core::sharer::DirOrg::LimitedPtr {
                ptrs: 4,
                broadcast: true,
            },
        ),
        (
            "coarse8",
            dirext_core::sharer::DirOrg::CoarseVector { region: 8 },
        ),
    ];
    let dir_procs = [64usize, 256];
    let dir_cell_count = (dir_orgs.len() * dir_procs.len()) as f64;
    let mut dir_cells: Vec<DirCell> = Vec::new();
    for &dprocs in &dir_procs {
        let dir_w = App::Water.workload(dprocs, Scale::Small);
        for (dir_name, org) in dir_orgs {
            eprintln!(
                "perfbench: dir-scale Water x P+CW (small, {dprocs} procs, {dir_name}, hmesh64)..."
            );
            let run_cell = || {
                let t0 = Instant::now();
                let m = experiments::run_protocol_dir(
                    &dir_w,
                    dirext_core::ProtocolKind::PCw,
                    dirext_core::Consistency::Rc,
                    dirext_sim::NetworkKind::HierMesh { link_bits: 64 },
                    org,
                    None,
                    None,
                )
                .expect("dir-scale run");
                (t0.elapsed().as_secs_f64(), m.exec_cycles)
            };
            let (warm_secs, exec_cycles) = run_cell();
            let cell_reps = reps_for(reps, warm_secs, min_wall_secs / dir_cell_count);
            let wall_secs = median_of(cell_reps, || run_cell().0);
            dir_cells.push(DirCell {
                key: format!("{dir_name}/{dprocs}"),
                dir_name,
                procs: dprocs,
                reps: cell_reps,
                trace_events: dir_w.total_events() as u64,
                exec_cycles,
                wall_secs,
            });
        }
    }

    // Windowed-parallel engine grid: Water x P+CW on hmesh64/ptr4b at 256
    // and 1024 nodes, serial vs 4 simulation threads. Results are
    // bit-identical by construction (the windowed_engine test suite pins
    // that); this grid records the *throughput* consequence on this host.
    // The speedup is a host property — >=2x needs >=4 real cores; a
    // single-core host honestly records a slowdown (the window barrier
    // becomes pure scheduler thrash) — so the cells are written to the
    // baseline file but never gated.
    struct ParCell {
        key: String,
        procs: usize,
        sim_threads: usize,
        reps: usize,
        exec_cycles: u64,
        wall_secs: f64,
    }
    let pe_procs = [256usize, 1024];
    let pe_threads = [1usize, 4];
    // The threaded cells are wall-clock heavy on small hosts; keep the
    // quick base rep count at 1 and let --min-wall-secs scale it up.
    let pe_reps = if quick { 1 } else { reps };
    let pe_cell_count = (pe_procs.len() * pe_threads.len()) as f64;
    let mut par_cells: Vec<ParCell> = Vec::new();
    for &pprocs in &pe_procs {
        let pe_w = App::Water.workload(pprocs, Scale::Small);
        for &threads in &pe_threads {
            eprintln!(
                "perfbench: parallel-engine Water x P+CW (small, {pprocs} procs, ptr4b, \
                 hmesh64, {threads} sim-threads)..."
            );
            let run_cell = || {
                let t0 = Instant::now();
                let m = experiments::run_protocol_engine(
                    &pe_w,
                    dirext_core::ProtocolKind::PCw,
                    dirext_core::Consistency::Rc,
                    dirext_sim::NetworkKind::HierMesh { link_bits: 64 },
                    dirext_core::sharer::DirOrg::LimitedPtr {
                        ptrs: 4,
                        broadcast: true,
                    },
                    None,
                    None,
                    threads,
                )
                .expect("parallel-engine run");
                (t0.elapsed().as_secs_f64(), m.exec_cycles)
            };
            let (warm_secs, exec_cycles) = run_cell();
            let cell_reps = reps_for(pe_reps, warm_secs, min_wall_secs / pe_cell_count);
            let wall_secs = median_of(cell_reps, || run_cell().0);
            par_cells.push(ParCell {
                key: format!("{pprocs}/t{threads}"),
                procs: pprocs,
                sim_threads: threads,
                reps: cell_reps,
                exec_cycles,
                wall_secs,
            });
        }
    }

    // Bit-identity spot check riding along with the measurement: serial
    // and threaded runs of the same machine must agree exactly.
    for pair in par_cells.chunks(2) {
        if let [a, b] = pair {
            assert_eq!(
                a.exec_cycles, b.exec_cycles,
                "windowed engine diverged from serial at {} procs",
                a.procs
            );
        }
    }

    let agg_cycles_per_sec = e2e_cycles as f64 / e2e_secs;
    let dir_cells_json: Vec<String> = dir_cells
        .iter()
        .map(|c| {
            format!(
                "      {{ \"cell\": \"{}\", \"dir\": \"{}\", \"procs\": {}, \"reps\": {}, \
                 \"trace_events\": {}, \"exec_cycles\": {}, \"wall_secs\": {:.4}, \
                 \"dirscale_cycles_per_sec\": {:.0} }}",
                json_escape_free(&c.key),
                json_escape_free(c.dir_name),
                c.procs,
                c.reps,
                c.trace_events,
                c.exec_cycles,
                c.wall_secs,
                c.exec_cycles as f64 / c.wall_secs
            )
        })
        .collect();
    let par_cells_json: Vec<String> = par_cells
        .iter()
        .map(|c| {
            // Speedup of this cell over the serial cell at the same procs.
            let serial = par_cells
                .iter()
                .find(|s| s.procs == c.procs && s.sim_threads == 1)
                .expect("serial cell exists");
            format!(
                "      {{ \"cell\": \"{}\", \"procs\": {}, \"sim_threads\": {}, \"reps\": {}, \
                 \"exec_cycles\": {}, \"wall_secs\": {:.4}, \"sim_cycles_per_sec\": {:.0}, \
                 \"speedup_vs_serial\": {:.3} }}",
                json_escape_free(&c.key),
                c.procs,
                c.sim_threads,
                c.reps,
                c.exec_cycles,
                c.wall_secs,
                c.exec_cycles as f64 / c.wall_secs,
                serial.wall_secs / c.wall_secs
            )
        })
        .collect();
    let per_workload_json: Vec<String> = workload_benches
        .iter()
        .map(|b| {
            let configs: Vec<String> = b
                .per_config
                .iter()
                .map(|&(name, cycles)| {
                    format!(
                        "        {{ \"protocol\": \"{}\", \"exec_cycles\": {cycles} }}",
                        json_escape_free(name)
                    )
                })
                .collect();
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"reps\": {},\n      \
                 \"trace_events\": {},\n      \"exec_cycles\": {},\n      \
                 \"wall_secs\": {:.4},\n      \
                 \"trace_events_per_sec\": {:.0},\n      \
                 \"sim_cycles_per_sec\": {:.0},\n      \
                 \"per_config\": [\n{}\n      ]\n    }}",
                json_escape_free(b.app),
                b.reps,
                b.trace_events,
                b.exec_cycles,
                b.wall_secs,
                b.trace_events as f64 / b.wall_secs,
                b.exec_cycles as f64 / b.wall_secs,
                configs.join(",\n")
            )
        })
        .collect();
    let e2e = format!(
        "{{\n  \"benchmark\": \"end_to_end_all_configs\",\n  \
         \"description\": \"full runs of all 5 apps across all 8 extension configs under RC\",\n  \
         \"scale\": \"small\",\n  \"procs\": 16,\n  \
         \"configs\": {e2e_configs},\n  \
         \"single_app\": {{\n    \"app\": \"MP3D\",\n    \"protocol\": \"BASIC\",\n    \
         \"trace_events\": {mp3d_events},\n    \"exec_cycles\": {mp3d_cycles},\n    \
         \"wall_secs\": {mp3d_secs:.4},\n    \
         \"trace_events_per_sec\": {:.0},\n    \
         \"sim_cycles_per_sec\": {:.0}\n  }},\n  \
         \"dir_scale\": {{\n    \"app\": \"Water\",\n    \"scale\": \"small\",\n    \
         \"protocol\": \"P+CW\",\n    \"network\": \"hmesh64\",\n    \
         \"cells\": [\n{}\n    ]\n  }},\n  \
         \"parallel_engine\": {{\n    \"app\": \"Water\",\n    \"scale\": \"small\",\n    \
         \"protocol\": \"P+CW\",\n    \"dir\": \"ptr4b\",\n    \"network\": \"hmesh64\",\n    \
         \"host_cpus\": {host_cpus},\n    \
         \"cells\": [\n{}\n    ]\n  }},\n  \
         \"per_workload\": [\n{}\n  ],\n  \
         \"aggregate\": {{\n    \"total_trace_events\": {e2e_events},\n    \
         \"total_exec_cycles\": {e2e_cycles},\n    \
         \"wall_secs\": {e2e_secs:.4},\n    \
         \"agg_trace_events_per_sec\": {:.0},\n    \
         \"agg_sim_cycles_per_sec\": {agg_cycles_per_sec:.0}\n  }}\n}}\n",
        mp3d_events as f64 / mp3d_secs,
        mp3d_cycles as f64 / mp3d_secs,
        dir_cells_json.join(",\n"),
        par_cells_json.join(",\n"),
        per_workload_json.join(",\n"),
        e2e_events as f64 / e2e_secs,
    );
    std::fs::write(format!("{out_dir}/BENCH_e2e.json"), &e2e).expect("write BENCH_e2e.json");
    eprintln!(
        "  e2e {e2e_configs} configs in {e2e_secs:.3}s: {agg_cycles_per_sec:.0} sim-cycles/sec \
         aggregate; MP3D/BASIC {:.0} sim-cycles/sec",
        mp3d_cycles as f64 / mp3d_secs,
    );
    for c in &dir_cells {
        eprintln!(
            "  dir-scale {}: {:.0} sim-cycles/sec ({} reps)",
            c.key,
            c.exec_cycles as f64 / c.wall_secs,
            c.reps
        );
    }
    for c in &par_cells {
        let serial = par_cells
            .iter()
            .find(|s| s.procs == c.procs && s.sim_threads == 1)
            .expect("serial cell exists");
        eprintln!(
            "  parallel-engine {}: {:.0} sim-cycles/sec ({:.3}x vs serial, {} reps, \
             host has {host_cpus} CPUs)",
            c.key,
            c.exec_cycles as f64 / c.wall_secs,
            serial.wall_secs / c.wall_secs,
            c.reps
        );
    }

    if let Some(path) = &baseline {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
        // Per-workload gate (skipped for old-schema baselines, which carry
        // no "workload" entries): every app must stay within 20% of its own
        // recorded throughput, so a regression in one workload cannot hide
        // behind an improvement in another.
        for (name, base_rate) in baseline_workload_rates(&text, path) {
            let Some(b) = workload_benches.iter().find(|b| b.app == name) else {
                panic!("--baseline {path}: unknown workload {name}");
            };
            let fresh = b.exec_cycles as f64 / b.wall_secs;
            let ratio = fresh / base_rate;
            eprintln!("  e2e gate {name}: fresh {fresh:.0} vs baseline {base_rate:.0} ({ratio:.3}x)");
            assert!(
                ratio >= 0.8,
                "{name} end-to-end throughput regressed more than 20% vs {path}: \
                 {fresh:.0} < 0.8 * {base_rate:.0}"
            );
        }
        // Per-dir-scale-cell gate (skipped for old-schema baselines, which
        // carry a single ungridded dir_scale object): each organization x
        // node-count cell must stay within 20% of its recorded throughput.
        for (key, base_rate) in baseline_dirscale_rates(&text, path) {
            let Some(c) = dir_cells.iter().find(|c| c.key == key) else {
                panic!("--baseline {path}: unknown dir_scale cell {key}");
            };
            let fresh = c.exec_cycles as f64 / c.wall_secs;
            let ratio = fresh / base_rate;
            eprintln!(
                "  dir-scale gate {key}: fresh {fresh:.0} vs baseline {base_rate:.0} ({ratio:.3}x)"
            );
            assert!(
                ratio >= 0.8,
                "dir_scale cell {key} regressed more than 20% vs {path}: \
                 {fresh:.0} < 0.8 * {base_rate:.0}"
            );
        }
        let base = baseline_agg_cycles_per_sec(&text, path);
        let ratio = agg_cycles_per_sec / base;
        eprintln!("  e2e gate: fresh {agg_cycles_per_sec:.0} vs baseline {base:.0} ({ratio:.3}x)");
        assert!(
            ratio >= 0.8,
            "end-to-end throughput regressed more than 20% vs {path}: \
             {agg_cycles_per_sec:.0} < 0.8 * {base:.0}"
        );
    }
    println!(
        "perfbench: wrote {out_dir}/BENCH_kernel.json, {out_dir}/BENCH_sweep.json and \
         {out_dir}/BENCH_e2e.json"
    );
}
