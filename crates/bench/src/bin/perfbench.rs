//! `perfbench` — the repo's recorded performance baseline.
//!
//! Times the three layers the hot-path work targets and writes the numbers
//! to two JSON files (default: the current directory, i.e. the repo root
//! when run via `cargo run`):
//!
//! - `BENCH_kernel.json` — event-queue push/pop cost, two-tier bucket
//!   wheel vs the pure-`BinaryHeap` baseline it replaced, on a hold-model
//!   workload shaped like the simulator's (mostly near-future inserts, a
//!   tail of far-future timeouts).
//! - `BENCH_sweep.json` — one application end-to-end, and the Figure-2
//!   sweep wall-clock serially vs on the worker pool (with an equality
//!   check of the two CSVs).
//!
//! Usage: `perfbench [--quick] [--jobs N] [--out-dir DIR]`
//! `--quick` shrinks op counts and problem scale for CI smoke runs.

use std::hint::black_box;
use std::time::Instant;

use dirext_kernel::{EventQueue, HeapEventQueue, Time};
use dirext_sim::experiments::{self, SweepOpts};
use dirext_trace::Workload;
use dirext_workloads::{App, Scale};

/// Deterministic xorshift64* — the bench must not depend on ambient
/// randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The hold-model delay distribution: mostly short hops inside the bucket
/// wheel's window, one in eight far enough to spill to the heap tier —
/// roughly the mix a 16-node machine's network and timeout events produce.
fn delay(rng: &mut Rng) -> u64 {
    let r = rng.next();
    if r.is_multiple_of(8) {
        300 + r % 4096
    } else {
        1 + r % 64
    }
}

macro_rules! hold_model {
    ($queue:expr, $ops:expr) => {{
        let mut q = $queue;
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let mut now = 0u64;
        for _ in 0..4096u64 {
            let d = delay(&mut rng);
            q.push(Time::from_cycles(now + d), d);
        }
        let t0 = Instant::now();
        for _ in 0..$ops {
            let (t, v) = q.pop().expect("hold model keeps the queue non-empty");
            now = t.cycles();
            let d = delay(&mut rng);
            q.push(Time::from_cycles(now + d), black_box(v ^ d));
        }
        let nanos = t0.elapsed().as_nanos() as f64;
        black_box(q.len());
        // One pop + one push per iteration.
        nanos / (2.0 * $ops as f64)
    }};
}

/// Median of `reps` timed repetitions of `f`.
fn median_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut xs: Vec<f64> = (0..reps).map(|_| f()).collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn json_escape_free(s: &str) -> &str {
    // All strings written below are static identifiers; assert rather than
    // escape so the hand-rolled JSON stays trivially correct.
    assert!(!s.contains(['"', '\\', '\n']), "unescapable string: {s}");
    s
}

fn main() {
    let mut quick = false;
    let mut jobs = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut out_dir = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs N");
            }
            "--out-dir" => out_dir = args.next().expect("--out-dir DIR"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    let ops: u64 = if quick { 400_000 } else { 4_000_000 };
    let reps = if quick { 3 } else { 5 };
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    let scale_name = if quick { "tiny" } else { "small" };
    let procs = if quick { 4 } else { 16 };

    // --- Kernel tier: event-queue push/pop ---------------------------------
    eprintln!("perfbench: kernel hold model ({ops} ops x {reps} reps)...");
    let two_tier_ns = median_of(reps, || hold_model!(EventQueue::with_capacity(4096), ops));
    let heap_ns = median_of(reps, || hold_model!(HeapEventQueue::new(), ops));
    let kernel = format!(
        "{{\n  \"benchmark\": \"event_queue_hold_model\",\n  \
         \"description\": \"one pop + one push per op, 4096 live events, 1/8 far-future\",\n  \
         \"ops\": {ops},\n  \"reps\": {reps},\n  \
         \"two_tier_ns_per_op\": {two_tier_ns:.2},\n  \
         \"heap_baseline_ns_per_op\": {heap_ns:.2},\n  \
         \"two_tier_events_per_sec\": {:.0},\n  \
         \"heap_baseline_events_per_sec\": {:.0},\n  \
         \"speedup_vs_heap\": {:.3}\n}}\n",
        1e9 / two_tier_ns,
        1e9 / heap_ns,
        heap_ns / two_tier_ns
    );
    std::fs::write(format!("{out_dir}/BENCH_kernel.json"), &kernel)
        .expect("write BENCH_kernel.json");
    eprintln!(
        "  two-tier {two_tier_ns:.1} ns/op vs heap {heap_ns:.1} ns/op ({:.2}x)",
        heap_ns / two_tier_ns
    );

    // --- End-to-end tier: one application, one protocol --------------------
    eprintln!("perfbench: single-app end-to-end (MP3D, {scale_name}, {procs} procs)...");
    let w = App::Mp3d.workload(procs, scale);
    let run_once = || {
        let t0 = Instant::now();
        let m = experiments::run_protocol(
            &w,
            dirext_core::ProtocolKind::Basic,
            dirext_core::Consistency::Rc,
        )
        .expect("MP3D run");
        (t0.elapsed().as_secs_f64(), m.exec_cycles)
    };
    let (_, exec_cycles) = run_once(); // warm-up, and the cycle count
    let app_secs = median_of(reps, || run_once().0);
    let trace_events = w.total_events();

    // --- Sweep tier: Figure 2, serial vs pool ------------------------------
    let suite: Vec<Workload> = App::ALL
        .iter()
        .map(|a| a.workload(procs, scale))
        .collect();
    eprintln!("perfbench: fig2 sweep serial...");
    let t0 = Instant::now();
    let serial = experiments::fig2_with(&suite, &SweepOpts::default()).expect("fig2 serial");
    let serial_secs = t0.elapsed().as_secs_f64();
    eprintln!("perfbench: fig2 sweep --jobs {jobs}...");
    let t0 = Instant::now();
    let parallel = experiments::fig2_with(&suite, &SweepOpts::jobs(jobs)).expect("fig2 parallel");
    let parallel_secs = t0.elapsed().as_secs_f64();
    let identical = serial.csv() == parallel.csv();
    assert!(identical, "parallel sweep output diverged from serial");

    let sweep = format!(
        "{{\n  \"benchmark\": \"sweep_and_end_to_end\",\n  \
         \"scale\": \"{}\",\n  \"procs\": {procs},\n  \
         \"single_app\": {{\n    \"app\": \"MP3D\",\n    \"protocol\": \"BASIC\",\n    \
         \"trace_events\": {trace_events},\n    \"exec_cycles\": {exec_cycles},\n    \
         \"wall_secs\": {app_secs:.4},\n    \
         \"trace_events_per_sec\": {:.0},\n    \
         \"sim_cycles_per_sec\": {:.0}\n  }},\n  \
         \"fig2_sweep\": {{\n    \"configs\": {},\n    \
         \"serial_secs\": {serial_secs:.3},\n    \
         \"parallel_secs\": {parallel_secs:.3},\n    \"jobs\": {jobs},\n    \
         \"host_cpus\": {},\n    \
         \"speedup\": {:.3},\n    \"outputs_identical\": {identical}\n  }}\n}}\n",
        json_escape_free(scale_name),
        trace_events as f64 / app_secs,
        exec_cycles as f64 / app_secs,
        suite.len() * experiments::fig2::FIG2_PROTOCOLS.len(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs / parallel_secs
    );
    std::fs::write(format!("{out_dir}/BENCH_sweep.json"), &sweep)
        .expect("write BENCH_sweep.json");
    eprintln!(
        "  single app {app_secs:.3}s; sweep serial {serial_secs:.2}s vs --jobs {jobs} \
         {parallel_secs:.2}s ({:.2}x), outputs identical",
        serial_secs / parallel_secs
    );
    println!("perfbench: wrote {out_dir}/BENCH_kernel.json and {out_dir}/BENCH_sweep.json");
}
