//! Shared helpers for the `dirext` benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables or figures
//! (printed to stderr before timing starts) and then measures the
//! simulator's throughput on representative configurations. The benches
//! run the suite at [`bench_scale`] so a full `cargo bench` finishes in
//! minutes; use the `dirext` CLI with `--scale paper` for the full-scale
//! tables recorded in `EXPERIMENTS.md`.

use dirext_sim::trace::Workload;
use dirext_workloads::{App, Scale};

/// The problem scale used by the benches.
pub fn bench_scale() -> Scale {
    Scale::Small
}

/// The five-application suite at bench scale.
pub fn suite() -> Vec<Workload> {
    App::ALL
        .iter()
        .map(|a| a.workload(16, bench_scale()))
        .collect()
}

/// One application's workload at bench scale.
pub fn workload(app: App) -> Workload {
    app.workload(16, bench_scale())
}
