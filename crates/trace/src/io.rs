//! Plain-text serialization of workloads.
//!
//! A workload can be dumped to (and reloaded from) a line-oriented text
//! format, so users can inspect generated traces, hand-edit them, or bring
//! reference streams from other tools into the simulator:
//!
//! ```text
//! # dirext trace v1
//! workload MP3D procs 16
//! proc 0
//! c 24            # compute 24 cycles
//! r 0x1000        # read
//! w 0x1004        # write
//! p 0x1040        # software prefetch (shared)
//! x 0x1060        # software prefetch (exclusive)
//! a 0x100000      # acquire the lock at this address
//! l 0x100000      # release it
//! b 3             # arrive at barrier 3
//! proc 1
//! ...
//! ```
//!
//! Comments (`#` to end of line) and blank lines are ignored. Addresses
//! accept decimal or `0x` hexadecimal.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::{Addr, BarrierId, MemEvent, Program, Workload};

/// The header magic of trace files.
pub const TRACE_MAGIC: &str = "# dirext trace v1";

/// Errors from [`read_text`].
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Syntax error with its 1-based line number.
    Parse {
        /// Line where the error occurred.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Writes `workload` in the text trace format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_text<W: Write>(workload: &Workload, out: &mut W) -> io::Result<()> {
    writeln!(out, "{TRACE_MAGIC}")?;
    writeln!(
        out,
        "workload {} procs {}",
        workload.name(),
        workload.procs()
    )?;
    for (i, program) in workload.programs().iter().enumerate() {
        writeln!(out, "proc {i}")?;
        for e in program.events() {
            match e {
                MemEvent::Compute(c) => writeln!(out, "c {c}")?,
                MemEvent::Read(a) => writeln!(out, "r {:#x}", a.byte())?,
                MemEvent::Write(a) => writeln!(out, "w {:#x}", a.byte())?,
                MemEvent::Prefetch {
                    addr,
                    exclusive: false,
                } => writeln!(out, "p {:#x}", addr.byte())?,
                MemEvent::Prefetch {
                    addr,
                    exclusive: true,
                } => writeln!(out, "x {:#x}", addr.byte())?,
                MemEvent::Acquire(a) => writeln!(out, "a {:#x}", a.byte())?,
                MemEvent::Release(a) => writeln!(out, "l {:#x}", a.byte())?,
                MemEvent::Barrier(id) => writeln!(out, "b {}", id.0)?,
            }
        }
    }
    Ok(())
}

fn parse_u64(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

/// Reads a workload from the text trace format.
///
/// The declared `procs` count fixes the number of programs; `proc` sections
/// may appear in any order and omitted processors get empty programs.
///
/// # Errors
///
/// Returns [`TraceReadError`] on I/O failure or malformed input.
pub fn read_text<R: BufRead>(input: R) -> Result<Workload, TraceReadError> {
    let mut name = String::from("trace");
    let mut programs: Vec<Program> = Vec::new();
    let mut current: Option<usize> = None;
    let mut saw_header = false;

    let err = |line: usize, message: String| TraceReadError::Parse { line, message };

    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = match line.split_once('#') {
            Some((before, _)) => before,
            None => line.as_str(),
        }
        .trim();
        if idx == 0 {
            // The magic is a comment line; insist on it so a headerless
            // file fails loudly instead of losing its first directive.
            if !line.is_empty() {
                return Err(err(
                    1,
                    format!("missing trace header (expected '{TRACE_MAGIC}')"),
                ));
            }
            saw_header = true;
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let op = tokens.next().expect("nonempty line");
        match op {
            "workload" => {
                let n = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing workload name".into()))?;
                name = n.to_owned();
                match (tokens.next(), tokens.next()) {
                    (Some("procs"), Some(p)) => {
                        let procs: usize = p
                            .parse()
                            .map_err(|_| err(lineno, format!("bad processor count '{p}'")))?;
                        if procs == 0 || procs > 64 {
                            return Err(err(
                                lineno,
                                format!("processor count {procs} out of range"),
                            ));
                        }
                        programs = vec![Program::new(); procs];
                    }
                    _ => return Err(err(lineno, "expected 'workload <name> procs <n>'".into())),
                }
            }
            "proc" => {
                let p = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing processor id".into()))?;
                let p: usize = p
                    .parse()
                    .map_err(|_| err(lineno, format!("bad processor id '{p}'")))?;
                if p >= programs.len() {
                    return Err(err(
                        lineno,
                        format!("processor {p} out of range (procs = {})", programs.len()),
                    ));
                }
                current = Some(p);
            }
            "c" | "r" | "w" | "p" | "x" | "a" | "l" | "b" => {
                let Some(p) = current else {
                    return Err(err(lineno, "event before any 'proc' line".into()));
                };
                let arg = tokens
                    .next()
                    .ok_or_else(|| err(lineno, format!("'{op}' needs an argument")))?;
                let v = parse_u64(arg)
                    .ok_or_else(|| err(lineno, format!("bad numeric argument '{arg}'")))?;
                let event = match op {
                    "c" => {
                        let c = u32::try_from(v)
                            .map_err(|_| err(lineno, format!("compute count {v} too large")))?;
                        MemEvent::Compute(c)
                    }
                    "r" => MemEvent::Read(Addr::new(v)),
                    "w" => MemEvent::Write(Addr::new(v)),
                    "p" => MemEvent::Prefetch {
                        addr: Addr::new(v),
                        exclusive: false,
                    },
                    "x" => MemEvent::Prefetch {
                        addr: Addr::new(v),
                        exclusive: true,
                    },
                    "a" => MemEvent::Acquire(Addr::new(v)),
                    "l" => MemEvent::Release(Addr::new(v)),
                    "b" => {
                        let id = u32::try_from(v)
                            .map_err(|_| err(lineno, format!("barrier id {v} too large")))?;
                        MemEvent::Barrier(BarrierId(id))
                    }
                    _ => unreachable!(),
                };
                programs[p].push(event);
            }
            other => return Err(err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    if !saw_header {
        return Err(err(1, "empty trace".into()));
    }
    if programs.is_empty() {
        return Err(err(1, "missing 'workload' declaration".into()));
    }
    Ok(Workload::new(name, programs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        let p0 = Program::from_events(vec![
            MemEvent::Compute(5),
            MemEvent::Read(Addr::new(64)),
            MemEvent::Acquire(Addr::new(4096)),
            MemEvent::Write(Addr::new(68)),
            MemEvent::Release(Addr::new(4096)),
            MemEvent::Barrier(BarrierId(0)),
        ]);
        let p1 = Program::from_events(vec![MemEvent::Barrier(BarrierId(0))]);
        Workload::new("sample", vec![p0, p1])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let w = sample();
        let mut buf = Vec::new();
        write_text(&w, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back.name(), w.name());
        assert_eq!(back.procs(), w.procs());
        for i in 0..w.procs() {
            assert_eq!(back.program(i), w.program(i), "proc {i}");
        }
    }

    #[test]
    fn accepts_decimal_and_hex_with_comments() {
        let text = "# dirext trace v1\n\
                    workload t procs 2\n\
                    proc 0\n\
                    r 64        # decimal\n\
                    w 0x40      # hex, same block\n\
                    \n\
                    b 0\n\
                    proc 1\n\
                    b 0\n";
        let w = read_text(text.as_bytes()).unwrap();
        assert_eq!(w.program(0).data_refs(), 2);
        w.validate().unwrap();
    }

    #[test]
    fn omitted_processors_get_empty_programs() {
        let text = "# dirext trace v1\nworkload t procs 3\nproc 1\nc 4\n";
        let w = read_text(text.as_bytes()).unwrap();
        assert_eq!(w.procs(), 3);
        assert!(w.program(0).is_empty());
        assert_eq!(w.program(1).len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "# dirext trace v1\nworkload t procs 1\nproc 0\nz 1\n";
        match read_text(text.as_bytes()) {
            Err(TraceReadError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("unknown directive"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn event_before_proc_rejected() {
        let text = "# dirext trace v1\nworkload t procs 1\nc 4\n";
        assert!(matches!(
            read_text(text.as_bytes()),
            Err(TraceReadError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn out_of_range_proc_rejected() {
        let text = "# dirext trace v1\nworkload t procs 2\nproc 5\n";
        assert!(matches!(
            read_text(text.as_bytes()),
            Err(TraceReadError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_text("".as_bytes()).is_err());
    }
}
