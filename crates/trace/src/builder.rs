//! Ergonomic program construction for workload generators.

use crate::{Addr, BarrierId, MemEvent, Program, BLOCK_BYTES, WORD_BYTES};

/// Builds a [`Program`] one event at a time, with helpers for the access
/// patterns the workload generators need (strided scans, read-modify-writes,
/// critical sections).
///
/// All helpers return `&mut Self` for chaining.
///
/// # Example
///
/// ```
/// use dirext_trace::{Addr, ProgramBuilder};
///
/// let p = ProgramBuilder::new()
///     .compute(10)
///     .read(Addr::new(0))
///     .rmw(Addr::new(64))
///     .build();
/// assert_eq!(p.data_refs(), 3); // read + (read+write)
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    /// Cycles of compute inserted between consecutive data references by the
    /// `*_paced` helpers.
    pace: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the compute pacing (cycles inserted before each reference by the
    /// scan helpers). Real codes do arithmetic between loads; a pace of 2-6
    /// cycles models typical instruction counts per shared reference.
    pub fn with_pace(mut self, cycles: u32) -> Self {
        self.pace = cycles;
        self
    }

    /// Appends a raw event.
    pub fn event(&mut self, e: MemEvent) -> &mut Self {
        self.program.push(e);
        self
    }

    /// Appends `cycles` of local computation (merged with a preceding
    /// `Compute` to keep programs compact).
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        if cycles == 0 {
            return self;
        }
        if let Some(MemEvent::Compute(prev)) = self.program.events().last().copied() {
            let merged = prev.saturating_add(cycles);
            let idx = self.program.len() - 1;
            // Replace the tail event with the merged compute.
            let mut events = std::mem::take(&mut self.program).events().to_vec();
            events[idx] = MemEvent::Compute(merged);
            self.program = Program::from_events(events);
            return self;
        }
        self.program.push(MemEvent::Compute(cycles));
        self
    }

    /// Appends a load.
    pub fn read(&mut self, a: Addr) -> &mut Self {
        self.program.push(MemEvent::Read(a));
        self
    }

    /// Appends a store.
    pub fn write(&mut self, a: Addr) -> &mut Self {
        self.program.push(MemEvent::Write(a));
        self
    }

    /// Appends a software prefetch hint.
    pub fn prefetch(&mut self, a: Addr) -> &mut Self {
        self.program.push(MemEvent::Prefetch {
            addr: a,
            exclusive: false,
        });
        self
    }

    /// Appends an exclusive-mode (read-exclusive) software prefetch hint.
    pub fn prefetch_exclusive(&mut self, a: Addr) -> &mut Self {
        self.program.push(MemEvent::Prefetch {
            addr: a,
            exclusive: true,
        });
        self
    }

    /// Appends a read-modify-write of one word (`x := x + 1` in the paper's
    /// migratory-sharing discussion).
    pub fn rmw(&mut self, a: Addr) -> &mut Self {
        self.program.push(MemEvent::Read(a));
        self.program.push(MemEvent::Write(a));
        self
    }

    /// Reads every word in `[base, base + bytes)`, paced.
    pub fn read_words(&mut self, base: Addr, bytes: u64) -> &mut Self {
        let mut off = 0;
        while off < bytes {
            self.pace_gap();
            self.read(base.offset(off));
            off += WORD_BYTES;
        }
        self
    }

    /// Writes every word in `[base, base + bytes)`, paced.
    pub fn write_words(&mut self, base: Addr, bytes: u64) -> &mut Self {
        let mut off = 0;
        while off < bytes {
            self.pace_gap();
            self.write(base.offset(off));
            off += WORD_BYTES;
        }
        self
    }

    /// Reads one word per cache block over `[base, base + bytes)` — a sparse
    /// scan with block-level (not word-level) spatial locality.
    pub fn read_blocks(&mut self, base: Addr, bytes: u64) -> &mut Self {
        let mut off = 0;
        while off < bytes {
            self.pace_gap();
            self.read(base.offset(off));
            off += BLOCK_BYTES;
        }
        self
    }

    /// Read-modify-writes every word in `[base, base + bytes)`, paced.
    pub fn rmw_words(&mut self, base: Addr, bytes: u64) -> &mut Self {
        let mut off = 0;
        while off < bytes {
            self.pace_gap();
            self.rmw(base.offset(off));
            off += WORD_BYTES;
        }
        self
    }

    /// Appends `Acquire(lock)`, runs `body`, then appends `Release(lock)`.
    pub fn critical<F>(&mut self, lock: Addr, body: F) -> &mut Self
    where
        F: FnOnce(&mut Self),
    {
        self.program.push(MemEvent::Acquire(lock));
        body(self);
        self.program.push(MemEvent::Release(lock));
        self
    }

    /// Appends a barrier arrival.
    pub fn barrier(&mut self, id: BarrierId) -> &mut Self {
        self.program.push(MemEvent::Barrier(id));
        self
    }

    /// Number of events so far.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// Finishes and returns the program.
    pub fn build(&mut self) -> Program {
        std::mem::take(&mut self.program)
    }

    fn pace_gap(&mut self) {
        if self.pace > 0 {
            self.compute(self.pace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_merges() {
        let mut b = ProgramBuilder::new();
        b.compute(3).compute(4);
        let p = b.build();
        assert_eq!(p.events(), &[MemEvent::Compute(7)]);
    }

    #[test]
    fn rmw_is_read_then_write() {
        let mut b = ProgramBuilder::new();
        b.rmw(Addr::new(8));
        let p = b.build();
        assert_eq!(
            p.events(),
            &[MemEvent::Read(Addr::new(8)), MemEvent::Write(Addr::new(8))]
        );
    }

    #[test]
    fn read_words_covers_range_with_pace() {
        let mut b = ProgramBuilder::new().with_pace(2);
        b.read_words(Addr::new(0), 16); // 4 words
        let p = b.build();
        assert_eq!(p.data_refs(), 4);
        // 4 paces of 2 cycles interleaved.
        let computes: u32 = p
            .events()
            .iter()
            .filter_map(|e| match e {
                MemEvent::Compute(c) => Some(*c),
                _ => None,
            })
            .sum();
        assert_eq!(computes, 8);
    }

    #[test]
    fn read_blocks_strides_by_block() {
        let mut b = ProgramBuilder::new();
        b.read_blocks(Addr::new(0), 3 * BLOCK_BYTES);
        let p = b.build();
        assert_eq!(p.data_refs(), 3);
        assert_eq!(p.events()[1], MemEvent::Read(Addr::new(32)));
    }

    #[test]
    fn critical_section_wraps_body() {
        let lock = Addr::new(4096);
        let mut b = ProgramBuilder::new();
        b.critical(lock, |b| {
            b.rmw(Addr::new(0));
        });
        let p = b.build();
        assert_eq!(p.events().first(), Some(&MemEvent::Acquire(lock)));
        assert_eq!(p.events().last(), Some(&MemEvent::Release(lock)));
        assert_eq!(p.data_refs(), 2);
    }

    #[test]
    fn builder_len_and_build_resets() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        b.read(Addr::new(0));
        assert_eq!(b.len(), 1);
        let _ = b.build();
        assert!(b.is_empty());
    }
}
