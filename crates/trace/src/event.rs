//! Per-processor memory events and programs.

use crate::Addr;

/// Identifier of a barrier episode. All processors must arrive at barriers
/// in the same id order; the simulator releases everyone once the last
/// participant arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BarrierId(pub u32);

/// One step of a simulated processor's execution.
///
/// `Compute` abstracts instruction execution and private data references —
/// the paper likewise simulates those as first-level-cache hits. All `Read`
/// and `Write` events reference the *shared* address space and flow through
/// the full memory-system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEvent {
    /// Execute for `n` processor cycles without a shared-memory reference.
    Compute(u32),
    /// A shared-data load (blocking: the processor stalls on a cache miss).
    Read(Addr),
    /// A shared-data store (buffered under relaxed consistency).
    Write(Addr),
    /// A software prefetch instruction (Mowry & Gupta style): a non-binding,
    /// non-blocking hint to fetch the block — exclusively if `exclusive`.
    /// Dropped without effect when the block is already present or the
    /// memory system is busy, exactly like a hardware prefetch.
    Prefetch {
        /// The hinted address.
        addr: Addr,
        /// Request an exclusive copy (read-exclusive prefetch).
        exclusive: bool,
    },
    /// Acquire the lock whose variable lives at the given address.
    Acquire(Addr),
    /// Release a previously acquired lock.
    Release(Addr),
    /// Arrive at a barrier and wait for all processors.
    Barrier(BarrierId),
}

impl MemEvent {
    /// Whether this event is a shared-data reference (read or write).
    pub fn is_data_ref(&self) -> bool {
        matches!(self, MemEvent::Read(_) | MemEvent::Write(_))
    }

    /// Whether this event is a synchronization operation.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            MemEvent::Acquire(_) | MemEvent::Release(_) | MemEvent::Barrier(_)
        )
    }
}

/// The sequence of events one processor executes.
///
/// # Example
///
/// ```
/// use dirext_trace::{Addr, MemEvent, Program};
///
/// let p = Program::from_events(vec![
///     MemEvent::Compute(4),
///     MemEvent::Read(Addr::new(64)),
///     MemEvent::Write(Addr::new(64)),
/// ]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.data_refs(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    events: Vec<MemEvent>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a program from a pre-built event list.
    pub fn from_events(events: Vec<MemEvent>) -> Self {
        Program { events }
    }

    /// The events in execution order.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// Event at position `pc`, if any.
    pub fn get(&self, pc: usize) -> Option<MemEvent> {
        self.events.get(pc).copied()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of shared-data references (reads + writes).
    pub fn data_refs(&self) -> usize {
        self.events.iter().filter(|e| e.is_data_ref()).count()
    }

    /// Appends an event.
    pub fn push(&mut self, e: MemEvent) {
        self.events.push(e);
    }

    /// The sequence of barrier ids this program passes through, in order.
    pub fn barrier_sequence(&self) -> Vec<BarrierId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                MemEvent::Barrier(id) => Some(*id),
                _ => None,
            })
            .collect()
    }
}

impl FromIterator<MemEvent> for Program {
    fn from_iter<T: IntoIterator<Item = MemEvent>>(iter: T) -> Self {
        Program {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemEvent> for Program {
    fn extend<T: IntoIterator<Item = MemEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(MemEvent::Read(Addr::new(0)).is_data_ref());
        assert!(MemEvent::Write(Addr::new(0)).is_data_ref());
        assert!(!MemEvent::Compute(1).is_data_ref());
        assert!(MemEvent::Acquire(Addr::new(0)).is_sync());
        assert!(MemEvent::Barrier(BarrierId(0)).is_sync());
        assert!(!MemEvent::Read(Addr::new(0)).is_sync());
    }

    #[test]
    fn program_accessors() {
        let mut p = Program::new();
        assert!(p.is_empty());
        p.push(MemEvent::Compute(2));
        p.push(MemEvent::Barrier(BarrierId(1)));
        p.push(MemEvent::Read(Addr::new(32)));
        p.push(MemEvent::Barrier(BarrierId(2)));
        assert_eq!(p.len(), 4);
        assert_eq!(p.data_refs(), 1);
        assert_eq!(p.get(1), Some(MemEvent::Barrier(BarrierId(1))));
        assert_eq!(p.get(99), None);
        assert_eq!(p.barrier_sequence(), vec![BarrierId(1), BarrierId(2)]);
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Program = (0..3).map(|_| MemEvent::Compute(1)).collect();
        p.extend([MemEvent::Read(Addr::new(0))]);
        assert_eq!(p.len(), 4);
    }
}
