//! A complete multiprocessor workload: one program per processor.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{Addr, MemEvent, Program};

/// Errors detected by [`Workload::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Two processors arrive at barriers in different orders, which would
    /// deadlock the simulated machine.
    BarrierMismatch {
        /// First offending processor.
        proc_a: usize,
        /// Second offending processor.
        proc_b: usize,
    },
    /// A `Release` without a matching prior `Acquire` of the same lock, or a
    /// program ending while holding a lock.
    LockMisuse {
        /// The offending processor.
        proc: usize,
        /// The lock variable's address.
        lock: Addr,
    },
    /// A processor arrives at a barrier while holding a lock: the holder
    /// waits for everyone, while anyone waiting on the lock never arrives —
    /// a guaranteed deadlock.
    BarrierInCriticalSection {
        /// The offending processor.
        proc: usize,
        /// The lock held across the barrier.
        lock: Addr,
    },
    /// The workload has no programs at all.
    Empty,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BarrierMismatch { proc_a, proc_b } => {
                write!(
                    f,
                    "processors {proc_a} and {proc_b} disagree on barrier order"
                )
            }
            WorkloadError::LockMisuse { proc, lock } => {
                write!(f, "processor {proc} misuses lock at {lock}")
            }
            WorkloadError::BarrierInCriticalSection { proc, lock } => {
                write!(
                    f,
                    "processor {proc} reaches a barrier while holding lock at {lock}"
                )
            }
            WorkloadError::Empty => write!(f, "workload contains no programs"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A named workload: one [`Program`] per processor plus bookkeeping.
///
/// Programs are stored behind [`Arc`] so that handing one to a simulated
/// machine — or to eight protocol configurations across a parallel sweep —
/// shares the event list instead of cloning it. Cloning a `Workload` is
/// likewise O(procs), not O(events).
///
/// # Example
///
/// ```
/// use dirext_trace::{Addr, MemEvent, Program, Workload};
///
/// let programs = vec![
///     Program::from_events(vec![MemEvent::Read(Addr::new(0))]),
///     Program::from_events(vec![MemEvent::Write(Addr::new(0))]),
/// ];
/// let w = Workload::new("demo", programs);
/// assert_eq!(w.procs(), 2);
/// assert_eq!(w.total_data_refs(), 2);
/// w.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    programs: Vec<Arc<Program>>,
    /// Memoized [`Workload::validate`] verdict. Validation walks every
    /// event of every program, and the experiment drivers re-validate at
    /// the start of each run; programs are immutable once constructed, so
    /// the first verdict holds for the workload's lifetime. Clones carry
    /// the memo (an `Arc`), so sweeping one workload across many protocol
    /// configurations validates it once.
    validated: Arc<std::sync::OnceLock<Result<(), WorkloadError>>>,
}

impl Workload {
    /// Creates a workload from per-processor programs.
    pub fn new(name: impl Into<String>, programs: Vec<Program>) -> Self {
        Workload {
            name: name.into(),
            programs: programs.into_iter().map(Arc::new).collect(),
            validated: Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// The workload's display name (e.g. `"MP3D"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.programs.len()
    }

    /// The program for processor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.procs()`.
    pub fn program(&self, i: usize) -> &Program {
        &self.programs[i]
    }

    /// A shared handle to the program for processor `i` (cheap: bumps a
    /// reference count instead of cloning the event list).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.procs()`.
    pub fn program_shared(&self, i: usize) -> Arc<Program> {
        Arc::clone(&self.programs[i])
    }

    /// All programs.
    pub fn programs(&self) -> &[Arc<Program>] {
        &self.programs
    }

    /// Total shared-data references across all processors.
    pub fn total_data_refs(&self) -> usize {
        self.programs.iter().map(|p| p.data_refs()).sum()
    }

    /// Total events across all processors.
    pub fn total_events(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }

    /// Checks structural well-formedness: consistent barrier sequences and
    /// properly paired lock operations.
    ///
    /// # Errors
    ///
    /// Returns the first [`WorkloadError`] found.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        self.validated
            .get_or_init(|| self.validate_uncached())
            .clone()
    }

    fn validate_uncached(&self) -> Result<(), WorkloadError> {
        if self.programs.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let reference = self.programs[0].barrier_sequence();
        for (i, p) in self.programs.iter().enumerate().skip(1) {
            if p.barrier_sequence() != reference {
                return Err(WorkloadError::BarrierMismatch {
                    proc_a: 0,
                    proc_b: i,
                });
            }
        }
        for (i, p) in self.programs.iter().enumerate() {
            let mut held: HashMap<Addr, u32> = HashMap::new();
            for e in p.events() {
                match e {
                    MemEvent::Acquire(l) => *held.entry(*l).or_insert(0) += 1,
                    MemEvent::Release(l) => {
                        let c = held.entry(*l).or_insert(0);
                        if *c == 0 {
                            return Err(WorkloadError::LockMisuse { proc: i, lock: *l });
                        }
                        *c -= 1;
                    }
                    MemEvent::Barrier(_) => {
                        if let Some((l, _)) = held.iter().find(|(_, c)| **c != 0) {
                            return Err(WorkloadError::BarrierInCriticalSection {
                                proc: i,
                                lock: *l,
                            });
                        }
                    }
                    _ => {}
                }
            }
            if let Some((l, _)) = held.iter().find(|(_, c)| **c != 0) {
                return Err(WorkloadError::LockMisuse { proc: i, lock: *l });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BarrierId;

    fn prog(events: Vec<MemEvent>) -> Program {
        Program::from_events(events)
    }

    #[test]
    fn empty_workload_rejected() {
        let w = Workload::new("w", vec![]);
        assert_eq!(w.validate(), Err(WorkloadError::Empty));
    }

    #[test]
    fn mismatched_barriers_rejected() {
        let a = prog(vec![
            MemEvent::Barrier(BarrierId(0)),
            MemEvent::Barrier(BarrierId(1)),
        ]);
        let b = prog(vec![MemEvent::Barrier(BarrierId(1))]);
        let w = Workload::new("w", vec![a, b]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn unmatched_release_rejected() {
        let l = Addr::new(4096);
        let a = prog(vec![MemEvent::Release(l)]);
        let w = Workload::new("w", vec![a]);
        assert_eq!(
            w.validate(),
            Err(WorkloadError::LockMisuse { proc: 0, lock: l })
        );
    }

    #[test]
    fn dangling_acquire_rejected() {
        let l = Addr::new(4096);
        let a = prog(vec![MemEvent::Acquire(l)]);
        let w = Workload::new("w", vec![a]);
        assert_eq!(
            w.validate(),
            Err(WorkloadError::LockMisuse { proc: 0, lock: l })
        );
    }

    #[test]
    fn well_formed_workload_passes() {
        let l = Addr::new(4096);
        let mk = || {
            prog(vec![
                MemEvent::Acquire(l),
                MemEvent::Read(Addr::new(0)),
                MemEvent::Write(Addr::new(0)),
                MemEvent::Release(l),
                MemEvent::Barrier(BarrierId(0)),
            ])
        };
        let w = Workload::new("ok", vec![mk(), mk()]);
        w.validate().unwrap();
        assert_eq!(w.total_data_refs(), 4);
        assert_eq!(w.total_events(), 10);
        assert_eq!(w.name(), "ok");
    }

    #[test]
    fn error_display_is_informative() {
        let e = WorkloadError::LockMisuse {
            proc: 3,
            lock: Addr::new(64),
        };
        assert!(e.to_string().contains("processor 3"));
    }
}
