//! Shared address-space layout for workload generators.

use crate::{Addr, BLOCK_BYTES, PAGE_BYTES};

/// A contiguous region of the shared address space (an "array").
///
/// # Example
///
/// ```
/// use dirext_trace::Layout;
///
/// let mut layout = Layout::new();
/// let matrix = layout.alloc_elems("A", 100, 8); // 100 doubles
/// let a_3 = matrix.elem(3, 8);
/// assert_eq!(a_3.byte() - matrix.base().byte(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    bytes: u64,
}

impl Region {
    /// First byte of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of 32-byte blocks the region spans.
    pub fn blocks(&self) -> u64 {
        self.bytes.div_ceil(BLOCK_BYTES)
    }

    /// Address of element `i` given `elem_bytes`-sized elements.
    ///
    /// # Panics
    ///
    /// Panics if the element lies outside the region.
    pub fn elem(&self, i: u64, elem_bytes: u64) -> Addr {
        let off = i * elem_bytes;
        assert!(
            off + elem_bytes <= self.bytes,
            "element {i} ({elem_bytes} B) out of region of {} B",
            self.bytes
        );
        self.base.offset(off)
    }

    /// Address `off` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if `off` is outside the region.
    pub fn at(&self, off: u64) -> Addr {
        assert!(
            off < self.bytes,
            "offset {off} out of region of {} B",
            self.bytes
        );
        self.base.offset(off)
    }

    /// Splits the region into consecutive sub-regions of `n` equal parts
    /// (block-aligned chunks except possibly the last).
    pub fn chunks(&self, n: u64) -> Vec<Region> {
        let per = self.bytes.div_ceil(n);
        // Round each chunk up to a block boundary so chunks never share blocks
        // (the generators rely on this to control false sharing explicitly).
        let per = per.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        (0..n)
            .map(|i| {
                let start = (i * per).min(self.bytes);
                let end = ((i + 1) * per).min(self.bytes);
                Region {
                    base: self.base.offset(start),
                    bytes: end - start,
                }
            })
            .collect()
    }
}

/// Bump allocator carving a shared address space into regions.
///
/// Every allocation is block-aligned; `alloc_page_aligned` additionally
/// aligns to a page so a structure's home-node distribution is predictable.
/// Region names are recorded for debugging/pretty-printing only.
#[derive(Debug, Default)]
pub struct Layout {
    next: u64,
    regions: Vec<(String, Region)>,
}

impl Layout {
    /// Creates an empty layout starting at address zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes` bytes, aligned to a cache block.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> Region {
        self.alloc_aligned(name, bytes, BLOCK_BYTES)
    }

    /// Allocates room for `n` elements of `elem_bytes` each.
    pub fn alloc_elems(&mut self, name: &str, n: u64, elem_bytes: u64) -> Region {
        self.alloc(name, n * elem_bytes)
    }

    /// Allocates `bytes` bytes aligned to a 4-KB page boundary.
    pub fn alloc_page_aligned(&mut self, name: &str, bytes: u64) -> Region {
        self.alloc_aligned(name, bytes, PAGE_BYTES)
    }

    /// Allocates one cache block per lock/flag variable, `n` variables,
    /// each on its own block (the paper gives each lock its own memory
    /// block: "a single lock variable per memory block").
    pub fn alloc_locks(&mut self, name: &str, n: u64) -> Region {
        self.alloc(name, n * BLOCK_BYTES)
    }

    fn alloc_aligned(&mut self, name: &str, bytes: u64, align: u64) -> Region {
        let base = self.next.div_ceil(align) * align;
        let bytes = bytes.max(1);
        self.next = base + bytes;
        let region = Region {
            base: Addr::new(base),
            bytes,
        };
        self.regions.push((name.to_owned(), region));
        region
    }

    /// Total bytes allocated (address-space high-water mark).
    pub fn total_bytes(&self) -> u64 {
        self.next
    }

    /// Iterates over `(name, region)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Region)> + '_ {
        self.regions.iter().map(|(n, r)| (n.as_str(), *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_block_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc("a", 100);
        let b = l.alloc("b", 10);
        assert_eq!(a.base().byte() % BLOCK_BYTES, 0);
        assert_eq!(b.base().byte() % BLOCK_BYTES, 0);
        assert!(b.base().byte() >= a.base().byte() + a.bytes());
        assert_eq!(a.blocks(), 4); // ceil(100/32)
    }

    #[test]
    fn page_aligned_allocation() {
        let mut l = Layout::new();
        l.alloc("pad", 7);
        let p = l.alloc_page_aligned("grid", 5000);
        assert_eq!(p.base().byte() % PAGE_BYTES, 0);
    }

    #[test]
    fn lock_blocks_do_not_share() {
        let mut l = Layout::new();
        let locks = l.alloc_locks("locks", 4);
        let b0 = locks.elem(0, BLOCK_BYTES).block();
        let b1 = locks.elem(1, BLOCK_BYTES).block();
        assert_ne!(b0, b1);
    }

    #[test]
    fn elem_addressing() {
        let mut l = Layout::new();
        let arr = l.alloc_elems("arr", 10, 8);
        assert_eq!(arr.elem(0, 8), arr.base());
        assert_eq!(arr.elem(9, 8).byte(), arr.base().byte() + 72);
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn elem_out_of_bounds_panics() {
        let mut l = Layout::new();
        let arr = l.alloc_elems("arr", 10, 8);
        let _ = arr.elem(10, 8);
    }

    #[test]
    fn chunks_are_block_disjoint_and_cover() {
        let mut l = Layout::new();
        let arr = l.alloc("arr", 1000);
        let chunks = arr.chunks(4);
        assert_eq!(chunks.len(), 4);
        let covered: u64 = chunks.iter().map(|c| c.bytes()).sum();
        assert_eq!(covered, 1000);
        for w in chunks.windows(2) {
            if w[0].bytes() > 0 && w[1].bytes() > 0 {
                let last0 = w[0].base().offset(w[0].bytes() - 1).block();
                let first1 = w[1].base().block();
                assert!(last0 < first1, "chunks share a block");
            }
        }
    }

    #[test]
    fn layout_reports_regions() {
        let mut l = Layout::new();
        l.alloc("x", 32);
        l.alloc("y", 64);
        let names: Vec<_> = l.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert!(l.total_bytes() >= 96);
    }
}
