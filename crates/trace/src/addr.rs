//! Address geometry: words, blocks, pages, home nodes.

use std::fmt;

/// Cache block (line) size in bytes — 32 in the paper.
pub const BLOCK_BYTES: u64 = 32;
/// Word size in bytes (32-bit words; the write cache keeps per-word dirty bits).
pub const WORD_BYTES: u64 = 4;
/// Words per cache block.
pub const WORDS_PER_BLOCK: u64 = BLOCK_BYTES / WORD_BYTES;
/// Page size in bytes — 4 KB in the paper.
pub const PAGE_BYTES: u64 = 4096;

/// A byte address in the shared address space.
///
/// # Example
///
/// ```
/// use dirext_trace::{Addr, BLOCK_BYTES};
///
/// let a = Addr::new(100);
/// assert_eq!(a.block().index(), 100 / BLOCK_BYTES);
/// assert_eq!(a.word_in_block(), (100 % BLOCK_BYTES) / 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(byte: u64) -> Self {
        Addr(byte)
    }

    /// The raw byte offset.
    #[inline]
    pub const fn byte(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr::from_index(self.0 / BLOCK_BYTES)
    }

    /// The page containing this address.
    #[inline]
    pub const fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES)
    }

    /// Index of the word this address falls in within its block (0..8).
    #[inline]
    pub const fn word_in_block(self) -> u64 {
        (self.0 % BLOCK_BYTES) / WORD_BYTES
    }

    /// Returns this address displaced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-block address (byte address divided by the 32-byte block size).
///
/// Stored as a `u32` block index — 4 bytes instead of 8 on the hottest
/// simulator paths ([`crate::NodeId`]-sized protocol messages, directory
/// and cache hash-map keys). A `u32` index addresses 2³² × 32 B = 128 GB
/// of simulated shared memory, orders of magnitude beyond any workload the
/// paper (or this reproduction) runs; the public API stays `u64` for
/// compatibility with [`Addr`] arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u32);

impl BlockAddr {
    /// Creates a block address from a block index.
    ///
    /// Indices above `u32::MAX` (128 GB of simulated memory) are not
    /// representable; debug builds assert, release builds truncate.
    #[inline]
    pub const fn from_index(index: u64) -> Self {
        debug_assert!(index <= u32::MAX as u64, "block index exceeds u32 range");
        BlockAddr(index as u32)
    }

    /// The block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0 as u64
    }

    /// The first byte address of this block.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 as u64 * BLOCK_BYTES)
    }

    /// The block `n` blocks after this one (used by sequential prefetching).
    #[inline]
    pub const fn plus(self, n: u64) -> BlockAddr {
        BlockAddr::from_index(self.0 as u64 + n)
    }

    /// The immediately preceding block, or `None` at block zero.
    #[inline]
    pub fn pred(self) -> Option<BlockAddr> {
        self.0.checked_sub(1).map(BlockAddr)
    }

    /// The page containing this block.
    #[inline]
    pub const fn page(self) -> PageId {
        PageId(self.0 as u64 * BLOCK_BYTES / PAGE_BYTES)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:#x}", self.0)
    }
}

/// A 4-KB virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a page number.
    #[inline]
    pub const fn from_index(index: u64) -> Self {
        PageId(index)
    }

    /// The page number.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The home node of this page under the paper's round-robin placement:
    /// pages are allocated across nodes by the least significant bits of the
    /// virtual page number.
    #[inline]
    pub fn home(self, nodes: usize) -> NodeId {
        NodeId((self.0 % nodes as u64) as u16)
    }
}

/// A processor-node identifier (0..N, N = 16 in the paper; the scalable
/// directory organizations grow machines to 1024 nodes, so ids are 16-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node index as a usize (for indexing per-node arrays).
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u8> for NodeId {
    fn from(v: u8) -> Self {
        NodeId(v as u16)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_geometry() {
        let a = Addr::new(3 * BLOCK_BYTES + 17);
        assert_eq!(a.block(), BlockAddr::from_index(3));
        assert_eq!(a.word_in_block(), 17 / WORD_BYTES);
        assert_eq!(a.block().base_addr(), Addr::new(96));
    }

    #[test]
    fn page_geometry_and_home() {
        let a = Addr::new(2 * PAGE_BYTES + 5);
        assert_eq!(a.page(), PageId::from_index(2));
        assert_eq!(a.page().home(16), NodeId(2));
        assert_eq!(PageId::from_index(17).home(16), NodeId(1));
        assert_eq!(PageId::from_index(16).home(16), NodeId(0));
    }

    #[test]
    fn blocks_per_page() {
        // 128 blocks per 4-KB page; block 127 is page 0, block 128 is page 1.
        assert_eq!(BlockAddr::from_index(127).page(), PageId::from_index(0));
        assert_eq!(BlockAddr::from_index(128).page(), PageId::from_index(1));
    }

    #[test]
    fn block_navigation() {
        let b = BlockAddr::from_index(10);
        assert_eq!(b.plus(6), BlockAddr::from_index(16));
        assert_eq!(b.pred(), Some(BlockAddr::from_index(9)));
        assert_eq!(BlockAddr::from_index(0).pred(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(BlockAddr::from_index(16).to_string(), "blk0x10");
    }
}
