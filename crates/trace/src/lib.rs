//! Memory reference model for the `dirext` simulator.
//!
//! The paper drives its architectural simulator with SPLASH programs running
//! on simulated SPARC processors. We reproduce the *architectural* side
//! faithfully and replace the functional side with per-processor streams of
//! [`MemEvent`]s; synchronization events (`Acquire`, `Release`, `Barrier`)
//! are resolved at simulation time so lock ordering and barrier timing react
//! to the simulated machine exactly as in a program-driven simulation.
//!
//! The crate provides
//!
//! * address types ([`Addr`], [`BlockAddr`], [`PageId`], [`NodeId`]) with the
//!   paper's geometry (32-byte blocks, 4-KB pages, round-robin page
//!   placement),
//! * [`MemEvent`] and [`Program`] — what one processor executes,
//! * [`Workload`] — one program per processor, plus validation,
//! * [`Layout`] — a bump allocator for carving a shared address space into
//!   arrays and lock/barrier variables,
//! * [`ProgramBuilder`] — convenience for writing workload generators,
//! * [`io`] — a plain-text trace format for dumping, inspecting and
//!   reloading workloads.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod builder;
mod event;
pub mod io;
mod layout;
mod workload;

pub use addr::{
    Addr, BlockAddr, NodeId, PageId, BLOCK_BYTES, PAGE_BYTES, WORDS_PER_BLOCK, WORD_BYTES,
};
pub use builder::ProgramBuilder;
pub use event::{BarrierId, MemEvent, Program};
pub use layout::{Layout, Region};
pub use workload::{Workload, WorkloadError};
