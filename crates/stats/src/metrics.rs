//! The complete result record of one simulation run.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Histogram, StallBreakdown};

/// Everything one simulation run measures.
///
/// A `Metrics` value is self-describing (workload, protocol, consistency,
/// network) so experiment drivers can collect them into tables. The
/// normalizations the paper uses — execution time relative to BASIC, miss
/// rates as a percentage of shared references, traffic normalized to
/// BASIC — are provided as methods.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Workload name (e.g. `"MP3D"`).
    pub workload: String,
    /// Protocol label (e.g. `"P+CW"`).
    pub protocol: String,
    /// Consistency model (`"SC"` / `"RC"`).
    pub consistency: String,
    /// Network model name.
    pub network: String,
    /// Number of processors.
    pub procs: usize,

    /// Wall-clock execution time of the parallel section in pclocks
    /// (latest processor finish time).
    pub exec_cycles: u64,
    /// Stall decomposition summed over all processors.
    pub stalls: StallBreakdown,

    /// Shared-data loads issued by processors.
    pub shared_reads: u64,
    /// Shared-data stores issued by processors.
    pub shared_writes: u64,
    /// References that hit in the FLC.
    pub flc_hits: u64,
    /// Demand misses at the SLC.
    pub slc_misses: u64,
    /// ... of which cold.
    pub cold_misses: u64,
    /// ... of which coherence.
    pub coh_misses: u64,
    /// ... of which replacement.
    pub repl_misses: u64,
    /// Reads that missed the SLC but were serviced by the write cache.
    pub wc_read_hits: u64,

    /// Total cycles spent servicing demand read misses (for E8's average
    /// read-miss latency).
    pub read_miss_cycles: u64,
    /// Demand read misses serviced remotely or locally.
    pub read_miss_count: u64,
    /// Distribution of demand read-miss service times — exposes the
    /// 2-hop/4-hop bimodality behind CW's latency advantage.
    pub read_miss_hist: Histogram,

    /// Prefetch requests issued.
    pub prefetches_issued: u64,
    /// Prefetched blocks referenced before being invalidated/replaced.
    pub prefetches_useful: u64,

    /// Ownership requests serviced by directories.
    pub ownership_reqs: u64,
    /// Update requests serviced by directories.
    pub update_reqs: u64,
    /// Update messages fanned out to third-party caches.
    pub updates_fanned_out: u64,
    /// Invalidations sent by directories.
    pub invals_sent: u64,
    /// Writebacks received by directories.
    pub writebacks: u64,
    /// Exclusive (migratory) read grants.
    pub exclusive_grants: u64,
    /// Migratory detections.
    pub migratory_detections: u64,
    /// Migratory reversions.
    pub migratory_reverts: u64,
    /// CW+M interrogation rounds.
    pub interrogations: u64,
    /// Update requests that found the block dirty in a third-party cache
    /// and recalled it before fanning out (CW race-state).
    pub update_recalls: u64,
    /// Read requests serviced with a clean memory copy (local or two-hop).
    pub reads_clean: u64,
    /// Read requests that needed a fetch from a dirty third-party cache
    /// (four node-to-node transfers through the home).
    pub reads_dirty: u64,
    /// Sharer-set capacity overflows (limited-pointer and directoryless
    /// organizations; always 0 under the exact full map). Skipped from the
    /// serialized form when 0 so full-map artifacts stay byte-identical.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dir_overflows: u64,
    /// Invalidation/update fan-outs that went to every node because the
    /// sharer set had lost precision (Dir_i_B overflow, directoryless).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dir_broadcasts: u64,
    /// Sharer copies invalidated (recalled) to free a directory pointer
    /// (Dir_i_NB replacement on overflow).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dir_recalls: u64,

    /// Total bytes injected into the network.
    pub net_bytes: u64,
    /// Total messages injected into the network.
    pub net_msgs: u64,
    /// Bytes carrying block data.
    pub net_data_bytes: u64,
    /// Bytes carrying competitive updates.
    pub net_update_bytes: u64,
    /// Bytes carrying control messages.
    pub net_control_bytes: u64,
    /// Bytes carrying synchronization.
    pub net_sync_bytes: u64,

    /// Messages the fault-injection layer delayed with nonzero jitter.
    pub fault_delayed: u64,
    /// Link-layer retransmissions performed by the fault-injection layer.
    pub fault_retransmitted: u64,
    /// Messages the fault-injection layer delivered twice.
    pub fault_duplicated: u64,
    /// Messages the fault-injection layer permanently lost.
    pub fault_lost: u64,
    /// NACKs sent by directories (a request raced the requester's own
    /// in-flight writeback).
    pub nacks_sent: u64,
    /// NACKed requests retried by caches after backoff.
    pub nack_retries: u64,
    /// Stale duplicated messages recognized and dropped (directory, cache
    /// and synchronization controllers combined).
    pub stale_drops: u64,

    /// Whole-node crashes applied by the node-fault plan.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub node_crashes: u64,
    /// Crashed nodes re-admitted (epoch bumped, caches cold).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub node_recoveries: u64,
    /// Events and messages dropped because an endpoint was crashed.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub crash_drops: u64,
    /// Events and messages dropped because they were stamped by a previous
    /// incarnation of a since-recovered node.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub stale_epoch_drops: u64,
    /// Sharer-set entries surgically removed by reconstruction sweeps.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dir_purged_sharers: u64,
    /// Dirty blocks reclaimed from a dead owner (memory rewound to its
    /// last written value).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dir_orphan_reclaims: u64,
    /// Recovery invalidation sweeps issued against inexact sharer sets.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub dir_purge_sweeps: u64,
    /// Pending directory operations whose grant was redirected because the
    /// requester died mid-flight.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub crash_aborted_grants: u64,
    /// Distinct blocks whose most recent written value died with a crashed
    /// node.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub data_loss_blocks: u64,

    /// Lock acquisitions performed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barrier_episodes: u64,
    /// Completion times of barrier episodes in completion order (pclocks) —
    /// the phase profile of iterative workloads.
    pub barrier_completion_cycles: Vec<u64>,
    /// Per-processor stall breakdowns (index = node id), for load-imbalance
    /// analysis.
    pub per_proc_stalls: Vec<StallBreakdown>,
}

impl Metrics {
    /// Total shared-data references.
    pub fn shared_refs(&self) -> u64 {
        self.shared_reads + self.shared_writes
    }

    /// SLC miss rate as a percentage of shared references (the paper's
    /// miss-rate definition in Table 2).
    pub fn miss_rate_pct(&self) -> f64 {
        percent(self.slc_misses, self.shared_refs())
    }

    /// Cold miss rate (percent of shared references).
    pub fn cold_rate_pct(&self) -> f64 {
        percent(self.cold_misses, self.shared_refs())
    }

    /// Coherence miss rate (percent of shared references).
    pub fn coh_rate_pct(&self) -> f64 {
        percent(self.coh_misses, self.shared_refs())
    }

    /// Replacement miss rate (percent of shared references).
    pub fn repl_rate_pct(&self) -> f64 {
        percent(self.repl_misses, self.shared_refs())
    }

    /// Average demand read-miss service latency in pclocks.
    pub fn avg_read_miss_latency(&self) -> f64 {
        if self.read_miss_count == 0 {
            0.0
        } else {
            self.read_miss_cycles as f64 / self.read_miss_count as f64
        }
    }

    /// Fraction of directory read requests serviced with a clean memory
    /// copy (the mechanism behind CW's shorter read-miss latency: "the
    /// likelihood of finding a clean copy at memory is higher").
    pub fn clean_read_fraction(&self) -> f64 {
        let total = self.reads_clean + self.reads_dirty;
        if total == 0 {
            0.0
        } else {
            self.reads_clean as f64 / total as f64
        }
    }

    /// Durations of the workload's barrier-delimited phases (differences of
    /// consecutive barrier completion times, with the run start as origin).
    pub fn phase_durations(&self) -> Vec<u64> {
        let mut last = 0;
        self.barrier_completion_cycles
            .iter()
            .map(|&t| {
                let d = t.saturating_sub(last);
                last = t;
                d
            })
            .collect()
    }

    /// Load imbalance: the busiest processor's accounted time divided by the
    /// average (1.0 = perfectly balanced). Returns 1.0 when unmeasured.
    pub fn load_imbalance(&self) -> f64 {
        let totals: Vec<u64> = self.per_proc_stalls.iter().map(|s| s.busy).collect();
        if totals.is_empty() {
            return 1.0;
        }
        let max = *totals.iter().max().expect("nonempty") as f64;
        let avg = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Fraction of issued prefetches that proved useful.
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }

    /// Execution time relative to a baseline run (the paper normalizes
    /// everything to BASIC = 100).
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran zero cycles.
    pub fn relative_time(&self, baseline: &Metrics) -> f64 {
        assert!(baseline.exec_cycles > 0, "baseline ran zero cycles");
        self.exec_cycles as f64 / baseline.exec_cycles as f64
    }

    /// Network traffic relative to a baseline run (Figure 4).
    pub fn relative_traffic(&self, baseline: &Metrics) -> f64 {
        if baseline.net_bytes == 0 {
            return if self.net_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.net_bytes as f64 / baseline.net_bytes as f64
    }

    /// Per-processor average stall breakdown scaled so that its components
    /// sum to this run's execution time — the construction of the paper's
    /// stacked bars.
    pub fn scaled_breakdown(&self) -> StallBreakdown {
        let total = self.stalls.total();
        if total == 0 || self.procs == 0 {
            return StallBreakdown::default();
        }
        let scale = self.exec_cycles as f64 / (total as f64 / self.procs as f64);
        let s = |v: u64| ((v as f64 / self.procs as f64) * scale) as u64;
        StallBreakdown {
            busy: s(self.stalls.busy),
            read: s(self.stalls.read),
            write: s(self.stalls.write),
            acquire: s(self.stalls.acquire),
            release: s(self.stalls.release),
            buffer: s(self.stalls.buffer),
        }
    }
}

fn is_zero(v: &u64) -> bool {
    *v == 0
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} / {} / {} on {} ({} procs)",
            self.workload, self.protocol, self.consistency, self.network, self.procs
        )?;
        writeln!(f, "  exec: {} pclocks", self.exec_cycles)?;
        let fr = self.stalls.fractions();
        writeln!(
            f,
            "  time: busy {:.1}% read {:.1}% write {:.1}% acq {:.1}% rel {:.1}% buf {:.1}%",
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0,
            fr[4] * 100.0,
            fr[5] * 100.0
        )?;
        writeln!(
            f,
            "  misses: {:.2}% (cold {:.2}% coh {:.2}% repl {:.2}%), avg read-miss {:.0} pclocks",
            self.miss_rate_pct(),
            self.cold_rate_pct(),
            self.coh_rate_pct(),
            self.repl_rate_pct(),
            self.avg_read_miss_latency()
        )?;
        write!(
            f,
            "  net: {} msgs, {} bytes (data {}, update {}, ctrl {}, sync {})",
            self.net_msgs,
            self.net_bytes,
            self.net_data_bytes,
            self.net_update_bytes,
            self.net_control_bytes,
            self.net_sync_bytes
        )?;
        let ext_activity = self.exclusive_grants
            + self.migratory_detections
            + self.migratory_reverts
            + self.interrogations
            + self.update_recalls;
        let dir_activity = self.dir_overflows + self.dir_broadcasts + self.dir_recalls;
        if ext_activity + dir_activity > 0 {
            write!(
                f,
                "\n  ext: excl-grants {} mig-detect {} mig-revert {} interrogations {} \
                 update-recalls {}",
                self.exclusive_grants,
                self.migratory_detections,
                self.migratory_reverts,
                self.interrogations,
                self.update_recalls
            )?;
            if dir_activity > 0 {
                write!(
                    f,
                    " dir-overflows {} dir-bcasts {} dir-recalls {}",
                    self.dir_overflows, self.dir_broadcasts, self.dir_recalls
                )?;
            }
        }
        let robustness = self.fault_delayed
            + self.fault_retransmitted
            + self.fault_duplicated
            + self.fault_lost
            + self.nacks_sent
            + self.nack_retries
            + self.stale_drops;
        if robustness > 0 {
            write!(
                f,
                "\n  faults: delayed {} retx {} dup {} lost {}; nacks {} retries {} stale-drops {}",
                self.fault_delayed,
                self.fault_retransmitted,
                self.fault_duplicated,
                self.fault_lost,
                self.nacks_sent,
                self.nack_retries,
                self.stale_drops
            )?;
        }
        if self.node_crashes > 0 {
            write!(
                f,
                "\n  crashes: {} (recovered {}); drops crash {} stale-epoch {}; \
                 purged-sharers {} orphan-reclaims {} purge-sweeps {} aborted-grants {} \
                 degraded-blocks {}",
                self.node_crashes,
                self.node_recoveries,
                self.crash_drops,
                self.stale_epoch_drops,
                self.dir_purged_sharers,
                self.dir_orphan_reclaims,
                self.dir_purge_sweeps,
                self.crash_aborted_grants,
                self.data_loss_blocks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            workload: "demo".into(),
            protocol: "BASIC".into(),
            consistency: "RC".into(),
            network: "uniform-54".into(),
            procs: 16,
            exec_cycles: 1000,
            shared_reads: 800,
            shared_writes: 200,
            slc_misses: 50,
            cold_misses: 30,
            coh_misses: 20,
            read_miss_cycles: 5000,
            read_miss_count: 50,
            net_bytes: 4000,
            ..Metrics::default()
        }
    }

    #[test]
    fn rates() {
        let m = sample();
        assert!((m.miss_rate_pct() - 5.0).abs() < 1e-9);
        assert!((m.cold_rate_pct() - 3.0).abs() < 1e-9);
        assert!((m.coh_rate_pct() - 2.0).abs() < 1e-9);
        assert_eq!(m.repl_rate_pct(), 0.0);
        assert!((m.avg_read_miss_latency() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn relative_measures() {
        let base = sample();
        let mut faster = sample();
        faster.exec_cycles = 500;
        faster.net_bytes = 6000;
        assert!((faster.relative_time(&base) - 0.5).abs() < 1e-9);
        assert!((faster.relative_traffic(&base) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = Metrics::default();
        assert_eq!(m.miss_rate_pct(), 0.0);
        assert_eq!(m.avg_read_miss_latency(), 0.0);
        assert_eq!(m.prefetch_efficiency(), 0.0);
        assert_eq!(m.relative_traffic(&Metrics::default()), 1.0);
    }

    #[test]
    fn scaled_breakdown_sums_to_exec_time() {
        let mut m = sample();
        m.stalls = StallBreakdown {
            busy: 8000,
            read: 4000,
            write: 0,
            acquire: 4000,
            release: 0,
            buffer: 0,
        };
        let sb = m.scaled_breakdown();
        let total = sb.total();
        // Integer rounding may lose a few cycles.
        assert!((total as i64 - m.exec_cycles as i64).abs() <= 3, "{total}");
        assert_eq!(sb.busy, 500);
    }

    #[test]
    fn phase_durations_are_deltas_of_completions() {
        let mut m = sample();
        m.barrier_completion_cycles = vec![100, 250, 600];
        assert_eq!(m.phase_durations(), vec![100, 150, 350]);
        assert!(Metrics::default().phase_durations().is_empty());
    }

    #[test]
    fn load_imbalance_edges() {
        // Unmeasured -> balanced by convention.
        assert_eq!(Metrics::default().load_imbalance(), 1.0);
        let mut m = sample();
        m.per_proc_stalls = vec![
            StallBreakdown {
                busy: 100,
                ..Default::default()
            },
            StallBreakdown::default(),
        ];
        assert!((m.load_imbalance() - 2.0).abs() < 1e-9);
        // All-idle processors: avoid division by zero.
        m.per_proc_stalls = vec![StallBreakdown::default(); 4];
        assert_eq!(m.load_imbalance(), 1.0);
    }

    #[test]
    fn clean_read_fraction_edges() {
        let mut m = sample();
        assert_eq!(m.clean_read_fraction(), 0.0);
        m.reads_clean = 3;
        m.reads_dirty = 1;
        assert!((m.clean_read_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let j = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&j).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn display_mentions_key_figures() {
        let s = sample().to_string();
        assert!(s.contains("exec: 1000"));
        assert!(s.contains("BASIC"));
    }
}
