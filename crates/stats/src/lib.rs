//! Measurement layer of the `dirext` simulator.
//!
//! Everything the paper reports is derived from three instruments:
//!
//! * [`StallBreakdown`] — the per-processor decomposition of execution time
//!   into busy time and read/write/acquire/release/buffer stalls (the bars
//!   of Figures 2 and 3);
//! * [`MissClassifier`] — cold / coherence / replacement classification of
//!   second-level cache misses (Table 2);
//! * [`Metrics`] — the complete result record of one simulation run,
//!   including protocol counters and network traffic (Figure 4, Table 3),
//!   with helpers for the paper's normalizations.
//!
//! [`TextTable`] renders the report tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod histogram;
mod metrics;
mod miss;
mod stall;
mod table;

pub use histogram::Histogram;
pub use metrics::Metrics;
pub use miss::{InvalReason, MissClass, MissClassifier};
pub use stall::{StallBreakdown, StallKind};
pub use table::TextTable;
