//! Execution-time decomposition.

use serde::{Deserialize, Serialize};

/// What a processor was waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallKind {
    /// Blocked on a read (cache miss service).
    Read,
    /// Blocked on a write until globally performed (sequential consistency).
    Write,
    /// Waiting for a lock grant or barrier release.
    Acquire,
    /// Waiting for a release to be globally performed (SC).
    Release,
    /// Waiting for space in a full write buffer.
    Buffer,
}

/// Cycle totals of one processor's execution, decomposed the way the
/// paper's Figure 2 and Figure 3 bars are.
///
/// Under release consistency the write latency is hidden, so `write` stays
/// zero and buffer-full time is the only write-related stall; under
/// sequential consistency `write` and `release` appear.
///
/// # Example
///
/// ```
/// use dirext_stats::{StallBreakdown, StallKind};
///
/// let mut s = StallBreakdown::default();
/// s.add_busy(100);
/// s.add_stall(StallKind::Read, 40);
/// assert_eq!(s.total(), 140);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Cycles doing computation or hitting in the FLC.
    pub busy: u64,
    /// Read-stall cycles.
    pub read: u64,
    /// Write-stall cycles (SC only).
    pub write: u64,
    /// Acquire-stall cycles (locks and barriers).
    pub acquire: u64,
    /// Release-stall cycles (SC only).
    pub release: u64,
    /// Buffer-full stall cycles.
    pub buffer: u64,
}

impl StallBreakdown {
    /// Adds busy cycles.
    pub fn add_busy(&mut self, cycles: u64) {
        self.busy += cycles;
    }

    /// Adds stall cycles of the given kind.
    ///
    /// Called once per completed stall on the simulator's hot path, so the
    /// kind dispatch is an indexed add over the five stall cells rather than
    /// a five-way branch.
    #[inline]
    pub fn add_stall(&mut self, kind: StallKind, cycles: u64) {
        let cells: [&mut u64; 5] = [
            &mut self.read,
            &mut self.write,
            &mut self.acquire,
            &mut self.release,
            &mut self.buffer,
        ];
        *cells[kind as usize] += cycles;
    }

    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.read + self.write + self.acquire + self.release + self.buffer
    }

    /// Element-wise sum (aggregation across processors).
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.busy += other.busy;
        self.read += other.read;
        self.write += other.write;
        self.acquire += other.acquire;
        self.release += other.release;
        self.buffer += other.buffer;
    }

    /// The fraction of total time spent in each component, in the order
    /// busy, read, write, acquire, release, buffer. Returns zeros for an
    /// empty breakdown.
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0 {
            return [0.0; 6];
        }
        let t = t as f64;
        [
            self.busy as f64 / t,
            self.read as f64 / t,
            self.write as f64 / t,
            self.acquire as f64 / t,
            self.release as f64 / t,
            self.buffer as f64 / t,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_kind() {
        let mut s = StallBreakdown::default();
        s.add_busy(10);
        s.add_stall(StallKind::Read, 5);
        s.add_stall(StallKind::Write, 4);
        s.add_stall(StallKind::Acquire, 3);
        s.add_stall(StallKind::Release, 2);
        s.add_stall(StallKind::Buffer, 1);
        assert_eq!(s.total(), 25);
        assert_eq!(s.read, 5);
        assert_eq!(s.buffer, 1);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = StallBreakdown {
            busy: 1,
            read: 2,
            write: 3,
            acquire: 4,
            release: 5,
            buffer: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 42);
        assert_eq!(a.acquire, 8);
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = StallBreakdown {
            busy: 50,
            read: 25,
            write: 0,
            acquire: 25,
            release: 0,
            buffer: 0,
        };
        let f = s.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(StallBreakdown::default().fractions(), [0.0; 6]);
    }

    #[test]
    fn serde_round_trip() {
        let s = StallBreakdown {
            busy: 7,
            read: 1,
            write: 2,
            acquire: 3,
            release: 4,
            buffer: 5,
        };
        let j = serde_json::to_string(&s).unwrap();
        let back: StallBreakdown = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
