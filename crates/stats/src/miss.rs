//! Cold / coherence / replacement miss classification (paper Table 2).

use dirext_core::blockmap::BlockMap;
use dirext_trace::{BlockAddr, NodeId};

/// Why a valid copy left a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalReason {
    /// Invalidated (or updated-out, or recalled) by the coherence protocol.
    Coherence,
    /// Evicted by a conflicting block (finite caches only).
    Replacement,
}

/// Classification of a second-level cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// First reference by this node to the block.
    Cold = 0,
    /// The block was present but removed by a coherence action.
    Coherence = 1,
    /// The block was present but evicted for capacity/conflict reasons.
    Replacement = 2,
}

/// Tracks, per node and block, enough history to classify each SLC miss.
///
/// Classification follows the standard scheme the paper (and its reference
/// \[3\]) use: the
/// first-ever reference is a *cold* miss; later misses take the reason the
/// copy last left the cache.
///
/// # Example
///
/// ```
/// use dirext_stats::{InvalReason, MissClass, MissClassifier};
/// use dirext_trace::{BlockAddr, NodeId};
///
/// let mut mc = MissClassifier::new(2);
/// let (n, b) = (NodeId(0), BlockAddr::from_index(9));
/// assert_eq!(mc.classify_miss(n, b), MissClass::Cold);
/// mc.note_access(n, b);
/// mc.note_invalidation(n, b, InvalReason::Coherence);
/// assert_eq!(mc.classify_miss(n, b), MissClass::Coherence);
/// ```
#[derive(Debug)]
pub struct MissClassifier {
    /// Per-node touched-block sets, as dense block-indexed arenas:
    /// `note_access` runs on *every* data reference, the hottest
    /// classification path in the simulator.
    accessed: Vec<BlockMap<()>>,
    reason: Vec<BlockMap<InvalReason>>,
    /// Miss counts indexed by `MissClass` discriminant (cold, coherence,
    /// replacement) so the per-miss bump is an indexed add, not a branch.
    counts: [u64; 3],
}

impl MissClassifier {
    /// Creates a classifier for `nprocs` nodes.
    pub fn new(nprocs: usize) -> Self {
        MissClassifier {
            accessed: (0..nprocs).map(|_| BlockMap::new()).collect(),
            reason: (0..nprocs).map(|_| BlockMap::new()).collect(),
            counts: [0; 3],
        }
    }

    /// Records that `node` referenced `block` (hit or miss) — needed so a
    /// block whose first touch *hit* (e.g. it arrived by prefetch) is not
    /// later misclassified as cold.
    pub fn note_access(&mut self, node: NodeId, block: BlockAddr) {
        self.accessed[node.idx()].insert(block, ());
    }

    /// Records why `node`'s copy of `block` went away.
    pub fn note_invalidation(&mut self, node: NodeId, block: BlockAddr, reason: InvalReason) {
        self.reason[node.idx()].insert(block, reason);
    }

    /// Classifies (and counts) a demand miss by `node` on `block`, and
    /// records the access.
    pub fn classify_miss(&mut self, node: NodeId, block: BlockAddr) -> MissClass {
        let class = if !self.accessed[node.idx()].contains(block) {
            MissClass::Cold
        } else {
            match self.reason[node.idx()].get(block) {
                Some(InvalReason::Replacement) => MissClass::Replacement,
                // A re-miss on a previously accessed block with no recorded
                // eviction happens when the copy was taken by the coherence
                // protocol through a path that races with this miss; count
                // it as a coherence miss.
                _ => MissClass::Coherence,
            }
        };
        self.accessed[node.idx()].insert(block, ());
        self.counts[class as usize] += 1;
        class
    }

    /// Counted cold misses.
    pub fn cold(&self) -> u64 {
        self.counts[MissClass::Cold as usize]
    }

    /// Counted coherence misses.
    pub fn coherence(&self) -> u64 {
        self.counts[MissClass::Coherence as usize]
    }

    /// Counted replacement misses.
    pub fn replacement(&self) -> u64 {
        self.counts[MissClass::Replacement as usize]
    }

    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn first_miss_is_cold_per_node() {
        let mut mc = MissClassifier::new(2);
        assert_eq!(mc.classify_miss(n(0), b(1)), MissClass::Cold);
        // A different node's first touch of the same block is also cold.
        assert_eq!(mc.classify_miss(n(1), b(1)), MissClass::Cold);
        assert_eq!(mc.cold(), 2);
    }

    #[test]
    fn invalidation_reason_drives_class() {
        let mut mc = MissClassifier::new(1);
        mc.classify_miss(n(0), b(1));
        mc.note_invalidation(n(0), b(1), InvalReason::Replacement);
        assert_eq!(mc.classify_miss(n(0), b(1)), MissClass::Replacement);
        mc.note_invalidation(n(0), b(1), InvalReason::Coherence);
        assert_eq!(mc.classify_miss(n(0), b(1)), MissClass::Coherence);
        assert_eq!((mc.cold(), mc.coherence(), mc.replacement()), (1, 1, 1));
        assert_eq!(mc.total(), 3);
    }

    #[test]
    fn prefetched_block_first_touch_is_not_cold_later() {
        let mut mc = MissClassifier::new(1);
        // Block arrives by prefetch; the first reference hits.
        mc.note_access(n(0), b(5));
        mc.note_invalidation(n(0), b(5), InvalReason::Coherence);
        // The next miss must be a coherence miss, not cold.
        assert_eq!(mc.classify_miss(n(0), b(5)), MissClass::Coherence);
    }

    #[test]
    fn latest_reason_wins() {
        let mut mc = MissClassifier::new(1);
        mc.classify_miss(n(0), b(2));
        mc.note_invalidation(n(0), b(2), InvalReason::Coherence);
        mc.note_invalidation(n(0), b(2), InvalReason::Replacement);
        assert_eq!(mc.classify_miss(n(0), b(2)), MissClass::Replacement);
    }
}
