//! A small fixed-bucket histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// A power-of-two-bucketed histogram of cycle counts.
///
/// Used for read-miss service-time distributions: the mean alone hides the
/// 2-hop/4-hop bimodality that explains CW's latency advantage, so the
/// machine records every demand-miss latency here and the reports can show
/// percentiles.
///
/// Buckets are `[2^k, 2^(k+1))` for `k` in `0..BUCKETS`; values ≥ the last
/// boundary land in the final bucket.
///
/// # Example
///
/// ```
/// use dirext_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [30, 30, 30, 140, 300] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) <= 64);   // median in the 32..64 bucket
/// assert!(h.percentile(0.99) >= 256); // tail in the 256..512 bucket
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

const BUCKETS: usize = 24;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        let b = (64 - value.max(1).leading_zeros()) as usize - 1;
        b.min(BUCKETS - 1)
    }

    /// Upper boundary (exclusive) of bucket `i`.
    fn boundary(i: usize) -> u64 {
        1u64 << (i + 1)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`q` in 0..=1): the upper boundary of the
    /// bucket containing the q-quantile. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::boundary(i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Iterates over `(bucket_upper_bound, count)` for nonempty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (Self::boundary(i), *n))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn percentiles_are_monotonic() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 40, 80, 160, 320, 640] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max().max(1024));
    }

    #[test]
    fn bimodal_distribution_is_visible() {
        // 2-hop (~120 cycles) vs 4-hop (~280 cycles) service times.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(120);
        }
        for _ in 0..10 {
            h.record(280);
        }
        assert!(h.percentile(0.5) <= 128);
        assert!(h.percentile(0.95) >= 256);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 500);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn zero_and_huge_values_are_clamped() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        Histogram::new().percentile(1.5);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Histogram::new();
        h.record(42);
        let j = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&j).unwrap();
        assert_eq!(h, back);
    }
}
