//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use dirext_stats::TextTable;
///
/// let mut t = TextTable::new(vec!["app", "BASIC", "P"]);
/// t.row(vec!["LU".into(), "1.00".into(), "0.81".into()]);
/// let s = t.to_string();
/// assert!(s.contains("LU"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Convenience: a row of formatted floats after a label cell.
    pub fn row_f64(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = vec![label.to_owned()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{c:<w$}", w = widths[i])?;
                } else {
                    write!(f, "{c:>w$}", w = widths[i])?;
                }
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["app", "value"]);
        t.row(vec!["MP3D".into(), "1".into()]);
        t.row(vec!["Cholesky".into(), "12345".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are equally wide (right-aligned numeric column).
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn row_f64_formats_precision() {
        let mut t = TextTable::new(vec!["app", "a", "b"]);
        t.row_f64("LU", &[0.5, 1.0], 2);
        let s = t.to_string();
        assert!(s.contains("0.50"));
        assert!(s.contains("1.00"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
