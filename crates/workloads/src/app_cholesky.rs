//! Cholesky: sparse supernodal Cholesky factorization (bcsstk14 in the
//! paper).
//!
//! The original fetches supernodes from a lock-protected task queue; a task
//! reads the supernode's column data (most of it touched only once — the
//! cold-miss rate of this direct solver stays high for the whole run, which
//! is why prefetching helps it so much) and scatters updates into later
//! columns under per-column locks (migratory read-modify-write sequences).
//!
//! The generator reproduces: a global task counter behind a lock
//! (migratory), per-supernode sequential scans over column data sized from
//! a deterministic pseudo-random distribution, and lock-protected update
//! scatters into a pseudo-random set of later columns.

use dirext_kernel::Pcg32;
use dirext_trace::{BarrierId, Layout, ProgramBuilder, Workload, BLOCK_BYTES, WORD_BYTES};

use crate::Scale;

/// Builds the Cholesky workload.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn cholesky(procs: usize, scale: Scale) -> Workload {
    assert!(procs > 0);
    let supernodes: u64 = scale.pick(320, 96, 24);
    let max_col_blocks: u32 = scale.pick(40, 12, 4);
    let updates_per_node: u32 = scale.pick(4, 3, 2);

    // Column geometry is shared by all processors (same seed).
    let mut geom_rng = Pcg32::new(0xC0DE);
    let col_blocks: Vec<u64> = (0..supernodes)
        .map(|_| u64::from(geom_rng.range(max_col_blocks / 4 + 1, max_col_blocks + 1)))
        .collect();

    let mut layout = Layout::new();
    let cols: Vec<_> = (0..supernodes)
        .map(|s| layout.alloc(&format!("col{s}"), col_blocks[s as usize] * BLOCK_BYTES))
        .collect();
    let col_locks = layout.alloc_locks("column-locks", supernodes);
    let queue_lock = layout.alloc_locks("task-queue-lock", 1);
    let queue_counter = layout.alloc("task-counter", BLOCK_BYTES);

    // Tasks are claimed dynamically in the original; we model the claim
    // cost (lock + counter read-modify-write: migratory) faithfully but
    // assign tasks round-robin so the trace is static.
    let programs = (0..procs)
        .map(|p| {
            let mut b = ProgramBuilder::new();
            let mut rng = Pcg32::with_stream(0xC0DE, 1_000 + p as u64);
            for (idx, s) in (p as u64..supernodes).step_by(procs).enumerate() {
                // Claim a chunk of tasks (chunked self-scheduling: one
                // counter bump hands out four supernodes, keeping the
                // global queue lock off the critical path).
                if idx % 4 == 0 {
                    b.critical(queue_lock.base(), |b| {
                        b.rmw(queue_counter.base());
                    });
                }
                // Factor the supernode: one sequential read-modify-write
                // sweep over its column (word-granular: high spatial
                // locality, and the only touch of most of this data).
                let col = cols[s as usize];
                b.compute(20);
                let mut off = 0;
                while off < col.bytes() {
                    b.compute(2);
                    b.read(col.at(off));
                    if off % (2 * WORD_BYTES) == 0 {
                        b.write(col.at(off));
                    }
                    off += WORD_BYTES;
                }
                // Scatter updates into later columns under their locks:
                // read/write sequences by changing processors — migratory.
                for _ in 0..updates_per_node {
                    if s + 1 >= supernodes {
                        break;
                    }
                    // Updates scatter over *all* later columns (the
                    // elimination-tree ancestors), and each update modifies
                    // a contiguous range of the destination — supernodal
                    // updates are dense sub-blocks, not single words.
                    let span = (supernodes - s - 1) as u32;
                    let dst = s + 1 + u64::from(rng.below(span));
                    let dcol = cols[dst as usize];
                    let nblocks = dcol.bytes() / BLOCK_BYTES;
                    let len = 3.min(nblocks);
                    let blk = u64::from(rng.below((nblocks - len + 1) as u32));
                    b.critical(col_locks.elem(dst, BLOCK_BYTES), |b| {
                        b.compute(6);
                        b.rmw_words(dcol.at(blk * BLOCK_BYTES), len * BLOCK_BYTES);
                    });
                }
            }
            b.barrier(BarrierId(0));
            b.build()
        })
        .collect();
    Workload::new("Cholesky", programs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let w = cholesky(4, Scale::Tiny);
        w.validate().unwrap();
        assert!(w.total_data_refs() > 200);
    }

    #[test]
    fn tasks_cover_all_supernodes() {
        // Each supernode's claim is one lock acquire; 24 supernodes at
        // tiny scale -> 24 task-queue critical sections plus update locks.
        let w = cholesky(3, Scale::Tiny);
        let acquires: usize = (0..3)
            .map(|p| {
                w.program(p)
                    .events()
                    .iter()
                    .filter(|e| matches!(e, dirext_trace::MemEvent::Acquire(_)))
                    .count()
            })
            .sum();
        assert!(acquires >= 24);
    }
}
