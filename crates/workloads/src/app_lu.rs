//! LU: dense column-oriented LU factorization (200×200 in the paper).
//!
//! The matrix is stored column-major with columns assigned round-robin to
//! processors. Iteration `k`: the owner of column `k` normalizes it (reads
//! and rewrites the subdiagonal), everyone synchronizes, then every
//! processor reads the pivot column and updates its own later columns.
//!
//! The sharing structure this produces — and that the paper's results rely
//! on:
//!
//! * the pivot column is a producer-consumer block read by all processors
//!   (one burst of coherence/cold misses per iteration, highly sequential:
//!   adaptive prefetching's best case);
//! * column updates are long sequential read-modify-write scans over owned
//!   data (spatial locality, again prefetch-friendly);
//! * columns are *not* block-aligned (`n·8` bytes each, contiguous), so
//!   adjacent columns owned by different processors share boundary blocks:
//!   LU's classic false sharing, which produces its coherence-miss
//!   component and which a larger block size would amplify;
//! * a small global pivot-state record written by the pivot owner and read
//!   by everyone each iteration (the producer-consumer residue of the ANL
//!   macro state).
//!
//! [`lu_software_prefetch`] is the same computation annotated with
//! Mowry-&-Gupta-style software prefetch hints (shared-mode ahead of pivot
//! reads, exclusive-mode ahead of owned-column updates) — the comparison
//! point the paper's related-work section discusses against its
//! hardware scheme.

use dirext_trace::{Addr, BarrierId, Layout, ProgramBuilder, Workload, BLOCK_BYTES};

use crate::Scale;

const ELEM: u64 = 8; // double

/// Builds the LU workload.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn lu(procs: usize, scale: Scale) -> Workload {
    lu_inner(procs, scale, false)
}

/// Builds the LU workload with software prefetch annotations (and no
/// hardware prefetcher assumed — run it under BASIC to compare against
/// [`lu`] under P).
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn lu_software_prefetch(procs: usize, scale: Scale) -> Workload {
    lu_inner(procs, scale, true)
}

fn lu_inner(procs: usize, scale: Scale, software_prefetch: bool) -> Workload {
    assert!(procs > 0);
    let n: u64 = scale.pick(112, 40, 12);

    let mut layout = Layout::new();
    // One contiguous column-major matrix; columns deliberately unaligned.
    let matrix = layout.alloc_page_aligned("matrix", n * n * ELEM);
    // Global iteration state (pivot value, column status flags): written by
    // the pivot owner every iteration and read by everyone — the small
    // producer-consumer component behind LU's coherence misses.
    let global = layout.alloc("global-state", 2 * 32);
    let col = |j: u64, i: u64| matrix.at((j * n + i) * ELEM);

    let owner = |j: u64| (j % procs as u64) as usize;

    // Prefetch a column range block by block (4 doubles per 32-byte block).
    let prefetch_span = |b: &mut ProgramBuilder, base: Addr, elems: u64, exclusive: bool| {
        let mut off = 0;
        while off < elems * ELEM {
            if exclusive {
                b.prefetch_exclusive(base.offset(off));
            } else {
                b.prefetch(base.offset(off));
            }
            off += BLOCK_BYTES;
        }
    };

    let programs = (0..procs)
        .map(|p| {
            let mut b = ProgramBuilder::new();
            for k in 0..n - 1 {
                if owner(k) == p {
                    // Normalize the pivot column: read the diagonal, then
                    // read-modify-write every subdiagonal element.
                    if software_prefetch {
                        prefetch_span(&mut b, col(k, k + 1), n - k - 1, true);
                    }
                    b.compute(8);
                    b.read(col(k, k));
                    for i in (k + 1)..n {
                        b.compute(3);
                        b.rmw(col(k, i));
                    }
                    // Publish the pivot's global state.
                    b.write(global.at(0));
                    b.write(global.at(32));
                }
                b.barrier(BarrierId(k as u32));
                // Everyone consults the global state before updating.
                b.compute(4);
                b.read(global.at(0));
                b.read(global.at(32));
                // Update owned trailing columns with the pivot column.
                for j in (k + 1)..n {
                    if owner(j) != p {
                        continue;
                    }
                    if software_prefetch {
                        // Fetch the pivot span read-shared and the owned
                        // column read-exclusive, one iteration of work
                        // ahead of the consuming loop.
                        prefetch_span(&mut b, col(k, k + 1), n - k - 1, false);
                        prefetch_span(&mut b, col(j, k + 1), n - k - 1, true);
                    }
                    for i in (k + 1)..n {
                        // a[j][i] -= a[k][i] * a[j][k]; strided by word so
                        // every second element of the pivot is read (the
                        // multiplier a[j][k] stays in a register).
                        if (i - k) % 2 == 1 {
                            b.compute(2);
                            b.read(col(k, i));
                        }
                        b.compute(2);
                        b.rmw(col(j, i));
                    }
                }
            }
            b.barrier(BarrierId(n as u32));
            b.build()
        })
        .collect();
    Workload::new(if software_prefetch { "LU-swpf" } else { "LU" }, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirext_trace::MemEvent;

    #[test]
    fn structure() {
        let w = lu(4, Scale::Tiny);
        w.validate().unwrap();
        // Every processor passes n barriers (n-1 pivots + final).
        assert_eq!(w.program(0).barrier_sequence().len(), 12);
    }

    #[test]
    fn work_is_balanced_round_robin() {
        let w = lu(4, Scale::Small);
        let refs: Vec<usize> = (0..4).map(|p| w.program(p).data_refs()).collect();
        let max = *refs.iter().max().unwrap() as f64;
        let min = *refs.iter().min().unwrap() as f64;
        assert!(
            min / max > 0.7,
            "round-robin columns must balance: {refs:?}"
        );
    }

    #[test]
    fn software_prefetch_variant_adds_hints_only() {
        let plain = lu(4, Scale::Tiny);
        let swpf = lu_software_prefetch(4, Scale::Tiny);
        swpf.validate().unwrap();
        // The data-reference stream is identical; only hints are added.
        assert_eq!(plain.total_data_refs(), swpf.total_data_refs());
        let hints: usize = (0..4)
            .map(|p| {
                swpf.program(p)
                    .events()
                    .iter()
                    .filter(|e| matches!(e, MemEvent::Prefetch { .. }))
                    .count()
            })
            .sum();
        assert!(hints > 0, "the swpf variant must carry prefetch hints");
        // Both shared- and exclusive-mode hints appear.
        let excl = swpf.program(0).events().iter().any(|e| {
            matches!(
                e,
                MemEvent::Prefetch {
                    exclusive: true,
                    ..
                }
            )
        });
        assert!(excl);
    }
}
