//! Randomized well-formed workloads — the protocol fuzzer's input.
//!
//! [`random_workload`] generates arbitrary but structurally valid programs
//! (paired lock operations, no barrier inside a critical section, shared
//! barrier schedule) from a seed. The CLI's `stress` command feeds these
//! through every protocol with the machine's coherence audit enabled; the
//! property tests in `tests/coherence_props.rs` do the same through
//! proptest, with shrinking.

use dirext_kernel::Pcg32;
use dirext_trace::{Addr, BarrierId, MemEvent, Program, Workload, BLOCK_BYTES};

/// Parameters of the random workload generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomParams {
    /// Number of processors.
    pub procs: usize,
    /// Approximate operation groups per processor.
    pub groups_per_proc: usize,
    /// Size of the shared block pool the programs hammer.
    pub blocks: u64,
    /// Number of distinct locks.
    pub locks: u64,
    /// Number of barrier episodes every processor passes.
    pub barriers: u32,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            procs: 8,
            groups_per_proc: 60,
            blocks: 48,
            locks: 4,
            barriers: 3,
        }
    }
}

/// Generates a random well-formed workload from `seed`.
///
/// The same `(seed, params)` always produces the same workload, so a
/// failing seed reported by the fuzzer is a complete reproduction recipe.
///
/// # Panics
///
/// Panics if `params.procs` is zero or exceeds 64.
pub fn random_workload(seed: u64, params: RandomParams) -> Workload {
    assert!(params.procs > 0 && params.procs <= 64);
    let lock_base = 1u64 << 20;
    let programs = (0..params.procs)
        .map(|p| {
            let mut rng = Pcg32::with_stream(seed, p as u64);
            let mut events = Vec::new();
            let mut emitted_barriers = 0u32;
            let groups = params.groups_per_proc.max(1);
            let per_chunk = groups / (params.barriers as usize + 1) + 1;
            for g in 0..groups {
                let addr = |rng: &mut Pcg32| {
                    let b = u64::from(rng.below(params.blocks as u32));
                    let word = u64::from(rng.below(8));
                    Addr::new(b * BLOCK_BYTES + word * 4)
                };
                match rng.below(10) {
                    0..=3 => events.push(MemEvent::Read(addr(&mut rng))),
                    4..=6 => events.push(MemEvent::Write(addr(&mut rng))),
                    7..=8 => events.push(MemEvent::Compute(rng.range(1, 24))),
                    _ => {
                        // A critical section around a read-modify-write.
                        let lock = Addr::new(
                            lock_base + u64::from(rng.below(params.locks as u32)) * BLOCK_BYTES,
                        );
                        let a = addr(&mut rng);
                        events.push(MemEvent::Acquire(lock));
                        events.push(MemEvent::Read(a));
                        events.push(MemEvent::Write(a));
                        events.push(MemEvent::Release(lock));
                    }
                }
                if (g + 1) % per_chunk == 0 && emitted_barriers < params.barriers {
                    events.push(MemEvent::Barrier(BarrierId(emitted_barriers)));
                    emitted_barriers += 1;
                }
            }
            for b in emitted_barriers..params.barriers {
                events.push(MemEvent::Barrier(BarrierId(b)));
            }
            Program::from_events(events)
        })
        .collect();
    Workload::new(format!("random-{seed:#x}"), programs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_are_valid() {
        for seed in 0..50 {
            let w = random_workload(seed, RandomParams::default());
            w.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let a = random_workload(7, RandomParams::default());
        let b = random_workload(7, RandomParams::default());
        for p in 0..a.procs() {
            assert_eq!(a.program(p), b.program(p));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_workload(1, RandomParams::default());
        let b = random_workload(2, RandomParams::default());
        assert_ne!(a.program(0), b.program(0));
    }

    #[test]
    fn barrier_schedule_is_shared() {
        let w = random_workload(
            3,
            RandomParams {
                barriers: 5,
                ..RandomParams::default()
            },
        );
        let reference = w.program(0).barrier_sequence();
        assert_eq!(reference.len(), 5);
        for p in 1..w.procs() {
            assert_eq!(w.program(p).barrier_sequence(), reference);
        }
    }
}
