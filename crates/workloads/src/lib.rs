//! Synthetic workloads reproducing the sharing behaviour of the paper's
//! five benchmark programs.
//!
//! The paper drives its simulations with three SPLASH programs (MP3D,
//! Water, Cholesky) and two Stanford applications (LU, Ocean). We cannot
//! run SPARC binaries, so each generator here emits per-processor
//! [`dirext_trace::Program`]s whose *sharing structure* matches the
//! original (see `DESIGN.md` §3, substitution S1):
//!
//! * [`mp3d`] — particle streaming over per-processor particle arrays plus
//!   unsynchronized read-modify-writes on randomly chosen space cells: the
//!   paper's canonical migratory sharing ("x := x + 1") with the highest
//!   traffic and coherence-miss component of the suite;
//! * [`cholesky`] — sparse supernodal factorization: a lock-protected task
//!   queue, persistent cold misses over large column data (a direct
//!   solver!), and lock-protected column updates (migratory);
//! * [`water`] — O(n²/2) pairwise force computation: read-only sharing of
//!   molecule positions, lock-protected migratory force accumulation, and
//!   per-timestep position updates;
//! * [`lu`] — dense column-oriented factorization: producer-consumer pivot
//!   columns with high spatial locality (sequential prefetching's best
//!   case) and false sharing at unaligned column boundaries;
//! * [`ocean`] — iterative near-neighbour grid relaxation: coherence misses
//!   at partition boundaries, heavy barrier synchronization.
//!
//! [`locusroute`] (the sixth program of the ICPP'93 suite, not part of the
//! ISCA'94 evaluation) and [`lu_software_prefetch`] are bonus generators
//! used by the ablation benches.
//!
//! All generators are deterministic in `(scale, procs, seed)`. The
//! [`micro`] module provides the small targeted patterns used by tests,
//! examples and ablation benches; [`random`] generates the fuzzer's
//! well-formed random workloads; and [`App`] enumerates the suite for the
//! experiment drivers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app_cholesky;
mod app_locusroute;
mod app_lu;
mod app_mp3d;
mod app_ocean;
mod app_water;
pub mod micro;
pub mod random;
mod scale;

pub use app_cholesky::cholesky;
pub use app_locusroute::locusroute;
pub use app_lu::{lu, lu_software_prefetch};
pub use app_mp3d::mp3d;
pub use app_ocean::ocean;
pub use app_water::water;
pub use scale::Scale;

use dirext_trace::Workload;

/// The paper's five-application suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Rarefied hypersonic flow (particle-in-cell); migratory space cells.
    Mp3d,
    /// Sparse Cholesky factorization of bcsstk14-like structure.
    Cholesky,
    /// N-body water molecule dynamics.
    Water,
    /// Dense LU factorization of a 200×200-like matrix.
    Lu,
    /// Ocean basin simulation (grid relaxation).
    Ocean,
}

impl App {
    /// The suite in the paper's presentation order.
    pub const ALL: [App; 5] = [App::Mp3d, App::Cholesky, App::Water, App::Lu, App::Ocean];

    /// Display name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            App::Mp3d => "MP3D",
            App::Cholesky => "Cholesky",
            App::Water => "Water",
            App::Lu => "LU",
            App::Ocean => "Ocean",
        }
    }

    /// Generates this application's workload.
    pub fn workload(self, procs: usize, scale: Scale) -> Workload {
        match self {
            App::Mp3d => mp3d(procs, scale),
            App::Cholesky => cholesky(procs, scale),
            App::Water => water(procs, scale),
            App::Lu => lu(procs, scale),
            App::Ocean => ocean(procs, scale),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_generate_valid_workloads() {
        for app in App::ALL {
            let w = app.workload(16, Scale::Tiny);
            w.validate().unwrap_or_else(|e| panic!("{app}: {e}"));
            assert_eq!(w.procs(), 16);
            assert!(w.total_data_refs() > 0, "{app} generates no references");
            assert_eq!(w.name(), app.name());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for app in App::ALL {
            let a = app.workload(8, Scale::Tiny);
            let b = app.workload(8, Scale::Tiny);
            for p in 0..8 {
                assert_eq!(a.program(p), b.program(p), "{app} proc {p} differs");
            }
        }
    }

    #[test]
    fn scales_order_by_size() {
        for app in App::ALL {
            let tiny = app.workload(4, Scale::Tiny).total_data_refs();
            let small = app.workload(4, Scale::Small).total_data_refs();
            assert!(
                small > tiny,
                "{app}: small ({small}) must exceed tiny ({tiny})"
            );
        }
    }
}
