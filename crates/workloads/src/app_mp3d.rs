//! MP3D: rarefied hypersonic flow (particle-in-cell).
//!
//! The original simulates particles moving through a 3-D space array of
//! cells; each time step moves every particle (streaming access to the
//! particle records) and performs unsynchronized `x := x + 1`-style
//! read-modify-writes on the particle's current cell — the paper explicitly
//! attributes MP3D's migratory sharing to these statements. MP3D is the
//! suite's traffic hog: its coherence-miss component is around 9 % of
//! shared references and it saturates narrow meshes first.
//!
//! Our generator keeps those properties: statically partitioned particle
//! records (one 32-byte block each) walked every step, and per-particle
//! read-modify-writes on pseudo-randomly evolving cells shared by all
//! processors, plus a lock-protected global reservoir counter.

use dirext_kernel::Pcg32;
use dirext_trace::{BarrierId, Layout, ProgramBuilder, Workload, BLOCK_BYTES, WORD_BYTES};

use crate::Scale;

/// Builds the MP3D workload.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn mp3d(procs: usize, scale: Scale) -> Workload {
    assert!(procs > 0);
    let particles: u64 = scale.pick(4096, 512, 96);
    let cells: u64 = scale.pick(768, 128, 24);
    let steps: u32 = scale.pick(6, 3, 2);

    let mut layout = Layout::new();
    let particle_arr = layout.alloc_page_aligned("particles", particles * BLOCK_BYTES);
    let cell_arr = layout.alloc_page_aligned("cells", cells * BLOCK_BYTES);
    let reservoir = layout.alloc("reservoir", BLOCK_BYTES);
    let locks = layout.alloc_locks("locks", 1);

    let per_proc = particles.div_ceil(procs as u64);

    let programs = (0..procs)
        .map(|p| {
            let mut b = ProgramBuilder::new();
            // Per-(processor, particle) deterministic cell trajectories.
            let mut rng = Pcg32::with_stream(0x3D_3D, p as u64);
            let lo = (p as u64 * per_proc).min(particles);
            let hi = ((p as u64 + 1) * per_proc).min(particles);
            for step in 0..steps {
                for i in lo..hi {
                    // Move the particle: read position/velocity words and
                    // write the updated position (5 reads, 3 writes within
                    // the particle's block).
                    let part = particle_arr.at(i * BLOCK_BYTES);
                    b.compute(24);
                    for w in 0..5 {
                        b.read(part.offset(w * WORD_BYTES));
                    }
                    for w in 0..3 {
                        b.write(part.offset(w * WORD_BYTES));
                    }
                    // Collide with the current cell: unsynchronized
                    // read-modify-writes of two cell counters. The cell
                    // index evolves pseudo-randomly per step, so cells are
                    // touched by ever-changing processors: migratory.
                    let cell = rng.below(cells as u32) as u64;
                    let cell_addr = cell_arr.at(cell * BLOCK_BYTES);
                    b.compute(10);
                    b.rmw(cell_addr);
                    b.rmw(cell_addr.offset(WORD_BYTES));
                    let _ = step;
                }
                // End of step: update the global reservoir under its lock,
                // then synchronize.
                b.critical(locks.base(), |b| {
                    b.rmw(reservoir.base());
                });
                b.barrier(BarrierId(step));
            }
            b.build()
        })
        .collect();
    Workload::new("MP3D", programs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let w = mp3d(4, Scale::Tiny);
        w.validate().unwrap();
        // 96 particles / 4 procs * 2 steps * (5r + 3w + 2rmw=4) refs,
        // plus reservoir rmw per step.
        let per_proc_refs = 24 * 2 * 12 + 2 * 2;
        assert_eq!(w.program(0).data_refs(), per_proc_refs);
    }

    #[test]
    fn all_procs_touch_cells() {
        let w = mp3d(8, Scale::Tiny);
        for p in 0..8 {
            assert!(w.program(p).data_refs() > 0);
        }
    }
}
