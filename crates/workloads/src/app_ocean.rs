//! Ocean: eddy-current ocean basin simulation (128×128 grid in the paper).
//!
//! The computational core is iterative five-point stencil relaxation over
//! several grids. Like SPLASH Ocean's subgrid decomposition, the partition
//! boundary cuts across the storage order: grids are row-major but each
//! processor owns a *column strip*, so
//!
//! * a processor's own elements form short row segments (a handful of
//!   words) separated by full-row strides — little for a sequential
//!   prefetcher to chew on, matching the paper's observation that P does
//!   not reduce Ocean's read stall;
//! * the east/west neighbour columns are read every sweep and rewritten by
//!   their owners each iteration: per-iteration coherence misses on
//!   *strided* addresses (Ocean's dominant miss class, 0.96 % coherence vs
//!   0.37 % cold in Table 2), which competitive update eliminates but
//!   prefetching cannot.

use dirext_trace::{BarrierId, Layout, ProgramBuilder, Region, Workload};

use crate::Scale;

const ELEM: u64 = 8; // double

/// Builds the Ocean workload.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn ocean(procs: usize, scale: Scale) -> Workload {
    assert!(procs > 0);
    let g: u64 = scale.pick(96, 36, 12);
    let grids: usize = scale.pick(3, 2, 1);
    let iters: u32 = scale.pick(5, 3, 2);

    let mut layout = Layout::new();
    let grid_regions: Vec<Region> = (0..grids)
        .map(|i| layout.alloc_page_aligned(&format!("grid{i}"), g * g * ELEM))
        .collect();

    let cols_per = g.div_ceil(procs as u64);
    let strip = |p: usize| {
        let lo = (p as u64 * cols_per).min(g);
        let hi = ((p as u64 + 1) * cols_per).min(g);
        lo..hi
    };
    // Row-major storage: (row, col) lives at row*g + col.
    let at = |r: &Region, row: u64, col: u64| r.at((row * g + col) * ELEM);

    let mut bar = 0u32;
    let mut programs: Vec<_> = (0..procs).map(|_| ProgramBuilder::new()).collect();
    for region in &grid_regions {
        for _it in 0..iters {
            for (p, b) in programs.iter_mut().enumerate() {
                let cols = strip(p);
                for row in 1..g - 1 {
                    // West/east halo elements (the neighbours' boundary
                    // columns): strided reads, invalidated every iteration.
                    if cols.start > 0 {
                        b.compute(12);
                        b.read(at(region, row, cols.start - 1));
                    }
                    if cols.end < g {
                        b.compute(12);
                        b.read(at(region, row, cols.end.min(g - 1)));
                    }
                    // Interior segment: 5-point stencil, red-black stride 2.
                    let mut col = cols.start + (row % 2);
                    while col < cols.end {
                        b.compute(24);
                        b.read(at(region, row - 1, col));
                        b.read(at(region, row + 1, col));
                        b.rmw(at(region, row, col));
                        col += 2;
                    }
                }
                b.barrier(BarrierId(bar));
            }
            bar += 1;
        }
    }
    Workload::new(
        "Ocean",
        programs.into_iter().map(|mut b| b.build()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let w = ocean(4, Scale::Tiny);
        w.validate().unwrap();
        // grids * iters barriers.
        assert_eq!(w.program(0).barrier_sequence().len(), 2);
    }

    #[test]
    fn strips_cover_grid_for_odd_proc_counts() {
        let w = ocean(5, Scale::Tiny);
        w.validate().unwrap();
        assert!(w.total_data_refs() > 0);
    }

    #[test]
    fn boundary_reads_touch_neighbour_strips() {
        use dirext_trace::MemEvent;
        let w = ocean(4, Scale::Tiny);
        // Processor 1 must read columns owned by processors 0 and 2.
        let g = 12u64;
        let cols_per = 3u64;
        let reads: Vec<u64> = w
            .program(1)
            .events()
            .iter()
            .filter_map(|e| match e {
                MemEvent::Read(a) => Some((a.byte() / ELEM) % g),
                _ => None,
            })
            .collect();
        assert!(reads.contains(&(cols_per - 1)), "west halo read");
        assert!(reads.contains(&(2 * cols_per)), "east halo read");
    }
}
