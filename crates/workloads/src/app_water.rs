//! Water: N-body molecular dynamics (288 molecules in the paper).
//!
//! Each time step computes intra-molecular forces on owned molecules
//! (private streaming), then inter-molecular forces over the half matrix of
//! molecule pairs: positions are read-only shared within a step, while
//! force accumulation into the *other* molecule's record is a
//! lock-protected read-modify-write — the migratory pattern the paper
//! observes in Water. The step ends with the owners rewriting their
//! molecules' positions, invalidating every reader and seeding the next
//! step's coherence misses.

use dirext_trace::{BarrierId, Layout, ProgramBuilder, Workload, BLOCK_BYTES, WORD_BYTES};

use crate::Scale;

/// Builds the Water workload.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn water(procs: usize, scale: Scale) -> Workload {
    assert!(procs > 0);
    let molecules: u64 = scale.pick(192, 64, 16);
    let steps: u32 = scale.pick(3, 2, 1);

    let mut layout = Layout::new();
    // Per molecule: one position block and one force block, plus a lock.
    let pos = layout.alloc_page_aligned("positions", molecules * BLOCK_BYTES);
    let force = layout.alloc_page_aligned("forces", molecules * BLOCK_BYTES);
    let locks = layout.alloc_locks("molecule-locks", molecules);

    let per_proc = molecules.div_ceil(procs as u64);
    let owned = |p: usize| {
        let lo = (p as u64 * per_proc).min(molecules);
        let hi = ((p as u64 + 1) * per_proc).min(molecules);
        lo..hi
    };

    let mut bar = 0u32;
    let mut programs: Vec<_> = (0..procs).map(|_| ProgramBuilder::new()).collect();
    for _step in 0..steps {
        for (p, b) in programs.iter_mut().enumerate() {
            // Intra-molecular work on owned molecules.
            for i in owned(p) {
                b.compute(20);
                b.read_words(pos.at(i * BLOCK_BYTES), 3 * WORD_BYTES);
                b.write_words(force.at(i * BLOCK_BYTES), 2 * WORD_BYTES);
            }
            // Inter-molecular forces: each processor handles the pairs
            // (i, j) for its own i against the following half of the ring.
            for i in owned(p) {
                for d in 1..=(molecules / 2) {
                    let j = (i + d) % molecules;
                    b.compute(30);
                    b.read(pos.at(i * BLOCK_BYTES));
                    b.read(pos.at(j * BLOCK_BYTES));
                    // Accumulate into molecule j's record under its lock
                    // once per owned-i sweep chunk, not per pair, mirroring
                    // Water's per-molecule partial-sum update.
                    if d % 16 == 0 {
                        b.critical(locks.elem(j, BLOCK_BYTES), |b| {
                            b.rmw(force.at(j * BLOCK_BYTES));
                            b.rmw(force.at(j * BLOCK_BYTES).offset(WORD_BYTES));
                        });
                    }
                }
            }
        }
        for b in programs.iter_mut() {
            b.barrier(BarrierId(bar));
        }
        bar += 1;
        // Position update: owners rewrite their molecules.
        for (p, b) in programs.iter_mut().enumerate() {
            for i in owned(p) {
                b.compute(10);
                b.read(force.at(i * BLOCK_BYTES));
                b.write_words(pos.at(i * BLOCK_BYTES), 3 * WORD_BYTES);
            }
            b.barrier(BarrierId(bar));
        }
        bar += 1;
    }
    Workload::new(
        "Water",
        programs.into_iter().map(|mut b| b.build()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let w = water(4, Scale::Tiny);
        w.validate().unwrap();
        // 2 barriers per step, 1 step at tiny scale.
        assert_eq!(w.program(0).barrier_sequence().len(), 2);
        assert!(w.total_data_refs() > 100);
    }

    #[test]
    fn molecules_divide_unevenly_without_panic() {
        let w = water(5, Scale::Tiny); // 16 molecules over 5 procs
        w.validate().unwrap();
    }
}
