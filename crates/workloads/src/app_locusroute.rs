//! LocusRoute: standard-cell circuit router (bonus workload).
//!
//! The ICPP'93 prefetching paper the ISCA'94 paper builds on evaluated six
//! SPLASH programs; LocusRoute is the sixth, omitted from the ISCA'94
//! suite. It is included here as a bonus: wires are routed in parallel,
//! each route evaluation reading candidate paths through a shared *cost
//! array* and then bumping the cost of the chosen path's cells —
//! unsynchronized read-modify-writes with strong geographic locality.
//! Overlapping wire bounding boxes make cost cells migrate between the
//! processors routing nearby wires, while the per-wire task loop gives
//! short, bursty sequential scans along rows (partial spatial locality).

use dirext_kernel::Pcg32;
use dirext_trace::{BarrierId, Layout, ProgramBuilder, Workload, WORD_BYTES};

use crate::Scale;

/// Builds the LocusRoute workload.
///
/// # Panics
///
/// Panics if `procs` is zero.
pub fn locusroute(procs: usize, scale: Scale) -> Workload {
    assert!(procs > 0);
    let grid_w: u64 = scale.pick(256, 96, 24); // cost-array columns
    let grid_h: u64 = scale.pick(64, 24, 8); //  cost-array rows
    let wires: u64 = scale.pick(1200, 240, 40);
    let max_span: u32 = scale.pick(48, 24, 8);

    let mut layout = Layout::new();
    // One 4-byte cost word per cell, row-major.
    let cost = layout.alloc_page_aligned("cost-array", grid_w * grid_h * WORD_BYTES);
    let queue_lock = layout.alloc_locks("wire-queue-lock", 1);
    let queue_counter = layout.alloc("wire-counter", 32);

    let cell = |row: u64, colw: u64| cost.at((row * grid_w + colw) * WORD_BYTES);

    let programs = (0..procs)
        .map(|p| {
            let mut b = ProgramBuilder::new();
            let mut rng = Pcg32::with_stream(0x10C5, p as u64);
            for (idx, _wire) in (p as u64..wires).step_by(procs).enumerate() {
                // Claim a chunk of wires from the shared queue.
                if idx % 4 == 0 {
                    b.critical(queue_lock.base(), |b| {
                        b.rmw(queue_counter.base());
                    });
                }
                // The wire's bounding box.
                let span = u64::from(rng.range(4, max_span));
                let row = u64::from(rng.below((grid_h - 1) as u32));
                let col0 = u64::from(rng.below((grid_w - span) as u32 - 1));
                // Evaluate two candidate routes: read the cost along each
                // (horizontal scan on two adjacent rows).
                for r in [row, row + 1] {
                    b.compute(8);
                    let mut c = col0;
                    while c < col0 + span {
                        b.compute(2);
                        b.read(cell(r, c));
                        c += 2;
                    }
                }
                // Commit the cheaper route: bump the cost of its cells
                // (unsynchronized rmw, exactly like the original).
                let chosen = row + u64::from(rng.below(2));
                let mut c = col0;
                while c < col0 + span {
                    b.compute(3);
                    b.rmw(cell(chosen, c));
                    c += 2;
                }
            }
            b.barrier(BarrierId(0));
            b.build()
        })
        .collect();
    Workload::new("LocusRoute", programs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let w = locusroute(4, Scale::Tiny);
        w.validate().unwrap();
        assert!(w.total_data_refs() > 100);
        assert_eq!(w.name(), "LocusRoute");
    }

    #[test]
    fn deterministic() {
        let a = locusroute(8, Scale::Tiny);
        let b = locusroute(8, Scale::Tiny);
        for p in 0..8 {
            assert_eq!(a.program(p), b.program(p));
        }
    }

    #[test]
    fn wires_are_balanced() {
        let w = locusroute(4, Scale::Small);
        let refs: Vec<usize> = (0..4).map(|p| w.program(p).data_refs()).collect();
        let max = *refs.iter().max().unwrap() as f64;
        let min = *refs.iter().min().unwrap() as f64;
        assert!(min / max > 0.6, "{refs:?}");
    }
}
