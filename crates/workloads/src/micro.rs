//! Micro-workloads: small targeted sharing patterns.
//!
//! These drive the integration tests, the examples, and the ablation
//! benches; each isolates one behaviour (sequential streaming, migratory
//! ping-pong, producer-consumer, false sharing, lock contention).

use dirext_trace::{Addr, BarrierId, Layout, Program, ProgramBuilder, Workload, BLOCK_BYTES};

/// One processor streams sequentially over `blocks` cache blocks; the rest
/// idle. Pure cold misses with maximal spatial locality — adaptive
/// sequential prefetching's best case.
pub fn stream(procs: usize, blocks: u64, writes: bool) -> Workload {
    let mut layout = Layout::new();
    let arr = layout.alloc_page_aligned("stream", blocks * BLOCK_BYTES);
    let mut programs = vec![Program::new(); procs];
    let mut b = ProgramBuilder::new().with_pace(2);
    for i in 0..blocks {
        let a = arr.at(i * BLOCK_BYTES);
        b.read(a);
        if writes {
            b.write(a);
        }
    }
    programs[0] = b.build();
    Workload::new("stream", programs)
}

/// `active` processors take turns incrementing a shared counter inside a
/// critical section — the canonical migratory pattern ("x := x + 1" behind
/// a lock).
pub fn migratory_pingpong(procs: usize, active: usize, rounds: usize) -> Workload {
    let mut layout = Layout::new();
    let counter = layout.alloc("counter", BLOCK_BYTES);
    let lock = layout.alloc_locks("lock", 1);
    let programs = (0..procs)
        .map(|i| {
            let mut b = ProgramBuilder::new();
            if i < active {
                for _ in 0..rounds {
                    b.critical(lock.base(), |b| {
                        b.rmw(counter.base());
                    });
                    b.compute(20);
                }
            }
            b.build()
        })
        .collect();
    Workload::new("migratory-pingpong", programs)
}

/// Processor 0 produces a region of `blocks` blocks each round; everyone
/// consumes it after a barrier. Pure coherence misses under
/// write-invalidate; competitive update's best case.
pub fn producer_consumer(procs: usize, blocks: u64, rounds: u32) -> Workload {
    let mut layout = Layout::new();
    let data = layout.alloc_page_aligned("data", blocks * BLOCK_BYTES);
    let programs = (0..procs)
        .map(|i| {
            let mut b = ProgramBuilder::new();
            for r in 0..rounds {
                if i == 0 {
                    for blk in 0..blocks {
                        b.compute(2);
                        b.write(data.at(blk * BLOCK_BYTES));
                    }
                }
                b.barrier(BarrierId(2 * r));
                for blk in 0..blocks {
                    b.compute(2);
                    b.read(data.at(blk * BLOCK_BYTES));
                }
                b.barrier(BarrierId(2 * r + 1));
            }
            b.build()
        })
        .collect();
    Workload::new("producer-consumer", programs)
}

/// Every processor updates its own word of the *same* cache block each
/// round: false sharing. Larger block sizes and naive prefetching make
/// this worse; the per-word dirty bits of the write cache make it cheap.
pub fn false_sharing(procs: usize, rounds: u32) -> Workload {
    assert!(procs <= 8, "one word per processor in a 32-byte block");
    let mut layout = Layout::new();
    let block = layout.alloc("contended", BLOCK_BYTES);
    let programs = (0..procs)
        .map(|i| {
            let mut b = ProgramBuilder::new();
            for _ in 0..rounds {
                b.compute(8);
                b.rmw(Addr::new(block.base().byte() + i as u64 * 4));
            }
            b.build()
        })
        .collect();
    Workload::new("false-sharing", programs)
}

/// All processors hammer one lock with a tiny critical section: exposes
/// the queue-based lock hand-off and acquire-stall accounting.
pub fn lock_contention(procs: usize, rounds: usize) -> Workload {
    migratory_pingpong(procs, procs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_micro_workloads_validate() {
        for w in [
            stream(4, 32, true),
            migratory_pingpong(4, 2, 5),
            producer_consumer(4, 2, 3),
            false_sharing(4, 5),
            lock_contention(3, 4),
        ] {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        }
    }

    #[test]
    fn false_sharing_uses_distinct_words_of_one_block() {
        let w = false_sharing(8, 1);
        let addrs: Vec<Addr> = (0..8)
            .filter_map(|p| {
                w.program(p).events().iter().find_map(|e| match e {
                    dirext_trace::MemEvent::Read(a) => Some(*a),
                    _ => None,
                })
            })
            .collect();
        assert_eq!(addrs.len(), 8);
        let blocks: std::collections::HashSet<_> = addrs.iter().map(|a| a.block()).collect();
        assert_eq!(blocks.len(), 1, "all words in one block");
        let words: std::collections::HashSet<_> = addrs.iter().map(|a| a.word_in_block()).collect();
        assert_eq!(words.len(), 8, "each proc its own word");
    }

    #[test]
    #[should_panic(expected = "one word per processor")]
    fn false_sharing_caps_procs() {
        let _ = false_sharing(9, 1);
    }
}
