//! Problem-size scaling.

/// Problem scale for the workload generators.
///
/// The paper's inputs (10 K particles, bcsstk14, 288 molecules, 200×200,
/// 128×128) produce reference streams that take minutes to simulate per
/// protocol; the full evaluation sweeps a hundred-plus configurations.
/// `Paper` keeps the papers' *shapes* at roughly a million shared
/// references per application; `Small` targets integration tests; `Tiny`
/// keeps CI runs in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Full experiment scale (used by the benches and the CLI by default).
    #[default]
    Paper,
    /// Integration-test scale.
    Small,
    /// Smoke-test scale.
    Tiny,
}

impl Scale {
    /// Picks one of three values by scale.
    pub fn pick<T: Copy>(self, paper: T, small: T, tiny: T) -> T {
        match self {
            Scale::Paper => paper,
            Scale::Small => small,
            Scale::Tiny => tiny,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Paper => write!(f, "paper"),
            Scale::Small => write!(f, "small"),
            Scale::Tiny => write!(f, "tiny"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Paper.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 3);
        assert_eq!(Scale::default(), Scale::Paper);
    }
}
