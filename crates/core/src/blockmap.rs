//! Dense block-indexed storage for per-block simulator state.
//!
//! Every memory reference the simulator processes touches several
//! per-block tables: the home directory entry, the SLC line, the memory
//! version image, the global write counter, the miss classifier's history.
//! Keyed by `HashMap<BlockAddr, _>` each of those lookups pays a SipHash
//! over the key plus a probe of a randomly-ordered table — the dominant
//! cost of the end-to-end hot path once the event queue itself is cheap,
//! and a source of nondeterministic iteration order to boot.
//!
//! [`BlockMap`] replaces them with a paged dense arena indexed directly by
//! the [`BlockAddr`] block index, mirroring how directory state is laid
//! out in real CC-NUMA hardware (a flat RAM next to each memory bank,
//! addressed by block frame). A lookup is two array indexings; iteration
//! is in ascending block order, so every audit and diagnostic derived from
//! it is deterministic across processes.
//!
//! Pages hold [`BLOCKS_PER_PAGE`] = 128 slots — exactly one simulated 4-KB
//! page of 32-byte blocks. Under the round-robin page placement the
//! simulator uses, the blocks homed at one node fill *whole* pages, so a
//! per-home map allocates pages only for its own fraction of the address
//! space and the arena wastes no memory on other homes' blocks. Each page
//! carries an occupancy bitmap (two `u64` words) that drives iteration and
//! keeps "absent entry" distinct from "default entry": an absent directory
//! entry still means CLEAN, exactly as it did for the hash map.

use std::fmt;

use dirext_trace::{BlockAddr, BLOCK_BYTES, PAGE_BYTES};

/// Slots per page: one simulated 4-KB page of 32-byte blocks.
pub const BLOCKS_PER_PAGE: usize = (PAGE_BYTES / BLOCK_BYTES) as usize;
const OCC_WORDS: usize = BLOCKS_PER_PAGE / 64;

#[derive(Clone)]
struct Page<T> {
    /// Occupancy bitmap; bit `i` set iff `slots[i]` is `Some`.
    occ: [u64; OCC_WORDS],
    slots: [Option<T>; BLOCKS_PER_PAGE],
}

impl<T> Page<T> {
    fn empty() -> Box<Self> {
        Box::new(Page {
            occ: [0; OCC_WORDS],
            slots: std::array::from_fn(|_| None),
        })
    }
}

/// A dense map from [`BlockAddr`] to `T`: contiguous pages of slots with an
/// occupancy bitmap, allocated lazily as the workload's address range is
/// touched.
///
/// Compared to `HashMap<BlockAddr, T>`:
///
/// * `get`/`get_mut`/insert are straight array indexing — no hashing;
/// * iteration ([`BlockMap::iter`]) is in ascending block order, and
///   therefore identical across runs and processes;
/// * memory is proportional to the number of *touched pages*, not entries,
///   which matches the simulator's access patterns (workload layouts are
///   contiguous regions; homes own whole pages).
///
/// # Example
///
/// ```
/// use dirext_core::blockmap::BlockMap;
/// use dirext_trace::BlockAddr;
///
/// let mut m: BlockMap<u64> = BlockMap::new();
/// let b = BlockAddr::from_index(1000);
/// assert!(m.insert(b, 7).is_none());
/// assert_eq!(m.get(b), Some(&7));
/// *m.get_or_insert_with(b, || 0) += 1;
/// assert_eq!(m.remove(b), Some(8));
/// assert!(m.is_empty());
/// ```
#[derive(Clone)]
pub struct BlockMap<T> {
    pages: Vec<Option<Box<Page<T>>>>,
    len: usize,
}

impl<T> Default for BlockMap<T> {
    fn default() -> Self {
        BlockMap::new()
    }
}

impl<T> BlockMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        BlockMap {
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map with the page table sized for block indices up
    /// to `max_block` (from the workload layout's known address range), so
    /// the page vector never reallocates mid-run. Pages themselves are
    /// still allocated lazily.
    pub fn with_max_block(max_block: u64) -> Self {
        let mut m = BlockMap::new();
        m.reserve_to(max_block);
        m
    }

    /// Grows the page table to cover block indices up to `max_block`.
    pub fn reserve_to(&mut self, max_block: u64) {
        let pages = max_block as usize / BLOCKS_PER_PAGE + 1;
        if pages > self.pages.len() {
            self.pages.resize_with(pages, || None);
        }
    }

    #[inline]
    fn split(block: BlockAddr) -> (usize, usize) {
        let idx = block.index() as usize;
        (idx / BLOCKS_PER_PAGE, idx % BLOCKS_PER_PAGE)
    }

    /// The value for `block`, if present.
    #[inline]
    pub fn get(&self, block: BlockAddr) -> Option<&T> {
        let (p, s) = Self::split(block);
        self.pages.get(p)?.as_deref()?.slots[s].as_ref()
    }

    /// Mutable access to the value for `block`, if present.
    #[inline]
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let (p, s) = Self::split(block);
        self.pages.get_mut(p)?.as_deref_mut()?.slots[s].as_mut()
    }

    /// Whether `block` has a value.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.get(block).is_some()
    }

    /// The value for `block`, inserting `make()` first if absent (the
    /// `entry().or_insert_with()` of the hash map this replaces).
    #[inline]
    pub fn get_or_insert_with(&mut self, block: BlockAddr, make: impl FnOnce() -> T) -> &mut T {
        let (p, s) = Self::split(block);
        if p >= self.pages.len() {
            self.pages.resize_with(p + 1, || None);
        }
        let page = self.pages[p].get_or_insert_with(Page::empty);
        if page.slots[s].is_none() {
            page.slots[s] = Some(make());
            page.occ[s / 64] |= 1 << (s % 64);
            self.len += 1;
        }
        page.slots[s].as_mut().expect("slot just ensured")
    }

    /// Inserts a value, returning the previous one if any.
    pub fn insert(&mut self, block: BlockAddr, value: T) -> Option<T> {
        let (p, s) = Self::split(block);
        if p >= self.pages.len() {
            self.pages.resize_with(p + 1, || None);
        }
        let page = self.pages[p].get_or_insert_with(Page::empty);
        let old = page.slots[s].replace(value);
        if old.is_none() {
            page.occ[s / 64] |= 1 << (s % 64);
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `block`.
    pub fn remove(&mut self, block: BlockAddr) -> Option<T> {
        let (p, s) = Self::split(block);
        let page = self.pages.get_mut(p)?.as_deref_mut()?;
        let old = page.slots[s].take();
        if old.is_some() {
            page.occ[s / 64] &= !(1 << (s % 64));
            self.len -= 1;
        }
        old
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(block, value)` pairs in ascending block order — the
    /// deterministic-iteration guarantee audits and diagnostics rely on.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(p, page)| Some((p, page.as_deref()?)))
            .flat_map(|(p, page)| {
                (0..OCC_WORDS).flat_map(move |w| {
                    BitIter(page.occ[w]).map(move |b| {
                        let s = w * 64 + b as usize;
                        let block = BlockAddr::from_index((p * BLOCKS_PER_PAGE + s) as u64);
                        (block, page.slots[s].as_ref().expect("occupancy bit set"))
                    })
                })
            })
    }

    /// Iterates the occupied block addresses in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.iter().map(|(b, _)| b)
    }

    /// Iterates the values in ascending block order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<T: fmt::Debug> fmt::Debug for BlockMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keys print in their `blk0x..` Display form: the map's Debug output
        // feeds invariant diagnostics, where `BlockAddr(300)` would force
        // readers to convert to the hex block numbers used everywhere else.
        struct Key(BlockAddr);
        impl fmt::Debug for Key {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        f.debug_map()
            .entries(self.iter().map(|(k, v)| (Key(k), v)))
            .finish()
    }
}

/// Iterator over the set bit positions of a word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: BlockMap<String> = BlockMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(b(5), "five".into()), None);
        assert_eq!(m.insert(b(5), "FIVE".into()), Some("five".into()));
        assert_eq!(m.get(b(5)).map(String::as_str), Some("FIVE"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(b(5)), Some("FIVE".into()));
        assert_eq!(m.remove(b(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn get_or_insert_with_behaves_like_entry() {
        let mut m: BlockMap<u64> = BlockMap::new();
        *m.get_or_insert_with(b(130), || 0) += 1;
        *m.get_or_insert_with(b(130), || 100) += 1;
        assert_eq!(m.get(b(130)), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn absent_blocks_and_pages_read_as_none() {
        let m: BlockMap<u8> = BlockMap::new();
        assert_eq!(m.get(b(0)), None);
        assert_eq!(m.get(b(1 << 20)), None);
        let mut m = m;
        m.insert(b(3), 1);
        assert_eq!(m.get(b(4)), None, "same page, different slot");
        assert_eq!(m.get(b(3 + BLOCKS_PER_PAGE as u64)), None, "next page");
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut m: BlockMap<u64> = BlockMap::new();
        // Deliberately inserted out of order, across pages.
        for i in [900u64, 3, 127, 128, 64, 5000, 0] {
            m.insert(b(i), i * 2);
        }
        let got: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k.index(), *v)).collect();
        assert_eq!(
            got,
            vec![
                (0, 0),
                (3, 6),
                (64, 128),
                (127, 254),
                (128, 256),
                (900, 1800),
                (5000, 10000)
            ]
        );
        assert_eq!(m.keys().count(), 7);
        assert_eq!(m.values().sum::<u64>(), 12444);
    }

    #[test]
    fn remove_clears_occupancy_for_iteration() {
        let mut m: BlockMap<u8> = BlockMap::new();
        m.insert(b(10), 1);
        m.insert(b(11), 2);
        m.remove(b(10));
        assert_eq!(m.iter().map(|(k, _)| k.index()).collect::<Vec<_>>(), [11]);
    }

    #[test]
    fn reserve_does_not_create_entries() {
        let mut m: BlockMap<u8> = BlockMap::with_max_block(100_000);
        assert!(m.is_empty());
        m.reserve_to(10); // shrinking reserve is a no-op
        m.insert(b(99_999), 7);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn debug_renders_as_a_map() {
        let mut m: BlockMap<u8> = BlockMap::new();
        m.insert(b(1), 9);
        assert_eq!(format!("{m:?}"), "{blk0x1: 9}");
    }
}
