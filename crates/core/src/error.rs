//! Structured protocol errors.
//!
//! The protocol controllers never panic on malformed message sequences;
//! they either recognize a message as a *stale duplicate* (dropped and
//! counted) or return a [`ProtocolError`] describing exactly which
//! transition was impossible. The simulator threads these through its own
//! error type so a corrupted run fails with a diagnosable report instead
//! of an opaque abort.

use std::fmt;

use dirext_trace::{BlockAddr, NodeId};

use crate::msg::MsgKind;

/// A protocol-level failure: a message sequence with no legal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A message arrived at a controller that has no transition for it in
    /// the current state (and it is not a recognizable duplicate).
    UnexpectedMessage {
        /// The node the message came from.
        src: NodeId,
        /// The block the message is about.
        block: BlockAddr,
        /// The offending message kind.
        kind: MsgKind,
        /// Which controller/path rejected it.
        context: &'static str,
    },
    /// A NACKed request was retried past its backoff budget without ever
    /// being serviced — the home-side condition it was waiting for (usually
    /// an in-flight writeback) never materialized.
    RetryBudgetExhausted {
        /// The requesting node.
        node: NodeId,
        /// The block the request was for.
        block: BlockAddr,
        /// Retries performed before giving up.
        attempts: u32,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnexpectedMessage {
                src,
                block,
                kind,
                context,
            } => write!(
                f,
                "unexpected {kind:?} from {src:?} for {block:?} ({context})"
            ),
            ProtocolError::RetryBudgetExhausted {
                node,
                block,
                attempts,
            } => write!(
                f,
                "{node:?} exhausted its retry budget for {block:?} after {attempts} NACKed attempts"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}
