//! Memory-level synchronization: queue-based locks and barriers.
//!
//! "Synchronization is based on a queue-based lock mechanism at memory
//! similar to the one implemented in DASH, with a single lock variable per
//! memory block." Lock and barrier variables bypass the caches entirely:
//! the home memory module serializes acquires, queues waiters, and grants
//! the lock directly to the next waiter on a release — so lock hand-offs
//! cost one network message instead of an invalidation storm.

use std::collections::{HashMap, VecDeque};

use dirext_trace::{BlockAddr, NodeId};

/// The queue-based lock controller for the lock variables homed at one node.
///
/// # Example
///
/// ```
/// use dirext_core::sync::LockCtrl;
/// use dirext_trace::{BlockAddr, NodeId};
///
/// let mut locks = LockCtrl::new();
/// let l = BlockAddr::from_index(100);
/// assert!(locks.acquire(NodeId(0), l));        // free: granted at once
/// assert!(!locks.acquire(NodeId(1), l));       // held: queued
/// assert_eq!(locks.release(NodeId(0), l), Some(NodeId(1)));
/// assert_eq!(locks.release(NodeId(1), l), None);
/// ```
#[derive(Debug, Default)]
pub struct LockCtrl {
    locks: HashMap<BlockAddr, LockState>,
    /// Longest queue observed (contention indicator).
    max_queue: usize,
    /// Total acquires serviced.
    acquires: u64,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<NodeId>,
    queue: VecDeque<NodeId>,
}

impl LockCtrl {
    /// Creates a controller with no locks held.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an acquire request from `node`. Returns `true` if the lock
    /// was free and is granted immediately; otherwise the node is queued.
    pub fn acquire(&mut self, node: NodeId, lock: BlockAddr) -> bool {
        self.acquires += 1;
        let st = self.locks.entry(lock).or_default();
        if st.holder.is_none() {
            st.holder = Some(node);
            true
        } else {
            st.queue.push_back(node);
            self.max_queue = self.max_queue.max(st.queue.len());
            false
        }
    }

    /// Processes a release from `node`. Returns the next waiter to grant
    /// the lock to, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `node` does not hold the lock (the
    /// workload validator rejects such programs up front).
    pub fn release(&mut self, node: NodeId, lock: BlockAddr) -> Option<NodeId> {
        let st = self.locks.entry(lock).or_default();
        debug_assert_eq!(st.holder, Some(node), "release by non-holder");
        st.holder = st.queue.pop_front();
        st.holder
    }

    /// Whether any lock is currently held or waited on.
    pub fn any_held(&self) -> bool {
        self.locks
            .values()
            .any(|s| s.holder.is_some() || !s.queue.is_empty())
    }

    /// Longest waiter queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Total acquire requests serviced.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }
}

/// The barrier controller at one node (barrier episodes are homed by id).
///
/// Arrivals are counted; when the last of `participants` arrives, the home
/// broadcasts the release (the machine layer sends the messages).
#[derive(Debug)]
pub struct BarrierCtrl {
    participants: u32,
    arrived: HashMap<u32, u32>,
    episodes: u64,
}

impl BarrierCtrl {
    /// Creates a controller for barriers of `participants` processors.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: u32) -> Self {
        assert!(participants > 0, "a barrier needs participants");
        BarrierCtrl {
            participants,
            arrived: HashMap::new(),
            episodes: 0,
        }
    }

    /// Records an arrival at barrier `id`. Returns `true` when this arrival
    /// was the last one (the caller must broadcast the release).
    pub fn arrive(&mut self, id: u32) -> bool {
        let count = self.arrived.entry(id).or_insert(0);
        *count += 1;
        debug_assert!(
            *count <= self.participants,
            "more arrivals than participants"
        );
        if *count == self.participants {
            self.arrived.remove(&id);
            self.episodes += 1;
            true
        } else {
            false
        }
    }

    /// Whether any barrier has partial arrivals.
    pub fn any_waiting(&self) -> bool {
        !self.arrived.is_empty()
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u8) -> NodeId {
        NodeId(i)
    }

    fn l(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn lock_hand_off_order_is_fifo() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1)));
        assert!(!locks.acquire(n(1), l(1)));
        assert!(!locks.acquire(n(2), l(1)));
        assert_eq!(locks.release(n(0), l(1)), Some(n(1)));
        assert_eq!(locks.release(n(1), l(1)), Some(n(2)));
        assert_eq!(locks.release(n(2), l(1)), None);
        assert!(!locks.any_held());
        assert_eq!(locks.max_queue(), 2);
        assert_eq!(locks.acquires(), 3);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1)));
        assert!(locks.acquire(n(1), l(2)));
        assert_eq!(locks.release(n(0), l(1)), None);
        assert!(locks.any_held());
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut bar = BarrierCtrl::new(4);
        assert!(!bar.arrive(0));
        assert!(!bar.arrive(0));
        assert!(!bar.arrive(0));
        assert!(bar.any_waiting());
        assert!(bar.arrive(0));
        assert!(!bar.any_waiting());
        assert_eq!(bar.episodes(), 1);
    }

    #[test]
    fn barrier_episodes_are_independent() {
        let mut bar = BarrierCtrl::new(2);
        assert!(!bar.arrive(0));
        assert!(!bar.arrive(1)); // a different episode
        assert!(bar.arrive(0));
        assert!(bar.arrive(1));
        assert_eq!(bar.episodes(), 2);
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    #[cfg(debug_assertions)]
    fn release_by_non_holder_panics() {
        let mut locks = LockCtrl::new();
        locks.acquire(n(0), l(1));
        let _ = locks.release(n(1), l(1));
    }
}
