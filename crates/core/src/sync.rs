//! Memory-level synchronization: queue-based locks and barriers.
//!
//! "Synchronization is based on a queue-based lock mechanism at memory
//! similar to the one implemented in DASH, with a single lock variable per
//! memory block." Lock and barrier variables bypass the caches entirely:
//! the home memory module serializes acquires, queues waiters, and grants
//! the lock directly to the next waiter on a release — so lock hand-offs
//! cost one network message instead of an invalidation storm.

use std::collections::{HashMap, VecDeque};

use dirext_trace::{BlockAddr, NodeId};

/// The queue-based lock controller for the lock variables homed at one node.
///
/// Every acquire/release carries the requester's monotone *acquire
/// sequence number* (the machine layer threads it through the sync
/// messages' version field). Sequencing is what makes the controller safe
/// under message duplication without breaking a legitimate protocol race:
/// under RC a node's *next* acquire can reach the home before its own
/// gated release does, so an acquire from the current holder must queue —
/// but a *replayed* acquire (same sequence) must not, or the node ends up
/// queued behind itself and the grant hand-off wedges.
///
/// # Example
///
/// ```
/// use dirext_core::sync::LockCtrl;
/// use dirext_trace::{BlockAddr, NodeId};
///
/// let mut locks = LockCtrl::new();
/// let l = BlockAddr::from_index(100);
/// assert!(locks.acquire(NodeId(0), l, 1));        // free: granted at once
/// assert!(!locks.acquire(NodeId(1), l, 1));       // held: queued
/// assert_eq!(locks.release(NodeId(0), l, 1), Some((NodeId(1), 1)));
/// assert_eq!(locks.release(NodeId(1), l, 1), None);
/// ```
#[derive(Debug, Default)]
pub struct LockCtrl {
    locks: HashMap<BlockAddr, LockState>,
    /// Longest queue observed (contention indicator).
    max_queue: usize,
    /// Total acquires serviced.
    acquires: u64,
    /// Duplicate acquires/releases recognized and ignored.
    stale_ops: u64,
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holder and the sequence number of its granted acquire.
    holder: Option<(NodeId, u64)>,
    queue: VecDeque<(NodeId, u64)>,
    /// Highest acquire sequence processed per node (duplicate filter).
    seen: HashMap<NodeId, u64>,
}

impl LockCtrl {
    /// Creates a controller with no locks held.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes acquire number `seq` from `node`. Returns `true` if the
    /// lock was free and is granted immediately; otherwise the node is
    /// queued (the grant is sent on a later release).
    ///
    /// A replayed acquire — `seq` not above the highest already processed
    /// for this node — is ignored and counted, so duplicated messages can
    /// neither double-queue a node nor queue it behind itself.
    pub fn acquire(&mut self, node: NodeId, lock: BlockAddr, seq: u64) -> bool {
        let st = self.locks.entry(lock).or_default();
        let last = st.seen.entry(node).or_insert(0);
        if seq <= *last {
            self.stale_ops += 1;
            return false;
        }
        *last = seq;
        self.acquires += 1;
        if st.holder.is_none() {
            st.holder = Some((node, seq));
            true
        } else {
            st.queue.push_back((node, seq));
            self.max_queue = self.max_queue.max(st.queue.len());
            false
        }
    }

    /// Processes the release of acquire number `seq` by `node`. Returns the
    /// next waiter (and its acquire sequence) to grant the lock to, if any.
    ///
    /// A release that does not match the current holder *and* its granted
    /// sequence is a replayed message (the original already handed the lock
    /// onward — possibly back to the same node under a newer sequence): it
    /// is ignored and counted, never applied to the current holder.
    pub fn release(&mut self, node: NodeId, lock: BlockAddr, seq: u64) -> Option<(NodeId, u64)> {
        let st = self.locks.entry(lock).or_default();
        if st.holder != Some((node, seq)) {
            self.stale_ops += 1;
            return None;
        }
        st.holder = st.queue.pop_front();
        st.holder
    }

    /// Whether any lock is currently held or waited on.
    pub fn any_held(&self) -> bool {
        self.locks
            .values()
            .any(|s| s.holder.is_some() || !s.queue.is_empty())
    }

    /// The locks currently held: `(lock, holder, queue length)` — the raw
    /// material of the watchdog's diagnostic snapshot.
    pub fn held(&self) -> Vec<(BlockAddr, NodeId, usize)> {
        let mut v: Vec<_> = self
            .locks
            .iter()
            .filter_map(|(l, s)| s.holder.map(|(h, _)| (*l, h, s.queue.len())))
            .collect();
        v.sort_by_key(|(l, _, _)| *l);
        v
    }

    /// The current holder of `lock` and its granted acquire sequence.
    pub fn holder(&self, lock: BlockAddr) -> Option<(NodeId, u64)> {
        self.locks.get(&lock).and_then(|s| s.holder)
    }

    /// Crash recovery: expunges a dead node from every lock homed here.
    ///
    /// Queued acquires from the node are discarded, and any lock it held is
    /// handed to the next live waiter. Returns the grants to send, sorted
    /// by lock address — iteration must not depend on hash order, or the
    /// recovery path would break the simulator's determinism contract.
    pub fn purge_node(&mut self, node: NodeId) -> Vec<(BlockAddr, NodeId, u64)> {
        let mut addrs: Vec<BlockAddr> = self.locks.keys().copied().collect();
        addrs.sort();
        let mut grants = Vec::new();
        for lock in addrs {
            let st = self.locks.get_mut(&lock).expect("key just collected");
            st.queue.retain(|(q, _)| *q != node);
            while matches!(st.holder, Some((h, _)) if h == node) {
                st.holder = st.queue.pop_front();
                if let Some((next, seq)) = st.holder {
                    grants.push((lock, next, seq));
                }
            }
        }
        grants
    }

    /// Longest waiter queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Total acquire requests serviced.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// Duplicate acquires/releases ignored.
    pub fn stale_ops(&self) -> u64 {
        self.stale_ops
    }
}

/// The barrier controller at one node (barrier episodes are homed by id).
///
/// Arrivals are tracked per node in a bitmask (one `u64` word per 64
/// nodes, so machines beyond 64 processors are supported), so a replayed
/// arrival message is recognized and ignored instead of releasing the
/// barrier early. When the last of `participants` distinct nodes arrives,
/// the home broadcasts the release (the machine layer sends the messages).
#[derive(Debug)]
pub struct BarrierCtrl {
    participants: u32,
    arrived: HashMap<u32, Vec<u64>>,
    /// Episode ids already released. An id names one episode (ids are not
    /// reused), so an arrival for a completed id is a replayed message and
    /// must not re-open the episode with a phantom partial mask.
    done: std::collections::HashSet<u32>,
    episodes: u64,
    stale_ops: u64,
}

impl BarrierCtrl {
    /// Creates a controller for barriers of `participants` processors.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero or exceeds [`crate::sharer::MAX_NODES`].
    pub fn new(participants: u32) -> Self {
        assert!(participants > 0, "a barrier needs participants");
        assert!(
            participants as usize <= crate::sharer::MAX_NODES,
            "arrival mask holds at most {} nodes",
            crate::sharer::MAX_NODES
        );
        BarrierCtrl {
            participants,
            arrived: HashMap::new(),
            done: std::collections::HashSet::new(),
            episodes: 0,
            stale_ops: 0,
        }
    }

    /// Records `node`'s arrival at barrier `id`. Returns `true` when this
    /// arrival was the last one (the caller must broadcast the release).
    /// A duplicate arrival from a node already recorded is ignored.
    pub fn arrive(&mut self, node: NodeId, id: u32) -> bool {
        if self.done.contains(&id) {
            self.stale_ops += 1;
            return false;
        }
        let words = (self.participants as usize).div_ceil(64);
        let mask = self.arrived.entry(id).or_insert_with(|| vec![0u64; words]);
        let (word, bit) = (node.idx() / 64, 1u64 << (node.idx() % 64));
        if mask[word] & bit != 0 {
            self.stale_ops += 1;
            return false;
        }
        mask[word] |= bit;
        if mask.iter().map(|w| w.count_ones()).sum::<u32>() == self.participants {
            self.arrived.remove(&id);
            self.done.insert(id);
            self.episodes += 1;
            true
        } else {
            false
        }
    }

    /// Whether any barrier has partial arrivals.
    pub fn any_waiting(&self) -> bool {
        !self.arrived.is_empty()
    }

    /// Whether episode `id` has already released (crash recovery uses this
    /// to decide if a recovering node slept through its barrier).
    pub fn is_done(&self, id: u32) -> bool {
        self.done.contains(&id)
    }

    /// Whether `node`'s arrival at episode `id` has been counted (and the
    /// episode has not yet released). Crash recovery uses this to decide
    /// whether a re-admitted node must re-execute its barrier arrival or
    /// just wait for the release its previous incarnation already earned.
    pub fn has_arrived(&self, node: NodeId, id: u32) -> bool {
        self.arrived.get(&id).is_some_and(|mask| {
            mask.get(node.idx() / 64)
                .is_some_and(|w| w & (1u64 << (node.idx() % 64)) != 0)
        })
    }

    /// Barriers with partial arrivals: `(id, arrival bitmask)` — the raw
    /// material of the watchdog's diagnostic snapshot. On machines larger
    /// than 64 nodes only the low 64 arrival bits are reported.
    pub fn waiting(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<_> = self.arrived.iter().map(|(id, m)| (*id, m[0])).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Duplicate arrivals ignored.
    pub fn stale_ops(&self) -> u64 {
        self.stale_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn l(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn lock_hand_off_order_is_fifo() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        assert!(!locks.acquire(n(1), l(1), 1));
        assert!(!locks.acquire(n(2), l(1), 1));
        assert_eq!(locks.release(n(0), l(1), 1), Some((n(1), 1)));
        assert_eq!(locks.release(n(1), l(1), 1), Some((n(2), 1)));
        assert_eq!(locks.release(n(2), l(1), 1), None);
        assert!(!locks.any_held());
        assert_eq!(locks.max_queue(), 2);
        assert_eq!(locks.acquires(), 3);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        assert!(locks.acquire(n(1), l(2), 1));
        assert_eq!(locks.release(n(0), l(1), 1), None);
        assert!(locks.any_held());
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut bar = BarrierCtrl::new(4);
        assert!(!bar.arrive(n(0), 0));
        assert!(!bar.arrive(n(1), 0));
        assert!(!bar.arrive(n(2), 0));
        assert!(bar.any_waiting());
        assert_eq!(bar.waiting(), vec![(0, 0b111)]);
        assert!(bar.arrive(n(3), 0));
        assert!(!bar.any_waiting());
        assert_eq!(bar.episodes(), 1);
    }

    #[test]
    fn barrier_scales_past_64_participants() {
        let mut bar = BarrierCtrl::new(256);
        for i in 0..255 {
            assert!(!bar.arrive(n(i), 0), "node {i} must not release early");
        }
        // A replay from a high-word node is still recognized.
        assert!(!bar.arrive(n(200), 0));
        assert_eq!(bar.stale_ops(), 1);
        assert!(bar.arrive(n(255), 0));
        assert_eq!(bar.episodes(), 1);
    }

    #[test]
    fn barrier_episodes_are_independent() {
        let mut bar = BarrierCtrl::new(2);
        assert!(!bar.arrive(n(0), 0));
        assert!(!bar.arrive(n(0), 1)); // a different episode
        assert!(bar.arrive(n(1), 0));
        assert!(bar.arrive(n(1), 1));
        assert_eq!(bar.episodes(), 2);
    }

    #[test]
    fn duplicate_barrier_arrival_is_ignored() {
        let mut bar = BarrierCtrl::new(2);
        assert!(!bar.arrive(n(0), 0));
        // A replayed copy of node 0's arrival must not release the barrier.
        assert!(!bar.arrive(n(0), 0));
        assert_eq!(bar.stale_ops(), 1);
        assert!(bar.arrive(n(1), 0));
        assert_eq!(bar.episodes(), 1);
        // A replayed arrival after the release must not re-open the episode.
        assert!(!bar.arrive(n(1), 0));
        assert!(!bar.any_waiting());
        assert_eq!(bar.stale_ops(), 2);
        assert_eq!(bar.episodes(), 1);
    }

    #[test]
    fn release_by_non_holder_is_ignored() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        assert_eq!(locks.release(n(1), l(1), 1), None);
        assert_eq!(locks.stale_ops(), 1);
        // Node 0 still holds the lock.
        assert_eq!(locks.held(), vec![(l(1), n(0), 0)]);
        assert_eq!(locks.release(n(0), l(1), 1), None);
        assert!(!locks.any_held());
    }

    #[test]
    fn duplicate_acquire_is_ignored() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        // Replayed copy of the granted acquire: no self-queueing.
        assert!(!locks.acquire(n(0), l(1), 1));
        assert!(!locks.acquire(n(1), l(1), 7));
        // Replayed acquire from a queued waiter: not queued twice.
        assert!(!locks.acquire(n(1), l(1), 7));
        assert_eq!(locks.stale_ops(), 2);
        assert_eq!(locks.acquires(), 2);
        assert_eq!(locks.release(n(0), l(1), 1), Some((n(1), 7)));
        assert_eq!(locks.release(n(1), l(1), 7), None);
        assert!(!locks.any_held());
    }

    #[test]
    fn purge_hands_dead_holders_locks_to_live_waiters() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        assert!(!locks.acquire(n(1), l(1), 1));
        assert!(!locks.acquire(n(2), l(1), 1));
        assert!(locks.acquire(n(0), l(2), 1)); // held, nobody queued
        assert!(locks.acquire(n(3), l(3), 1)); // unrelated lock
        // Node 0 crashes: lock 1 goes to node 1, lock 2 frees, lock 3 stays.
        let grants = locks.purge_node(n(0));
        assert_eq!(grants, vec![(l(1), n(1), 1)]);
        assert_eq!(locks.holder(l(1)), Some((n(1), 1)));
        assert_eq!(locks.holder(l(2)), None);
        assert_eq!(locks.holder(l(3)), Some((n(3), 1)));
    }

    #[test]
    fn purge_drops_dead_waiters_from_queues() {
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        assert!(!locks.acquire(n(1), l(1), 1));
        assert!(!locks.acquire(n(2), l(1), 1));
        // Node 1 crashes while queued: the hand-off skips it.
        assert!(locks.purge_node(n(1)).is_empty());
        assert_eq!(locks.release(n(0), l(1), 1), Some((n(2), 1)));
    }

    #[test]
    fn barrier_done_episodes_are_queryable() {
        let mut bar = BarrierCtrl::new(2);
        assert!(!bar.is_done(0));
        assert!(!bar.arrive(n(0), 0));
        assert!(!bar.is_done(0));
        assert!(bar.has_arrived(n(0), 0));
        assert!(!bar.has_arrived(n(1), 0));
        assert!(bar.arrive(n(1), 0));
        assert!(bar.is_done(0));
        assert!(!bar.is_done(1));
        // A released episode reports no partial arrivals.
        assert!(!bar.has_arrived(n(0), 0));
    }

    #[test]
    fn holder_reacquire_with_new_sequence_queues_behind_itself() {
        // Under RC a node's next acquire can overtake its own in-flight
        // release; the home must queue it, not mistake it for a replay.
        let mut locks = LockCtrl::new();
        assert!(locks.acquire(n(0), l(1), 1));
        assert!(!locks.acquire(n(0), l(1), 2));
        // A replayed release of the *first* grant hands the lock onward...
        assert_eq!(locks.release(n(0), l(1), 1), Some((n(0), 2)));
        // ...and a second copy of that release no longer matches.
        assert_eq!(locks.release(n(0), l(1), 1), None);
        assert_eq!(locks.stale_ops(), 1);
        assert_eq!(locks.release(n(0), l(1), 2), None);
        assert!(!locks.any_held());
    }
}
