//! The paper's primary contribution: simple extensions to a directory-based
//! write-invalidate cache-coherence protocol.
//!
//! This crate implements the protocol layer of *"Combined Performance Gains
//! of Simple Cache Protocol Extensions"* (Dahlgren, Dubois & Stenström,
//! ISCA 1994):
//!
//! * the **BASIC** protocol — a full-map directory-based write-invalidate
//!   protocol with lockup-free second-level caches, under sequential (SC) or
//!   release (RC) consistency ([`dir::DirCtrl`], [`line`](mod@crate::line));
//! * **P** — adaptive sequential prefetching ([`prefetch::Prefetcher`]);
//! * **M** — the migratory-sharing optimization (detection and reversion
//!   live in [`dir::DirCtrl`]; the `MigClean` cache state in
//!   [`line::CacheState`]);
//! * **CW** — competitive update with write caches
//!   ([`competitive::CompetitivePolicy`]; the write cache itself is
//!   `dirext_memsys::WriteCache`);
//! * every combination of the above, selected by [`ProtocolKind`] /
//!   [`ProtocolConfig`];
//! * the memory-level synchronization the paper assumes: DASH-style
//!   queue-based locks and a barrier primitive ([`sync`]);
//! * the hardware-cost model reproducing the paper's Table 1
//!   ([`cost::HardwareCost`]).
//!
//! The crate is a *logic* layer: controllers consume protocol messages and
//! emit actions; all timing (buses, latencies, buffers) is applied by the
//! machine model in `dirext-sim`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blockmap;
pub mod competitive;
pub mod config;
pub mod cost;
pub mod dir;
pub mod error;
pub mod line;
pub mod msg;
pub mod prefetch;
pub mod proto;
pub mod sharer;
pub mod sync;

pub use blockmap::BlockMap;
pub use config::{CompetitiveConfig, Consistency, PrefetchConfig, ProtocolConfig, ProtocolKind};
pub use dir::{DirAction, DirCtrl, DirStats};
pub use error::ProtocolError;
pub use line::{CacheState, Line};
pub use msg::{Msg, MsgKind};
pub use prefetch::Prefetcher;
pub use proto::{ExtKind, ExtSet, ExtStack, ProtocolExt, TraceRing, TransitionRecord};
pub use sharer::{AckMask, AddOutcome, DirOrg, DirOrgError, FanoutClass, SharerSet};
