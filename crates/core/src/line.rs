//! Second-level cache line state.

/// Stable SLC line states.
///
/// The paper's BASIC protocol needs only `Shared` and `Dirty` (invalid lines
/// are simply absent from the cache): "no transient state is needed in cache
/// because all pending accesses are kept in the SLWB". The migratory
/// optimization adds one extra state, `MigClean` — an exclusive but not yet
/// written copy of a block the home deemed migratory; the first local write
/// silently promotes it to `Dirty` with **no ownership request**, which is
/// the entire point of the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheState {
    /// Valid, possibly replicated; memory is up to date.
    Shared,
    /// Exclusive and modified.
    Dirty,
    /// Exclusive, unmodified, granted by the migratory optimization.
    MigClean,
}

impl CacheState {
    /// Whether the holder may write without any protocol transaction.
    pub fn writable_silently(self) -> bool {
        matches!(self, CacheState::Dirty | CacheState::MigClean)
    }

    /// Whether the holder is the exclusive owner.
    pub fn exclusive(self) -> bool {
        matches!(self, CacheState::Dirty | CacheState::MigClean)
    }
}

/// The full per-line SLC metadata, covering BASIC plus all three extensions
/// (each field is only meaningful when the corresponding extension is on —
/// see the hardware-cost model in [`crate::cost`] for the bit budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Protocol state.
    pub state: CacheState,
    /// Debug version stamp (the simulator's coherence-value check; not
    /// hardware).
    pub version: u64,
    /// P: block arrived by prefetch and has not been referenced yet.
    pub prefetched: bool,
    /// CW: competitive counter (preset on load and local access,
    /// decremented per foreign update; zero invalidates).
    pub comp_counter: u8,
    /// CW+M: block was modified locally at some point while resident.
    pub ever_modified: bool,
    /// CW+M: block was read since the last update received from home.
    pub read_since_update: bool,
    /// CW+M: block was modified since the last update received from home.
    pub modified_since_update: bool,
    /// An ownership request for this line is outstanding in the SLWB (the
    /// line itself stays in its stable state).
    pub own_pending: bool,
}

impl Line {
    /// Creates a line in the given state with a version stamp and the
    /// competitive counter preset to `comp_preset`.
    pub fn new(state: CacheState, version: u64, comp_preset: u8) -> Self {
        Line {
            state,
            version,
            prefetched: false,
            comp_counter: comp_preset,
            ever_modified: false,
            read_since_update: false,
            modified_since_update: false,
            own_pending: false,
        }
    }

    /// Records a local read: presets the competitive counter and marks the
    /// block as actively read for the CW+M interrogation heuristic. Clears
    /// the prefetched bit; returns whether this was the first reference to
    /// a prefetched block (a *useful* prefetch).
    pub fn touch_read(&mut self, comp_preset: u8) -> bool {
        self.comp_counter = comp_preset;
        self.read_since_update = true;
        std::mem::take(&mut self.prefetched)
    }

    /// Records a local write (version stamping is the caller's job).
    /// Returns whether this was the first reference to a prefetched block.
    pub fn touch_write(&mut self, comp_preset: u8) -> bool {
        self.comp_counter = comp_preset;
        self.ever_modified = true;
        self.modified_since_update = true;
        std::mem::take(&mut self.prefetched)
    }

    /// Applies a foreign competitive update. Returns `true` if the copy
    /// must self-invalidate: the counter (preset to the competitive
    /// threshold on every local access) had already been exhausted by
    /// earlier updates, i.e. *threshold* updates arrived with no intervening
    /// local access. Otherwise the update is absorbed: the version merges,
    /// the counter decrements, and the since-update flags reset.
    ///
    /// With the paper's recommended threshold of one, an actively read copy
    /// survives indefinitely (each local access resets the counter), while
    /// an idle copy is invalidated by the second consecutive update.
    pub fn apply_update(&mut self, version: u64) -> bool {
        if self.comp_counter == 0 {
            return true;
        }
        self.comp_counter -= 1;
        self.version = self.version.max(version);
        self.read_since_update = false;
        self.modified_since_update = false;
        false
    }

    /// The CW+M interrogation verdict: keep the copy (veto migratory) if the
    /// block was never modified locally, or was read but not modified since
    /// the last update from home.
    pub fn interrogate_keeps(&self) -> bool {
        !self.ever_modified || (self.read_since_update && !self.modified_since_update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_writability() {
        assert!(!CacheState::Shared.writable_silently());
        assert!(CacheState::Dirty.writable_silently());
        assert!(CacheState::MigClean.writable_silently());
        assert!(CacheState::MigClean.exclusive());
        assert!(!CacheState::Shared.exclusive());
    }

    #[test]
    fn prefetched_bit_cleared_on_first_reference_only() {
        let mut l = Line::new(CacheState::Shared, 1, 1);
        l.prefetched = true;
        assert!(l.touch_read(1)); // useful prefetch
        assert!(!l.touch_read(1)); // already referenced
    }

    #[test]
    fn competitive_countdown_threshold_one() {
        let mut l = Line::new(CacheState::Shared, 1, 1);
        // The first update since the last access is absorbed; the second
        // consecutive one invalidates the copy.
        assert!(!l.apply_update(2));
        assert_eq!(l.version, 2);
        assert!(l.apply_update(3));
    }

    #[test]
    fn active_reader_survives_with_threshold_one() {
        let mut l = Line::new(CacheState::Shared, 1, 1);
        for v in 2..50u64 {
            assert!(!l.apply_update(v), "actively read copy must survive");
            l.touch_read(1); // consumer reads between producer updates
        }
    }

    #[test]
    fn competitive_countdown_threshold_four_with_intervening_access() {
        let mut l = Line::new(CacheState::Shared, 1, 4);
        assert!(!l.apply_update(2));
        assert!(!l.apply_update(3));
        l.touch_read(4); // local access presets the counter
        for v in 4..8u64 {
            assert!(!l.apply_update(v));
        }
        assert!(l.apply_update(8), "four updates exhausted the counter");
    }

    #[test]
    fn interrogation_verdicts() {
        // Never modified: keep.
        let mut reader = Line::new(CacheState::Shared, 1, 1);
        reader.touch_read(1);
        assert!(reader.interrogate_keeps());

        // Modified at some point, idle since the last update: give up.
        let mut old_writer = Line::new(CacheState::Shared, 1, 1);
        old_writer.touch_write(1);
        let _ = old_writer.apply_update(2);
        assert!(!old_writer.interrogate_keeps());

        // Modified at some point, but actively *reading* since the last
        // update: keep.
        let mut active_reader = Line::new(CacheState::Shared, 1, 1);
        active_reader.touch_write(1);
        let _ = active_reader.apply_update(2);
        active_reader.touch_read(1);
        assert!(active_reader.interrogate_keeps());

        // Modified since the last update: give up.
        let mut writer = Line::new(CacheState::Shared, 1, 1);
        writer.touch_write(1);
        assert!(!writer.interrogate_keeps());
    }

    #[test]
    fn version_merge_is_monotonic() {
        let mut l = Line::new(CacheState::Shared, 10, 4);
        let _ = l.apply_update(5); // stale update must not regress version
        assert_eq!(l.version, 10);
    }
}
