//! Protocol messages exchanged between caches and home directories.

use dirext_network::TrafficClass;
use dirext_trace::{BlockAddr, NodeId, WORD_BYTES};

/// Fixed per-message overhead in bytes: message type, block address, and
/// source/requester identifiers.
pub const HEADER_BYTES: u32 = 8;
/// A full cache-block payload in bytes.
pub const DATA_BYTES: u32 = 32;

/// The kind (and payload summary) of a protocol message.
///
/// Message kinds map one-to-one onto the transactions of the paper's
/// protocol description (Sections 2 and 3). Data payloads are not carried
/// explicitly — the simulator tracks a per-block version instead — but
/// [`MsgKind::bytes`] accounts for them in network traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    // ------------------------------------------------- cache -> home
    /// Read-miss request (also used for non-binding prefetches).
    ReadReq {
        /// True when issued by the prefetch unit rather than a demand miss.
        prefetch: bool,
    },
    /// Ownership request for a write to a shared or invalid block.
    OwnReq {
        /// True when the requester holds no valid copy and needs the data.
        need_data: bool,
    },
    /// Competitive-update write: the dirty words of one write-cache block.
    UpdateReq {
        /// Per-word dirty mask (bit i = word i modified).
        dirty_words: u8,
    },
    /// Replacement of an exclusive copy, carrying data if it was written.
    WritebackReq {
        /// Whether the block was modified while held (false for the
        /// replacement of an unwritten migratory copy).
        written: bool,
    },
    /// Replacement hint for a shared copy (keeps the full-map directory
    /// exact; carries no data).
    SharedReplHint,

    // ------------------------------------------------- home -> cache
    /// Reply to a `ReadReq`, carrying the block.
    ReadReply {
        /// Grant an exclusive copy (migratory optimization) instead of a
        /// shared one.
        exclusive: bool,
    },
    /// Ownership acknowledgment after all invalidations completed.
    OwnAck {
        /// Whether the block data accompanies the acknowledgment.
        with_data: bool,
    },
    /// Completion of an `UpdateReq` fan-out.
    UpdateDone {
        /// No other cache holds a copy and the writer does: the home has
        /// granted the writer exclusive ownership, so its further writes
        /// stay local (the update protocol degenerates to invalidate for
        /// effectively private data).
        exclusive: bool,
    },
    /// Acknowledgment of a writeback.
    WritebackAck,
    /// Negative acknowledgment: the home cannot service the request in its
    /// current state (the requester is still the registered owner because
    /// its writeback is in flight). The requester retries after an
    /// exponential backoff.
    Nack,

    // ------------------------------------------------- home -> third party
    /// Invalidate your copy.
    Inval,
    /// Send the block to home and downgrade to shared (read of a dirty
    /// block).
    Fetch,
    /// Send the block to home and invalidate (ownership transfer or
    /// migratory read).
    FetchInval,
    /// Competitive update: apply these modified words to your copy.
    Update {
        /// Per-word dirty mask.
        dirty_words: u8,
    },
    /// CW+M migratory detection: report whether you are actively reading
    /// this block, give up your copy otherwise.
    Interrogate,

    // ------------------------------------------------- third party -> home
    /// Acknowledgment of an `Inval`.
    InvalAck,
    /// Reply to `Fetch`, carrying the block.
    FetchReply {
        /// Whether the owner had modified the block.
        written: bool,
    },
    /// Reply to `FetchInval`, carrying the block if written.
    FetchInvalReply {
        /// Whether the owner had modified the block (false reverts the
        /// migratory classification).
        written: bool,
    },
    /// Acknowledgment of an `Update`.
    UpdateAck {
        /// Whether the competitive counter reached zero and the copy
        /// self-invalidated (home clears the presence bit).
        invalidated: bool,
    },
    /// Reply to an `Interrogate`.
    InterrogateReply {
        /// True: the cache keeps its copy and vetoes the migratory
        /// classification. False: the cache gave up its copy.
        keep: bool,
    },

    // ------------------------------------------------- synchronization
    /// Request a queue-based lock at its home memory.
    AcqReq,
    /// Lock granted to the requester.
    AcqGrant,
    /// Release a lock (home passes it to the next waiter).
    RelReq,
    /// Release acknowledgment (used under SC, where the processor stalls
    /// until the release is globally performed).
    RelAck,
    /// Barrier arrival.
    BarArrive {
        /// Barrier episode.
        id: u32,
    },
    /// Barrier release broadcast.
    BarRelease {
        /// Barrier episode.
        id: u32,
    },
}

impl MsgKind {
    /// Whether this message carries a full block of data.
    pub fn carries_block(self) -> bool {
        matches!(
            self,
            MsgKind::ReadReply { .. }
                | MsgKind::OwnAck { with_data: true }
                | MsgKind::FetchReply { .. }
                | MsgKind::FetchInvalReply { written: true }
                | MsgKind::WritebackReq { written: true }
        )
    }

    /// Message size on the network in bytes (header plus payload).
    pub fn bytes(self) -> u32 {
        match self {
            k if k.carries_block() => HEADER_BYTES + DATA_BYTES,
            MsgKind::UpdateReq { dirty_words } | MsgKind::Update { dirty_words } => {
                HEADER_BYTES + dirty_words.count_ones() * WORD_BYTES as u32
            }
            _ => HEADER_BYTES,
        }
    }

    /// Traffic class for network accounting.
    pub fn class(self) -> TrafficClass {
        match self {
            MsgKind::UpdateReq { .. }
            | MsgKind::Update { .. }
            | MsgKind::UpdateDone { .. }
            | MsgKind::UpdateAck { .. } => TrafficClass::Update,
            MsgKind::AcqReq
            | MsgKind::AcqGrant
            | MsgKind::RelReq
            | MsgKind::RelAck
            | MsgKind::BarArrive { .. }
            | MsgKind::BarRelease { .. } => TrafficClass::Sync,
            k if k.carries_block() => TrafficClass::Data,
            _ => TrafficClass::Control,
        }
    }

    /// Whether this is a *request* that must queue when the directory entry
    /// is in a transient state (replies and hints never queue).
    pub fn queues_at_home(self) -> bool {
        matches!(
            self,
            MsgKind::ReadReq { .. }
                | MsgKind::OwnReq { .. }
                | MsgKind::UpdateReq { .. }
                | MsgKind::WritebackReq { .. }
        )
    }
}

/// A complete protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// The block (or the lock/barrier variable's block) this message is
    /// about.
    pub block: BlockAddr,
    /// Message kind and payload summary.
    pub kind: MsgKind,
    /// Debug version stamp for data-carrying messages (the simulator's
    /// coherence-value check); zero for control messages.
    pub version: u64,
    /// Packed incarnation stamp for crash/recovery fencing: the sender's
    /// epoch in the high 16 bits, the receiver's in the low 16. The machine
    /// layer stamps it at send time; a delivery whose stamp no longer
    /// matches both endpoints' current epochs is from (or to) a dead
    /// incarnation and is dropped. Zero everywhere when node faults are
    /// off, so construction sites may leave it 0.
    pub epoch: u32,
}

impl Msg {
    /// Network envelope (size, class, endpoints) for this message.
    pub fn envelope(&self) -> dirext_network::Envelope {
        dirext_network::Envelope::new(self.src, self.dst, self.kind.bytes(), self.kind.class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(MsgKind::ReadReq { prefetch: false }.bytes(), 8);
        assert_eq!(MsgKind::ReadReply { exclusive: false }.bytes(), 40);
        assert_eq!(MsgKind::OwnAck { with_data: false }.bytes(), 8);
        assert_eq!(MsgKind::OwnAck { with_data: true }.bytes(), 40);
        // Update of 3 dirty words: 8 + 12.
        assert_eq!(
            MsgKind::Update {
                dirty_words: 0b0000_0111
            }
            .bytes(),
            20
        );
        assert_eq!(MsgKind::UpdateReq { dirty_words: 0xFF }.bytes(), 40);
        // An unwritten migratory writeback carries no data.
        assert_eq!(MsgKind::WritebackReq { written: false }.bytes(), 8);
        assert_eq!(MsgKind::WritebackReq { written: true }.bytes(), 40);
        assert_eq!(MsgKind::FetchInvalReply { written: false }.bytes(), 8);
    }

    #[test]
    fn classes() {
        assert_eq!(MsgKind::Inval.class(), TrafficClass::Control);
        assert_eq!(
            MsgKind::ReadReply { exclusive: true }.class(),
            TrafficClass::Data
        );
        assert_eq!(
            MsgKind::Update { dirty_words: 1 }.class(),
            TrafficClass::Update
        );
        assert_eq!(MsgKind::AcqReq.class(), TrafficClass::Sync);
        assert_eq!(MsgKind::BarRelease { id: 3 }.class(), TrafficClass::Sync);
    }

    #[test]
    fn nack_is_a_small_control_message() {
        assert_eq!(MsgKind::Nack.bytes(), HEADER_BYTES);
        assert_eq!(MsgKind::Nack.class(), TrafficClass::Control);
        assert!(!MsgKind::Nack.carries_block());
        assert!(!MsgKind::Nack.queues_at_home());
    }

    #[test]
    fn queueing_discipline() {
        assert!(MsgKind::ReadReq { prefetch: true }.queues_at_home());
        assert!(MsgKind::OwnReq { need_data: false }.queues_at_home());
        assert!(!MsgKind::InvalAck.queues_at_home());
        assert!(!MsgKind::SharedReplHint.queues_at_home());
        assert!(!MsgKind::FetchInvalReply { written: true }.queues_at_home());
    }

    #[test]
    fn envelope_reflects_kind() {
        let m = Msg {
            src: NodeId(1),
            dst: NodeId(2),
            block: BlockAddr::from_index(7),
            kind: MsgKind::ReadReply { exclusive: false },
            version: 3,
            epoch: 0,
        };
        let env = m.envelope();
        assert_eq!(env.bytes, 40);
        assert_eq!(env.class, TrafficClass::Data);
        assert!(!env.is_local());
    }
}
