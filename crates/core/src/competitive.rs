//! Competitive-update policy parameters (extension CW).
//!
//! The mechanism itself is distributed: the per-line counter behaviour lives
//! in [`crate::line::Line`] (preset on load/local access, decremented per
//! foreign update, self-invalidation at zero) and the update fan-out in
//! [`crate::dir::DirCtrl`]. This module holds the policy knobs and the
//! derived constants the machine layer needs.

use crate::config::CompetitiveConfig;

/// Resolved competitive-update policy for one cache.
///
/// # Example
///
/// ```
/// use dirext_core::competitive::CompetitivePolicy;
/// use dirext_core::config::CompetitiveConfig;
///
/// // The paper's recommendation: threshold 1 with write caches.
/// let p = CompetitivePolicy::new(CompetitiveConfig::default());
/// assert_eq!(p.preset(), 1);
/// assert!(p.write_cache_enabled());
///
/// // The no-write-cache variant needs a larger threshold (4 in the paper).
/// let p = CompetitivePolicy::new(CompetitiveConfig { threshold: 4, write_cache: false });
/// assert_eq!(p.preset(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompetitivePolicy {
    threshold: u8,
    write_cache: bool,
}

impl CompetitivePolicy {
    /// Builds the policy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero (a copy that self-invalidates before
    /// any update would make loads incoherent).
    pub fn new(cfg: CompetitiveConfig) -> Self {
        assert!(cfg.threshold > 0, "competitive threshold must be positive");
        CompetitivePolicy {
            threshold: cfg.threshold,
            write_cache: cfg.write_cache,
        }
    }

    /// The counter preset value (the competitive threshold).
    pub fn preset(self) -> u8 {
        self.threshold
    }

    /// Whether writes are combined through the 4-block write cache.
    pub fn write_cache_enabled(self) -> bool {
        self.write_cache
    }

    /// Number of state bits the counter costs per SLC line (Table 1 reports
    /// a "1-bit counter" for the threshold-1 configuration).
    pub fn counter_bits(self) -> u32 {
        u8::BITS - self.threshold.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::{CacheState, Line};

    #[test]
    fn counter_bits_matches_table_1() {
        // Threshold 1 -> modulo-2 counter -> 1 bit.
        let p = CompetitivePolicy::new(CompetitiveConfig {
            threshold: 1,
            write_cache: true,
        });
        assert_eq!(p.counter_bits(), 1);
        // Threshold 4 -> 3 bits (counts 4..0).
        let p = CompetitivePolicy::new(CompetitiveConfig {
            threshold: 4,
            write_cache: false,
        });
        assert_eq!(p.counter_bits(), 3);
    }

    #[test]
    fn policy_drives_line_self_invalidation() {
        let p = CompetitivePolicy::new(CompetitiveConfig::default());
        let mut line = Line::new(CacheState::Shared, 1, p.preset());
        // Threshold 1: the first foreign update is absorbed; a second one
        // with no intervening local access invalidates the copy and stops
        // update propagation.
        assert!(!line.apply_update(2));
        assert!(line.apply_update(3));
    }

    #[test]
    fn local_access_keeps_copy_alive() {
        let p = CompetitivePolicy::new(CompetitiveConfig {
            threshold: 2,
            write_cache: true,
        });
        let mut line = Line::new(CacheState::Shared, 1, p.preset());
        assert!(!line.apply_update(2));
        line.touch_read(p.preset()); // consumer is actively reading
        assert!(!line.apply_update(3));
        assert!(!line.apply_update(4));
        assert!(line.apply_update(5));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = CompetitivePolicy::new(CompetitiveConfig {
            threshold: 0,
            write_cache: true,
        });
    }
}
