//! Trace-replay conformance checking.
//!
//! Replays recorded [`TransitionRecord`]s against the declarative tables
//! and flags every transition that is not derivable from BASIC plus the
//! enabled extension layers. This is the artifact the refactor buys: the
//! protocol we claim to implement (the tables) and the protocol we run
//! (the controllers) are checked against each other on every traced
//! execution — the simulator's final invariant audit runs it whenever
//! tracing is on, and the CI smoke suite replays every experiment
//! driver's traces through it.

use super::table::{ExtKind, ExtSet, Rule, CACHE_RULES, DIR_RULES};
use super::trace::{StateTag, TransitionRecord};

/// A recorded transition the tables cannot derive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending record.
    pub record: TransitionRecord,
    /// Why it is illegal.
    pub reason: String,
}

impl Violation {
    /// One-line rendering for diagnostics.
    pub fn render(&self) -> String {
        format!("{}  !! {}", self.record.render(), self.reason)
    }
}

fn rules_for(from: StateTag) -> &'static [Rule] {
    match from {
        StateTag::Dir(_) => DIR_RULES,
        StateTag::Cache(_) => CACHE_RULES,
    }
}

/// Checks one record against the tables under the enabled layers.
///
/// Returns `None` when the transition is derivable. Self-loops (records
/// whose state tag did not change) are always legal — the tables list
/// state *changes*.
pub fn check_record(r: &TransitionRecord, enabled: ExtSet) -> Option<Violation> {
    if r.from == r.to {
        return None;
    }
    if let Some(name) = r.ext {
        let attributed_enabled = enabled
            .kinds()
            .iter()
            .any(|k| k.label() == name || (name == "M" && *k == ExtKind::CompetitiveMigratory));
        if !attributed_enabled {
            return Some(Violation {
                record: *r,
                reason: format!("attributed to extension {name:?}, which is not enabled"),
            });
        }
    }
    let rules = rules_for(r.from);
    let mut seen_input = false;
    for rule in rules {
        if rule.from != r.from || rule.input != r.input {
            continue;
        }
        if !enabled.contains(rule.ext) {
            continue;
        }
        seen_input = true;
        if rule.to.contains(&r.to) {
            return None;
        }
    }
    let reason = if seen_input {
        format!(
            "no enabled rule allows {} -> {} on {}",
            r.from.label(),
            r.to.label(),
            r.input.label()
        )
    } else {
        format!(
            "no enabled rule accepts input {} in state {}",
            r.input.label(),
            r.from.label()
        )
    };
    Some(Violation { record: *r, reason })
}

/// Replays a recorded trace against the tables, returning every
/// non-derivable transition.
pub fn check_trace<'a, I>(records: I, enabled: ExtSet) -> Vec<Violation>
where
    I: IntoIterator<Item = &'a TransitionRecord>,
{
    records
        .into_iter()
        .filter_map(|r| check_record(r, enabled))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::trace::{CacheTag, DirTag, MsgTag, TraceInput};
    use super::*;
    use dirext_trace::{BlockAddr, NodeId};

    fn rec(from: StateTag, input: TraceInput, to: StateTag) -> TransitionRecord {
        TransitionRecord {
            time: 0,
            node: NodeId(1),
            block: BlockAddr::from_index(7),
            from,
            to,
            input,
            ext: None,
        }
    }

    #[test]
    fn basic_ownership_transfer_is_derivable() {
        let set = ExtSet::basic();
        let r = rec(
            StateTag::Dir(DirTag::Clean),
            TraceInput::Msg(MsgTag::OwnReq),
            StateTag::Dir(DirTag::Invalidating),
        );
        assert!(check_record(&r, set).is_none());
        let r = rec(
            StateTag::Dir(DirTag::Invalidating),
            TraceInput::Msg(MsgTag::InvalAck),
            StateTag::Dir(DirTag::Modified),
        );
        assert!(check_record(&r, set).is_none());
    }

    #[test]
    fn migratory_transitions_require_the_m_layer() {
        let r = rec(
            StateTag::Dir(DirTag::Modified),
            TraceInput::Msg(MsgTag::ReadReq),
            StateTag::Dir(DirTag::FetchMigRead),
        );
        assert!(check_record(&r, ExtSet::basic()).is_some());
        assert!(check_record(&r, ExtSet::basic().with(ExtKind::Migratory)).is_none());
    }

    #[test]
    fn seeded_illegal_transition_is_flagged() {
        // An invalidation acknowledgment cannot move a CLEAN entry to
        // MODIFIED — there is no pending ownership transfer.
        let all = ExtSet::basic()
            .with(ExtKind::Prefetch)
            .with(ExtKind::Migratory)
            .with(ExtKind::Competitive)
            .with(ExtKind::ExclusiveClean);
        let r = rec(
            StateTag::Dir(DirTag::Clean),
            TraceInput::Msg(MsgTag::InvalAck),
            StateTag::Dir(DirTag::Modified),
        );
        let v = check_record(&r, all).expect("must be flagged");
        assert!(v.reason.contains("no enabled rule"));
        // A cache line cannot go SHARED -> DIRTY on a processor write
        // without an ownership grant, under any extension set.
        let r = rec(
            StateTag::Cache(CacheTag::Shared),
            TraceInput::CpuWrite,
            StateTag::Cache(CacheTag::Dirty),
        );
        assert!(check_record(&r, all).is_some());
    }

    #[test]
    fn misattributed_extension_is_flagged() {
        let mut r = rec(
            StateTag::Dir(DirTag::Modified),
            TraceInput::Msg(MsgTag::ReadReq),
            StateTag::Dir(DirTag::FetchMigRead),
        );
        r.ext = Some("M");
        let v = check_record(&r, ExtSet::basic()).expect("must be flagged");
        assert!(v.reason.contains("not enabled"));
    }

    #[test]
    fn self_loops_are_always_legal() {
        let r = rec(
            StateTag::Dir(DirTag::Clean),
            TraceInput::Msg(MsgTag::SharedReplHint),
            StateTag::Dir(DirTag::Clean),
        );
        assert!(check_record(&r, ExtSet::basic()).is_none());
    }
}
