//! Composable protocol-extension hooks.
//!
//! The BASIC transition cores (the directory in [`crate::dir`] and the
//! simulator's cache controller) know nothing about P, M, CW or the
//! exclusive-clean ablation: at every point where an extension may change
//! an outcome they consult an [`ExtStack`] — an ordered list of
//! [`ProtocolExt`] implementations built once from the
//! [`ProtocolConfig`]. Rewriting hooks are *first-win*: the first
//! extension that rewrites an outcome settles it, mirroring the paper's
//! precedence (migratory handling before the exclusive-clean grant);
//! observation hooks (`on_own_lookup`, `on_writeback`, prefetch
//! callbacks) run for every installed extension.
//!
//! The stack remembers which hook fired so the transition-trace layer can
//! attribute the resulting state change to an extension.

use crate::competitive::CompetitivePolicy;
use crate::config::{CompetitiveConfig, PrefetchConfig, ProtocolConfig};
use crate::dir::{DirEntry, DirState, DirStats};
use crate::prefetch::{PrefetchStats, Prefetcher};
use dirext_trace::NodeId;

use super::table::{ExtKind, ExtSet};

/// Outcome of a read miss on a CLEAN directory entry, as rewritable by
/// extensions.
#[derive(Debug, Clone, Copy)]
pub struct ReadGrant {
    /// Grant the block exclusively (the requester installs `MigClean`).
    pub exclusive: bool,
    /// Record the requester as the block's last writer (migratory grants
    /// do; plain exclusive-clean grants do not).
    pub record_writer: bool,
}

impl ReadGrant {
    /// The BASIC outcome: an ordinary shared copy.
    pub fn shared() -> Self {
        ReadGrant {
            exclusive: false,
            record_writer: false,
        }
    }
}

/// How the home services a read miss on a MODIFIED entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFetch {
    /// BASIC: fetch the dirty copy, the owner keeps a shared copy.
    Plain,
    /// Migratory: fetch-invalidate the holder and pass the block on
    /// exclusively.
    Invalidating,
}

/// Routing decision for an update request on a CLEAN entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateRoute {
    /// Fan the update out to the other caches with copies.
    Fanout,
    /// CW+M: interrogate every cache with a copy first.
    Interrogate,
}

/// How the processor cache services a write to a SHARED or absent block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// BASIC: request ownership (write-invalidate).
    Invalidate,
    /// CW: allocate in the write cache; no fetch, no ownership request.
    WriteCache,
    /// CW without write caches (ablation): an immediate single-word
    /// update request per write.
    UpdateNow,
}

/// Runtime-adjustable extension options (used by ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtOption {
    /// M: whether an unwritten exclusive copy reverts the block to
    /// ordinary read sharing.
    MigratoryRevert,
}

/// A protocol extension: a set of hooks the BASIC transition cores consult.
///
/// Every method has a no-op default, so an extension implements exactly
/// the decision points it cares about. Hooks returning `bool` report
/// whether they rewrote the outcome (for first-win dispatch and trace
/// attribution).
#[allow(unused_variables)]
pub trait ProtocolExt: std::fmt::Debug + Send {
    /// Short name used in trace records ("P", "M", "CW", "E").
    fn name(&self) -> &'static str;

    /// Which transition-table layer this extension enables.
    fn kind(&self) -> ExtKind;

    /// Adjusts a runtime option; unknown options are ignored.
    fn configure(&mut self, opt: ExtOption, on: bool) {}

    // ------------------------------------------------- directory side

    /// Read miss on a CLEAN entry: may upgrade the grant to exclusive.
    fn read_clean(
        &mut self,
        e: &mut DirEntry,
        src: NodeId,
        stats: &mut DirStats,
        grant: &mut ReadGrant,
    ) -> bool {
        false
    }

    /// Read miss on a MODIFIED entry: may redirect the fetch.
    fn read_modified(&mut self, e: &DirEntry, fetch: &mut ReadFetch) -> bool {
        false
    }

    /// An ownership request arrived (before state dispatch): sharing-
    /// pattern detection.
    fn on_own_lookup(&mut self, e: &mut DirEntry, src: NodeId, stats: &mut DirStats) -> bool {
        false
    }

    /// Update request on a CLEAN entry: may reroute the fan-out.
    fn update_route(&mut self, e: &DirEntry, src: NodeId, route: &mut UpdateRoute) -> bool {
        false
    }

    /// An owner's writeback was applied (entry already CLEAN):
    /// self-correction.
    fn on_writeback(&mut self, e: &mut DirEntry, written: bool, stats: &mut DirStats) -> bool {
        false
    }

    /// A migratory fetch completed with `written == false`: should the
    /// block revert to ordinary read sharing?
    fn unwritten_migratory_fetch(&mut self, revert: &mut bool) -> bool {
        false
    }

    // ----------------------------------------------------- cache side

    /// How a write to a SHARED or absent block is serviced.
    fn write_mode(&mut self, mode: &mut WriteMode) -> bool {
        false
    }

    /// A demand read miss whose predecessor-cached bit is `pred_cached`:
    /// sets the number of sequential prefetches to issue.
    fn on_demand_miss(&mut self, pred_cached: bool, k: &mut u32) -> bool {
        false
    }

    /// First reference to a prefetched block: sets the number of
    /// prefetches extending the stream.
    fn on_useful_first_reference(&mut self, k: &mut u32) -> bool {
        false
    }

    /// A prefetch request left the cache.
    fn on_prefetch_issued(&mut self) {}

    /// A prefetched block arrived.
    fn on_prefetch_arrived(&mut self) {}

    /// Prefetcher counters for metrics collection, if this extension
    /// prefetches.
    fn prefetch_stats(&self) -> Option<PrefetchStats> {
        None
    }
}

// --------------------------------------------------------------- stack

/// An ordered stack of protocol extensions, built from a
/// [`ProtocolConfig`] and consulted by both transition cores.
#[derive(Debug, Default)]
pub struct ExtStack {
    exts: Vec<Box<dyn ProtocolExt>>,
    /// Name of the first hook that rewrote an outcome since the last
    /// [`ExtStack::take_fired`] (trace attribution).
    fired: Option<&'static str>,
}

impl ExtStack {
    /// An empty stack: the pure BASIC protocol.
    pub fn new() -> Self {
        ExtStack::default()
    }

    /// Builds the stack matching a protocol configuration, in precedence
    /// order: P, M, E, CW.
    pub fn from_protocol(p: &ProtocolConfig) -> Self {
        let mut s = ExtStack::new();
        if let Some(pf) = p.prefetch {
            s.push(Box::new(PrefetchExt::new(pf)));
        }
        if p.migratory {
            let mut m = MigratoryExt::new(p.competitive.is_some());
            m.configure(ExtOption::MigratoryRevert, p.migratory_revert);
            s.push(Box::new(m));
        }
        if p.exclusive_clean {
            s.push(Box::new(ExclusiveCleanExt));
        }
        if let Some(c) = p.competitive {
            s.push(Box::new(CompetitiveUpdateExt::new(c)));
        }
        s
    }

    /// Appends an extension (later entries lose first-win rewrites).
    pub fn push(&mut self, ext: Box<dyn ProtocolExt>) {
        self.exts.push(ext);
    }

    /// Removes every extension of table layer `kind`.
    pub fn remove(&mut self, kind: ExtKind) {
        self.exts.retain(|e| e.kind() != kind);
    }

    /// Whether an extension of table layer `kind` is installed.
    pub fn contains(&self, kind: ExtKind) -> bool {
        self.exts.iter().any(|e| e.kind() == kind)
    }

    /// The enabled transition-table layers (BASIC plus one per installed
    /// extension, with CW+M inferred).
    pub fn rule_set(&self) -> ExtSet {
        self.exts
            .iter()
            .fold(ExtSet::basic(), |s, e| s.with(e.kind()))
    }

    /// Installed extension names, in stack order.
    pub fn names(&self) -> Vec<&'static str> {
        self.exts.iter().map(|e| e.name()).collect()
    }

    /// Forwards an option to every installed extension.
    pub fn configure(&mut self, opt: ExtOption, on: bool) {
        for e in &mut self.exts {
            e.configure(opt, on);
        }
    }

    /// Takes (and clears) the name of the first hook that rewrote an
    /// outcome since the previous call.
    pub fn take_fired(&mut self) -> Option<&'static str> {
        self.fired.take()
    }

    fn note_fired(&mut self, name: &'static str) {
        if self.fired.is_none() {
            self.fired = Some(name);
        }
    }

    // Dispatchers. Rewriting hooks are first-win; observation hooks run
    // for every extension.

    /// First-win dispatch of [`ProtocolExt::read_clean`].
    pub fn read_clean(
        &mut self,
        e: &mut DirEntry,
        src: NodeId,
        stats: &mut DirStats,
        grant: &mut ReadGrant,
    ) {
        for i in 0..self.exts.len() {
            if self.exts[i].read_clean(e, src, stats, grant) {
                let name = self.exts[i].name();
                self.note_fired(name);
                return;
            }
        }
    }

    /// First-win dispatch of [`ProtocolExt::read_modified`].
    pub fn read_modified(&mut self, e: &DirEntry, fetch: &mut ReadFetch) {
        for i in 0..self.exts.len() {
            if self.exts[i].read_modified(e, fetch) {
                let name = self.exts[i].name();
                self.note_fired(name);
                return;
            }
        }
    }

    /// Dispatches [`ProtocolExt::on_own_lookup`] to every extension.
    pub fn on_own_lookup(&mut self, e: &mut DirEntry, src: NodeId, stats: &mut DirStats) {
        for i in 0..self.exts.len() {
            if self.exts[i].on_own_lookup(e, src, stats) {
                let name = self.exts[i].name();
                self.note_fired(name);
            }
        }
    }

    /// First-win dispatch of [`ProtocolExt::update_route`].
    pub fn update_route(&mut self, e: &DirEntry, src: NodeId, route: &mut UpdateRoute) {
        for i in 0..self.exts.len() {
            if self.exts[i].update_route(e, src, route) {
                let name = self.exts[i].name();
                self.note_fired(name);
                return;
            }
        }
    }

    /// Dispatches [`ProtocolExt::on_writeback`] to every extension.
    pub fn on_writeback(&mut self, e: &mut DirEntry, written: bool, stats: &mut DirStats) {
        for i in 0..self.exts.len() {
            if self.exts[i].on_writeback(e, written, stats) {
                let name = self.exts[i].name();
                self.note_fired(name);
            }
        }
    }

    /// First-win dispatch of [`ProtocolExt::unwritten_migratory_fetch`].
    pub fn unwritten_migratory_fetch(&mut self) -> bool {
        let mut revert = false;
        for i in 0..self.exts.len() {
            if self.exts[i].unwritten_migratory_fetch(&mut revert) {
                let name = self.exts[i].name();
                self.note_fired(name);
                break;
            }
        }
        revert
    }

    /// First-win dispatch of [`ProtocolExt::write_mode`].
    pub fn write_mode(&mut self) -> WriteMode {
        let mut mode = WriteMode::Invalidate;
        for e in &mut self.exts {
            if e.write_mode(&mut mode) {
                break;
            }
        }
        mode
    }

    /// First-win dispatch of [`ProtocolExt::on_demand_miss`]; 0 means no
    /// prefetching.
    pub fn on_demand_miss(&mut self, pred_cached: bool) -> u32 {
        let mut k = 0;
        for e in &mut self.exts {
            if e.on_demand_miss(pred_cached, &mut k) {
                break;
            }
        }
        k
    }

    /// First-win dispatch of [`ProtocolExt::on_useful_first_reference`].
    pub fn on_useful_first_reference(&mut self) -> u32 {
        let mut k = 0;
        for e in &mut self.exts {
            if e.on_useful_first_reference(&mut k) {
                break;
            }
        }
        k
    }

    /// Notifies every extension that a prefetch request left the cache.
    pub fn on_prefetch_issued(&mut self) {
        for e in &mut self.exts {
            e.on_prefetch_issued();
        }
    }

    /// Notifies every extension that a prefetched block arrived.
    pub fn on_prefetch_arrived(&mut self) {
        for e in &mut self.exts {
            e.on_prefetch_arrived();
        }
    }

    /// The first extension's prefetch counters, if any extension
    /// prefetches.
    pub fn prefetch_stats(&self) -> Option<PrefetchStats> {
        self.exts.iter().find_map(|e| e.prefetch_stats())
    }
}

// ---------------------------------------------------------- extensions

/// P — adaptive sequential prefetching (wraps the per-node
/// [`Prefetcher`] state machine).
#[derive(Debug)]
pub struct PrefetchExt {
    pf: Prefetcher,
}

impl PrefetchExt {
    /// A prefetch extension with the given adaptation parameters.
    pub fn new(cfg: PrefetchConfig) -> Self {
        PrefetchExt {
            pf: Prefetcher::new(cfg),
        }
    }
}

impl ProtocolExt for PrefetchExt {
    fn name(&self) -> &'static str {
        "P"
    }

    fn kind(&self) -> ExtKind {
        ExtKind::Prefetch
    }

    fn on_demand_miss(&mut self, pred_cached: bool, k: &mut u32) -> bool {
        *k = self.pf.on_demand_miss(pred_cached);
        true
    }

    fn on_useful_first_reference(&mut self, k: &mut u32) -> bool {
        *k = self.pf.on_useful_first_reference();
        true
    }

    fn on_prefetch_issued(&mut self) {
        self.pf.on_prefetch_issued();
    }

    fn on_prefetch_arrived(&mut self) {
        self.pf.on_prefetch_arrived();
    }

    fn prefetch_stats(&self) -> Option<PrefetchStats> {
        Some(self.pf.stats())
    }
}

/// M — the migratory-sharing optimization: detection at the home on
/// ownership requests, exclusive read grants, fetch-invalidate reads, and
/// self-correcting reversion.
#[derive(Debug)]
pub struct MigratoryExt {
    revert: bool,
    /// Composed with CW: detection must go through interrogation, because
    /// the home cannot see local reads under an update protocol.
    interrogate: bool,
}

impl MigratoryExt {
    /// A migratory extension; `with_competitive` selects the CW+M
    /// interrogation-based detection.
    pub fn new(with_competitive: bool) -> Self {
        MigratoryExt {
            revert: true,
            interrogate: with_competitive,
        }
    }
}

impl ProtocolExt for MigratoryExt {
    fn name(&self) -> &'static str {
        "M"
    }

    fn kind(&self) -> ExtKind {
        ExtKind::Migratory
    }

    fn configure(&mut self, opt: ExtOption, on: bool) {
        match opt {
            ExtOption::MigratoryRevert => self.revert = on,
        }
    }

    fn read_clean(
        &mut self,
        e: &mut DirEntry,
        src: NodeId,
        stats: &mut DirStats,
        grant: &mut ReadGrant,
    ) -> bool {
        if !e.migratory {
            return false;
        }
        // A migratory block that is clean has no cached copies (the last
        // holder wrote it back): grant exclusively.
        debug_assert!(e.sharers.exactly_empty());
        let _ = src;
        stats.exclusive_grants += 1;
        grant.exclusive = true;
        grant.record_writer = true;
        true
    }

    fn read_modified(&mut self, e: &DirEntry, fetch: &mut ReadFetch) -> bool {
        if !e.migratory {
            return false;
        }
        *fetch = ReadFetch::Invalidating;
        true
    }

    fn on_own_lookup(&mut self, e: &mut DirEntry, src: NodeId, stats: &mut DirStats) -> bool {
        // Migratory detection (Stenström et al. [12], Cox & Fowler [2]):
        // an ownership request from a node that just read the block, while
        // the only other copy belongs to the previous writer.
        if !e.migratory
            && e.state == DirState::Clean
            && e.sharers.exact_count() == Some(2)
            && e.sharers.certainly_contains(src)
        {
            if let Some(lw) = e.last_writer {
                if lw != src && e.sharers.certainly_contains(lw) {
                    e.migratory = true;
                    stats.migratory_detections += 1;
                    return true;
                }
            }
        }
        false
    }

    fn update_route(&mut self, e: &DirEntry, src: NodeId, route: &mut UpdateRoute) -> bool {
        // CW+M: two consecutive non-overlapping read/write sequences by
        // distinct processors are only *potentially* migratory —
        // interrogate the caches holding copies.
        if self.interrogate
            && !e.migratory
            && e.sharers.exact_count().is_some_and(|c| c > 1)
            && e.last_updater.is_some()
            && e.last_updater != Some(src)
        {
            *route = UpdateRoute::Interrogate;
            return true;
        }
        false
    }

    fn on_writeback(&mut self, e: &mut DirEntry, written: bool, stats: &mut DirStats) -> bool {
        if !written && e.migratory && self.revert {
            // The holder replaced the block without ever writing it: the
            // sharing pattern is no longer migratory.
            e.migratory = false;
            stats.migratory_reverts += 1;
            return true;
        }
        false
    }

    fn unwritten_migratory_fetch(&mut self, revert: &mut bool) -> bool {
        *revert = self.revert;
        true
    }
}

/// The MESI-style exclusive-clean ablation: a read miss to a block with no
/// cached copies returns an exclusive copy.
#[derive(Debug)]
pub struct ExclusiveCleanExt;

impl ProtocolExt for ExclusiveCleanExt {
    fn name(&self) -> &'static str {
        "E"
    }

    fn kind(&self) -> ExtKind {
        ExtKind::ExclusiveClean
    }

    fn read_clean(
        &mut self,
        e: &mut DirEntry,
        _src: NodeId,
        stats: &mut DirStats,
        grant: &mut ReadGrant,
    ) -> bool {
        // With no other copies, grant exclusively so the first write to
        // (effectively private) data is silent. Gated on *certain* emptiness:
        // an inexact organization never grants exclusivity.
        if !e.sharers.exactly_empty() {
            return false;
        }
        stats.exclusive_grants += 1;
        grant.exclusive = true;
        true
    }
}

/// CW — competitive update with write caches. The directory's update
/// fan-out is message-driven (an `UpdateReq` can only exist under CW);
/// this extension's hooks select the cache-side write policy.
#[derive(Debug)]
pub struct CompetitiveUpdateExt {
    policy: CompetitivePolicy,
}

impl CompetitiveUpdateExt {
    /// A competitive-update extension with the given threshold policy.
    pub fn new(cfg: CompetitiveConfig) -> Self {
        CompetitiveUpdateExt {
            policy: CompetitivePolicy::new(cfg),
        }
    }

    /// The per-line competitive counter preset.
    pub fn preset(&self) -> u8 {
        self.policy.preset()
    }
}

impl ProtocolExt for CompetitiveUpdateExt {
    fn name(&self) -> &'static str {
        "CW"
    }

    fn kind(&self) -> ExtKind {
        ExtKind::Competitive
    }

    fn write_mode(&mut self, mode: &mut WriteMode) -> bool {
        *mode = if self.policy.write_cache_enabled() {
            WriteMode::WriteCache
        } else {
            WriteMode::UpdateNow
        };
        true
    }
}
