//! The declarative transition tables.
//!
//! Each [`Rule`] names every *observable* state transition one input can
//! cause — the net effect of servicing that input, transient bookkeeping
//! included (the pending states are first-class states here, as in the
//! paper). Inputs that leave the state tag unchanged (partial
//! acknowledgment counts, presence-vector updates, NACKed retries, stale
//! duplicates) are self-loops and are deliberately not listed: the trace
//! layer records state *changes*, and the conformance checker validates
//! those against these rules.
//!
//! `ext` names the rule set a transition belongs to: `Basic` rules are the
//! write-invalidate protocol itself; every other kind is legal only when
//! the corresponding extension hook is installed.

use super::trace::{CacheTag, DirTag, MsgTag, StateTag, TraceInput};

/// Which protocol layer a transition is legal under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtKind {
    /// The BASIC write-invalidate protocol.
    Basic,
    /// P — adaptive sequential prefetching.
    Prefetch,
    /// M — the migratory-sharing optimization.
    Migratory,
    /// CW — competitive update with write caches.
    Competitive,
    /// The CW+M interaction (interrogation-based migratory detection).
    CompetitiveMigratory,
    /// MESI-style exclusive-clean grants (ablation extension).
    ExclusiveClean,
    /// Scalable directory organizations (limited-pointer, coarse-vector,
    /// directoryless): overflow broadcasts, region multicasts and pointer
    /// recalls. Enabled whenever the configured organization is not the
    /// exact full map.
    DirScale,
    /// Node crash/recovery: epoch-fenced reconstruction after a whole-node
    /// fault — cache wipes, directory purges, synthesized completions for
    /// acknowledgments a dead node can no longer send, and grant redirects
    /// when the requester itself died. Enabled whenever a node-fault plan
    /// is active.
    Recovery,
}

impl ExtKind {
    /// Short label used in the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            ExtKind::Basic => "BASIC",
            ExtKind::Prefetch => "P",
            ExtKind::Migratory => "M",
            ExtKind::Competitive => "CW",
            ExtKind::CompetitiveMigratory => "CW+M",
            ExtKind::ExclusiveClean => "E",
            ExtKind::DirScale => "DIR",
            ExtKind::Recovery => "REC",
        }
    }

    fn bit(self) -> u8 {
        match self {
            ExtKind::Basic => 1,
            ExtKind::Prefetch => 1 << 1,
            ExtKind::Migratory => 1 << 2,
            ExtKind::Competitive => 1 << 3,
            ExtKind::CompetitiveMigratory => 1 << 4,
            ExtKind::ExclusiveClean => 1 << 5,
            ExtKind::DirScale => 1 << 6,
            ExtKind::Recovery => 1 << 7,
        }
    }
}

/// A set of enabled rule layers (BASIC is always a member).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtSet(u8);

impl ExtSet {
    /// The BASIC protocol with no extensions.
    pub fn basic() -> Self {
        ExtSet(ExtKind::Basic.bit())
    }

    /// Adds an extension's rule layer.
    #[must_use]
    pub fn with(mut self, kind: ExtKind) -> Self {
        self.0 |= kind.bit();
        // The CW+M rules become legal exactly when both parents are on.
        if self.contains(ExtKind::Migratory) && self.contains(ExtKind::Competitive) {
            self.0 |= ExtKind::CompetitiveMigratory.bit();
        }
        self
    }

    /// Whether `kind`'s rules are enabled.
    pub fn contains(self, kind: ExtKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// The enabled layers, in declaration order.
    pub fn kinds(self) -> Vec<ExtKind> {
        [
            ExtKind::Basic,
            ExtKind::Prefetch,
            ExtKind::Migratory,
            ExtKind::Competitive,
            ExtKind::CompetitiveMigratory,
            ExtKind::ExclusiveClean,
            ExtKind::DirScale,
            ExtKind::Recovery,
        ]
        .into_iter()
        .filter(|k| self.contains(*k))
        .collect()
    }
}

/// One row of a transition table: from `from`, input `input` may move the
/// state to any member of `to`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The rule layer this transition belongs to.
    pub ext: ExtKind,
    /// State before the input.
    pub from: StateTag,
    /// The triggering input.
    pub input: TraceInput,
    /// The states the input may leave the block in.
    pub to: &'static [StateTag],
    /// What the transition does (rendered into the documentation).
    pub note: &'static str,
}

use CacheTag::{Dirty, Invalid, MigClean, Shared};
use DirTag::{
    BcastInval, BcastUpdating, Clean, Evicting, FetchMigRead, FetchOwn, FetchRead, Interrogating,
    Invalidating, McastInval, McastUpdating, Modified, RecallForUpdate, Updating,
};
use ExtKind as K;
use StateTag::{Cache as C, Dir as D};

const fn m(t: MsgTag) -> TraceInput {
    TraceInput::Msg(t)
}

/// The home-directory transition table: BASIC plus each extension layer.
pub static DIR_RULES: &[Rule] = &[
    // ---------------------------------------------------------- BASIC
    Rule { ext: K::Basic, from: D(Clean), input: m(MsgTag::OwnReq), to: &[D(Modified), D(Invalidating)], note: "no other copies: grant; else invalidate sharers and wait" },
    Rule { ext: K::Basic, from: D(Modified), input: m(MsgTag::ReadReq), to: &[D(FetchRead)], note: "fetch the dirty copy through the home" },
    Rule { ext: K::Basic, from: D(Modified), input: m(MsgTag::OwnReq), to: &[D(FetchOwn)], note: "fetch-invalidate the old owner, transfer ownership" },
    Rule { ext: K::Basic, from: D(Modified), input: m(MsgTag::WritebackReq), to: &[D(Clean)], note: "owner replaced the block; memory takes the data" },
    Rule { ext: K::Basic, from: D(Invalidating), input: m(MsgTag::InvalAck), to: &[D(Modified)], note: "last acknowledgment completes the ownership grant" },
    Rule { ext: K::Basic, from: D(FetchRead), input: m(MsgTag::FetchReply), to: &[D(Clean)], note: "memory updated; owner downgraded to a shared copy" },
    Rule { ext: K::Basic, from: D(FetchRead), input: m(MsgTag::WritebackReq), to: &[D(Clean)], note: "writeback crossing the fetch serves as the reply" },
    Rule { ext: K::Basic, from: D(FetchOwn), input: m(MsgTag::FetchInvalReply), to: &[D(Modified)], note: "ownership transferred to the requester" },
    Rule { ext: K::Basic, from: D(FetchOwn), input: m(MsgTag::WritebackReq), to: &[D(Modified)], note: "writeback crossing the fetch-invalidate serves as the reply" },
    // ------------------------------------------------------------- M
    Rule { ext: K::Migratory, from: D(Clean), input: m(MsgTag::ReadReq), to: &[D(Modified)], note: "migratory block with no cached copy: grant exclusively" },
    Rule { ext: K::Migratory, from: D(Modified), input: m(MsgTag::ReadReq), to: &[D(FetchMigRead)], note: "migratory block: fetch-invalidate the holder" },
    Rule { ext: K::Migratory, from: D(FetchMigRead), input: m(MsgTag::FetchInvalReply), to: &[D(Modified), D(Clean)], note: "written: pass the exclusive copy on; unwritten: revert to read sharing (CLEAN) or keep migratory (no-revert ablation)" },
    Rule { ext: K::Migratory, from: D(FetchMigRead), input: m(MsgTag::WritebackReq), to: &[D(Modified), D(Clean)], note: "crossing writeback completes the migratory read" },
    // ------------------------------------------------------------ CW
    Rule { ext: K::Competitive, from: D(Clean), input: m(MsgTag::UpdateReq), to: &[D(Updating), D(Modified), D(Clean)], note: "fan updates to other copies; none left: complete, granting exclusivity if the writer holds the only copy" },
    Rule { ext: K::Competitive, from: D(Modified), input: m(MsgTag::UpdateReq), to: &[D(RecallForUpdate)], note: "recall the dirty copy before applying the update (CW race)" },
    Rule { ext: K::Competitive, from: D(Updating), input: m(MsgTag::UpdateAck), to: &[D(Clean), D(Modified)], note: "last acknowledgment completes the update; exclusive if every other copy invalidated itself" },
    Rule { ext: K::Competitive, from: D(RecallForUpdate), input: m(MsgTag::FetchInvalReply), to: &[D(Clean), D(Modified), D(Updating)], note: "recalled; the deferred update proceeds" },
    Rule { ext: K::Competitive, from: D(RecallForUpdate), input: m(MsgTag::WritebackReq), to: &[D(Clean), D(Modified), D(Updating)], note: "crossing writeback completes the recall" },
    // ---------------------------------------------------------- CW+M
    Rule { ext: K::CompetitiveMigratory, from: D(Clean), input: m(MsgTag::UpdateReq), to: &[D(Interrogating)], note: "potentially migratory (new updater, several copies): interrogate every cache with a copy" },
    Rule { ext: K::CompetitiveMigratory, from: D(Interrogating), input: m(MsgTag::InterrogateReply), to: &[D(Updating), D(Clean), D(Modified)], note: "all copies given up: classify migratory; then deliver the pending update to the keepers" },
    // ------------------------------------------------------------- E
    Rule { ext: K::ExclusiveClean, from: D(Clean), input: m(MsgTag::ReadReq), to: &[D(Modified)], note: "no cached copies: MESI-style exclusive-clean grant" },
    // ----------------------------------------------------------- DIR
    Rule { ext: K::DirScale, from: D(Clean), input: m(MsgTag::OwnReq), to: &[D(BcastInval), D(McastInval)], note: "overflowed pointers broadcast invalidations to every node; coarse regions multicast to every member" },
    Rule { ext: K::DirScale, from: D(BcastInval), input: m(MsgTag::InvalAck), to: &[D(Modified)], note: "last broadcast acknowledgment completes the ownership grant" },
    Rule { ext: K::DirScale, from: D(McastInval), input: m(MsgTag::InvalAck), to: &[D(Modified)], note: "last region acknowledgment completes the ownership grant" },
    Rule { ext: K::DirScale, from: D(Clean), input: m(MsgTag::UpdateReq), to: &[D(BcastUpdating), D(McastUpdating)], note: "the approximate sharer set widens the update fan-out to a broadcast / region multicast" },
    Rule { ext: K::DirScale, from: D(BcastUpdating), input: m(MsgTag::UpdateAck), to: &[D(Clean)], note: "broadcast update completes (exclusivity is never inferred from an inexact set)" },
    Rule { ext: K::DirScale, from: D(McastUpdating), input: m(MsgTag::UpdateAck), to: &[D(Clean)], note: "region update completes (exclusivity is never inferred from an inexact set)" },
    Rule { ext: K::DirScale, from: D(Clean), input: m(MsgTag::ReadReq), to: &[D(Evicting)], note: "Dir_i_NB pointer overflow: recall (invalidate) the oldest tracked copy to admit the new sharer" },
    Rule { ext: K::DirScale, from: D(FetchRead), input: m(MsgTag::FetchReply), to: &[D(Evicting)], note: "the downgraded owner overflows the pointers; recall one" },
    Rule { ext: K::DirScale, from: D(Evicting), input: m(MsgTag::InvalAck), to: &[D(Clean)], note: "the recalled copy acknowledged; the eviction retires silently" },
    // ----------------------------------------------------------- REC
    Rule { ext: K::Recovery, from: D(Modified), input: TraceInput::Crash, to: &[D(Clean)], note: "the owner died: its dirty line is orphaned; memory's last-written value stands (counted as data loss)" },
    Rule { ext: K::Recovery, from: D(Clean), input: TraceInput::Crash, to: &[D(Invalidating), D(BcastInval), D(McastInval)], note: "inexact set may cover the dead node: sweep the covered live copies to restore exactness" },
    Rule { ext: K::Recovery, from: D(Invalidating), input: TraceInput::Crash, to: &[D(Modified), D(Clean)], note: "synthesized InvalAck for a dead sharer; CLEAN when the requester itself died (grant aborted)" },
    Rule { ext: K::Recovery, from: D(BcastInval), input: TraceInput::Crash, to: &[D(Modified), D(Clean)], note: "synthesized broadcast InvalAck for a dead node" },
    Rule { ext: K::Recovery, from: D(McastInval), input: TraceInput::Crash, to: &[D(Modified), D(Clean)], note: "synthesized region InvalAck for a dead node" },
    Rule { ext: K::Recovery, from: D(Invalidating), input: m(MsgTag::InvalAck), to: &[D(Clean)], note: "last live acknowledgment arrives but the requester died: abort the grant" },
    Rule { ext: K::Recovery, from: D(BcastInval), input: m(MsgTag::InvalAck), to: &[D(Clean)], note: "broadcast completion with a dead requester: abort the grant" },
    Rule { ext: K::Recovery, from: D(McastInval), input: m(MsgTag::InvalAck), to: &[D(Clean)], note: "region completion with a dead requester: abort the grant" },
    Rule { ext: K::Recovery, from: D(Updating), input: TraceInput::Crash, to: &[D(Clean), D(Modified)], note: "synthesized UpdateAck (self-invalidated) for a dead sharer" },
    Rule { ext: K::Recovery, from: D(BcastUpdating), input: TraceInput::Crash, to: &[D(Clean)], note: "synthesized broadcast UpdateAck for a dead node" },
    Rule { ext: K::Recovery, from: D(McastUpdating), input: TraceInput::Crash, to: &[D(Clean)], note: "synthesized region UpdateAck for a dead node" },
    Rule { ext: K::Recovery, from: D(Interrogating), input: TraceInput::Crash, to: &[D(Updating), D(Clean), D(Modified)], note: "synthesized InterrogateReply (copy given up) for a dead cache" },
    Rule { ext: K::Recovery, from: D(FetchRead), input: TraceInput::Crash, to: &[D(Clean), D(Evicting)], note: "the fetched owner died: memory's copy stands; the reader is granted from memory" },
    Rule { ext: K::Recovery, from: D(FetchMigRead), input: TraceInput::Crash, to: &[D(Modified), D(Clean)], note: "the migratory holder died: grant from memory, or abort if the reader died too" },
    Rule { ext: K::Recovery, from: D(FetchOwn), input: TraceInput::Crash, to: &[D(Modified), D(Clean)], note: "the old owner died: transfer from memory, or abort if the requester died too" },
    Rule { ext: K::Recovery, from: D(FetchOwn), input: m(MsgTag::FetchInvalReply), to: &[D(Clean)], note: "the reply arrives but the requester died: memory keeps the data, no grant" },
    Rule { ext: K::Recovery, from: D(FetchOwn), input: m(MsgTag::WritebackReq), to: &[D(Clean)], note: "crossing writeback with a dead requester: memory keeps the data, no grant" },
    Rule { ext: K::Recovery, from: D(RecallForUpdate), input: TraceInput::Crash, to: &[D(Clean), D(Modified), D(Updating)], note: "the recalled owner died: the deferred update proceeds against memory" },
    Rule { ext: K::Recovery, from: D(Evicting), input: TraceInput::Crash, to: &[D(Clean)], note: "the recalled copy's node died: the eviction retires" },
];

/// The processor-cache (SLC) transition table: BASIC plus each extension
/// layer.
pub static CACHE_RULES: &[Rule] = &[
    // ---------------------------------------------------------- BASIC
    Rule { ext: K::Basic, from: C(Invalid), input: m(MsgTag::ReadReply), to: &[C(Shared)], note: "read miss fill" },
    Rule { ext: K::Basic, from: C(Invalid), input: m(MsgTag::OwnAck), to: &[C(Dirty)], note: "write miss completes (data sent when the writer had no copy)" },
    Rule { ext: K::Basic, from: C(Shared), input: m(MsgTag::OwnAck), to: &[C(Dirty)], note: "upgrade completes" },
    Rule { ext: K::Basic, from: C(Shared), input: m(MsgTag::Inval), to: &[C(Invalid)], note: "invalidation on another node's ownership request" },
    Rule { ext: K::Basic, from: C(Dirty), input: m(MsgTag::Fetch), to: &[C(Shared)], note: "home fetches the dirty copy for a reader; downgrade" },
    Rule { ext: K::Basic, from: C(Dirty), input: m(MsgTag::FetchInval), to: &[C(Invalid)], note: "home transfers ownership elsewhere" },
    Rule { ext: K::Basic, from: C(Shared), input: TraceInput::Replace, to: &[C(Invalid)], note: "replacement; a hint keeps the full map exact" },
    Rule { ext: K::Basic, from: C(Dirty), input: TraceInput::Replace, to: &[C(Invalid)], note: "replacement; writeback carries the data home" },
    // ------------------------------------------------------------- M
    Rule { ext: K::Migratory, from: C(Invalid), input: m(MsgTag::ReadReply), to: &[C(MigClean), C(Dirty)], note: "exclusive grant installs MigClean; DIRTY if a write was already waiting (read-exclusive prefetch)" },
    Rule { ext: K::Migratory, from: C(MigClean), input: TraceInput::CpuWrite, to: &[C(Dirty)], note: "the payoff: first local write promotes silently, no ownership request" },
    Rule { ext: K::Migratory, from: C(MigClean), input: m(MsgTag::FetchInval), to: &[C(Invalid)], note: "the block migrates onward before being written here" },
    Rule { ext: K::Migratory, from: C(MigClean), input: m(MsgTag::Fetch), to: &[C(Shared)], note: "plain fetch after the home reverted the migratory bit" },
    Rule { ext: K::Migratory, from: C(MigClean), input: TraceInput::Replace, to: &[C(Invalid)], note: "unwritten replacement; the writeback reverts the classification" },
    // ------------------------------------------------------------ CW
    Rule { ext: K::Competitive, from: C(Shared), input: m(MsgTag::Update), to: &[C(Invalid)], note: "competitive counter exhausted: the idle copy self-invalidates" },
    Rule { ext: K::Competitive, from: C(Shared), input: m(MsgTag::UpdateDone), to: &[C(Dirty)], note: "the home granted exclusivity (writer held the only remaining copy)" },
    Rule { ext: K::Competitive, from: C(Shared), input: m(MsgTag::FetchInval), to: &[C(Invalid)], note: "a dirty-recall race resolved against this copy" },
    // ---------------------------------------------------------- CW+M
    Rule { ext: K::CompetitiveMigratory, from: C(Shared), input: m(MsgTag::Interrogate), to: &[C(Invalid)], note: "this cache gives its copy up, voting the block migratory" },
    // ------------------------------------------------------------- E
    Rule { ext: K::ExclusiveClean, from: C(Invalid), input: m(MsgTag::ReadReply), to: &[C(MigClean), C(Dirty)], note: "exclusive-clean grant; DIRTY if a write was already waiting" },
    Rule { ext: K::ExclusiveClean, from: C(MigClean), input: TraceInput::CpuWrite, to: &[C(Dirty)], note: "silent promotion of the exclusive-clean copy" },
    Rule { ext: K::ExclusiveClean, from: C(MigClean), input: m(MsgTag::Fetch), to: &[C(Shared)], note: "another node reads the exclusive-clean copy" },
    Rule { ext: K::ExclusiveClean, from: C(MigClean), input: m(MsgTag::FetchInval), to: &[C(Invalid)], note: "another node writes; the copy is recalled" },
    Rule { ext: K::ExclusiveClean, from: C(MigClean), input: TraceInput::Replace, to: &[C(Invalid)], note: "unwritten replacement of the exclusive-clean copy" },
    // ----------------------------------------------------------- REC
    Rule { ext: K::Recovery, from: C(Shared), input: TraceInput::Crash, to: &[C(Invalid)], note: "node crash wipes the cache; the copy is lost" },
    Rule { ext: K::Recovery, from: C(Dirty), input: TraceInput::Crash, to: &[C(Invalid)], note: "node crash wipes the cache; unwritten-back data is lost (counted)" },
    Rule { ext: K::Recovery, from: C(MigClean), input: TraceInput::Crash, to: &[C(Invalid)], note: "node crash wipes the cache" },
];

fn render_table(out: &mut String, rules: &[Rule]) {
    out.push_str("| From | Input | To | Layer | Effect |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in rules {
        let to: Vec<&str> = r.to.iter().map(|t| t.label()).collect();
        out.push_str(&format!(
            "| `{}` | `{}` | `{}` | {} | {} |\n",
            r.from.label(),
            r.input.label(),
            to.join("` / `"),
            r.ext.label(),
            r.note,
        ));
    }
}

/// Renders both transition tables as the markdown section embedded in
/// `docs/PROTOCOL.md` (see the `doc_tables` test, which keeps the two in
/// sync).
pub fn render_markdown() -> String {
    let mut out = String::new();
    out.push_str("Generated from `crates/core/src/proto/table.rs` — do not edit by hand;\n");
    out.push_str("run `DIREXT_BLESS=1 cargo test -p dirext-core --test doc_tables` after\n");
    out.push_str("changing the tables. Self-loop inputs (partial acknowledgment counts,\n");
    out.push_str("presence-vector updates, NACKs, stale duplicates) are not listed: the\n");
    out.push_str("tables name every transition that *changes* a state tag, and the\n");
    out.push_str("conformance checker (`proto::conformance`) validates recorded\n");
    out.push_str("executions against exactly these rows.\n\n");
    out.push_str("### Home directory\n\n");
    render_table(&mut out, DIR_RULES);
    out.push_str("\n### Processor cache\n\n");
    render_table(&mut out, CACHE_RULES);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_set_infers_the_cwm_layer() {
        let s = ExtSet::basic().with(ExtKind::Migratory);
        assert!(!s.contains(ExtKind::CompetitiveMigratory));
        let s = s.with(ExtKind::Competitive);
        assert!(s.contains(ExtKind::CompetitiveMigratory));
        assert!(s.contains(ExtKind::Basic));
    }

    #[test]
    fn tables_have_no_duplicate_rows_within_a_layer() {
        for rules in [DIR_RULES, CACHE_RULES] {
            for (i, a) in rules.iter().enumerate() {
                for b in &rules[i + 1..] {
                    assert!(
                        !(a.ext == b.ext && a.from == b.from && a.input == b.input),
                        "duplicate row: {:?} {:?} {:?}",
                        a.ext,
                        a.from,
                        a.input
                    );
                }
            }
        }
    }

    #[test]
    fn dir_rules_stay_on_the_dir_layer_and_cache_rules_on_the_cache_layer() {
        for r in DIR_RULES {
            assert!(matches!(r.from, StateTag::Dir(_)));
            assert!(r.to.iter().all(|t| matches!(t, StateTag::Dir(_))));
        }
        for r in CACHE_RULES {
            assert!(matches!(r.from, StateTag::Cache(_)));
            assert!(r.to.iter().all(|t| matches!(t, StateTag::Cache(_))));
        }
    }

    #[test]
    fn markdown_mentions_every_state() {
        let md = render_markdown();
        for s in [
            "CLEAN", "MODIFIED", "P:Interr", "MigClean", "DIRTY", "SHARED",
        ] {
            assert!(md.contains(s), "missing {s}");
        }
    }
}
