//! The table-driven protocol core.
//!
//! This module turns the coherence protocol from code into data, in three
//! layers:
//!
//! * [`table`] — the **declarative transition tables**: every legal
//!   `(state, input) -> next-state` transition of the BASIC write-invalidate
//!   protocol, for both the home directory and the processor-cache side,
//!   plus the extra transitions each paper extension (P, M, CW, CW+M and
//!   the MESI-style exclusive-clean ablation) layers on top. The tables are
//!   plain `static` data: the documentation generator renders them into
//!   `docs/PROTOCOL.md` and the conformance checker validates executions
//!   against them.
//! * [`hooks`] — the **composable extension hooks**: the
//!   [`ProtocolExt`] trait whose implementations
//!   ([`PrefetchExt`], [`MigratoryExt`],
//!   [`CompetitiveUpdateExt`],
//!   [`ExclusiveCleanExt`]) carry *all*
//!   extension-specific behavior. The BASIC transition core in
//!   [`crate::dir`] and the simulator's cache controller contain no
//!   extension flag branches: they consult an [`hooks::ExtStack`] built
//!   once from the [`crate::ProtocolConfig`], so any of the paper's eight
//!   configurations is just a different stack.
//! * [`trace`] + [`conformance`] — the **transition-trace layer**: both
//!   controllers append [`trace::TransitionRecord`]s (time, node, block,
//!   state before/after, triggering input, firing extension) to ring
//!   buffers, and the conformance checker replays a recorded trace against
//!   the tables, flagging any transition not derivable from
//!   BASIC-plus-enabled-extensions.

pub mod conformance;
pub mod hooks;
pub mod table;
pub mod trace;

pub use conformance::{check_trace, Violation};
pub use hooks::{
    CompetitiveUpdateExt, ExclusiveCleanExt, ExtOption, ExtStack, MigratoryExt, PrefetchExt,
    ProtocolExt, ReadFetch, ReadGrant, UpdateRoute, WriteMode,
};
pub use table::{ExtKind, ExtSet, Rule, CACHE_RULES, DIR_RULES};
pub use trace::{CacheTag, DirTag, MsgTag, StateTag, TraceInput, TraceRing, TransitionRecord};
