//! Structured transition tracing: compact state tags, transition records
//! and the ring buffer both controllers append to.

use dirext_trace::{BlockAddr, NodeId};

use crate::msg::MsgKind;

/// Compact home-directory state: the two stable states plus the transient
/// (pending) states, which the paper's protocol encodes while "the home
/// node is waiting for the completion of a coherence action".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirTag {
    /// The memory copy is valid (no transient operation in flight).
    Clean,
    /// Exactly one cache holds the exclusive copy.
    Modified,
    /// Invalidations outstanding for an ownership request.
    Invalidating,
    /// Fetch outstanding for a read of a dirty block.
    FetchRead,
    /// Fetch-invalidate outstanding for a migratory read.
    FetchMigRead,
    /// Fetch-invalidate outstanding for an ownership transfer.
    FetchOwn,
    /// Fetch-invalidate outstanding to recall a dirty block hit by a
    /// competitive update (CW race).
    RecallForUpdate,
    /// Update fan-out outstanding.
    Updating,
    /// CW+M migratory interrogation outstanding.
    Interrogating,
    /// Invalidations outstanding for an *overflowed* sharer set: the
    /// limited-pointer (Dir_i_B) or directoryless organization broadcast to
    /// every node.
    BcastInval,
    /// Invalidations outstanding for a coarse-vector region multicast.
    McastInval,
    /// Update fan-out outstanding over an overflowed (broadcast) set.
    BcastUpdating,
    /// Update fan-out outstanding over coarse-vector regions.
    McastUpdating,
    /// Dir_i_NB pointer recall outstanding: one tracked copy is being
    /// invalidated to free a pointer for a new sharer.
    Evicting,
}

impl DirTag {
    /// Short label used in trace listings and the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            DirTag::Clean => "CLEAN",
            DirTag::Modified => "MODIFIED",
            DirTag::Invalidating => "P:Inval",
            DirTag::FetchRead => "P:Fetch",
            DirTag::FetchMigRead => "P:FetchMig",
            DirTag::FetchOwn => "P:FetchOwn",
            DirTag::RecallForUpdate => "P:Recall",
            DirTag::Updating => "P:Update",
            DirTag::Interrogating => "P:Interr",
            DirTag::BcastInval => "B:Inval",
            DirTag::McastInval => "R:Inval",
            DirTag::BcastUpdating => "B:Update",
            DirTag::McastUpdating => "R:Update",
            DirTag::Evicting => "P:Evict",
        }
    }
}

/// Compact processor-cache (SLC) line state. `Invalid` is the absent line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTag {
    /// No copy cached.
    Invalid,
    /// Read-only copy.
    Shared,
    /// Exclusive, modified copy.
    Dirty,
    /// Exclusive, unmodified copy (migratory / exclusive-clean grant).
    MigClean,
}

impl CacheTag {
    /// Short label used in trace listings and the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            CacheTag::Invalid => "INVALID",
            CacheTag::Shared => "SHARED",
            CacheTag::Dirty => "DIRTY",
            CacheTag::MigClean => "MigClean",
        }
    }
}

/// A state tag of either controller layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateTag {
    /// Home-directory state.
    Dir(DirTag),
    /// Processor-cache line state.
    Cache(CacheTag),
}

impl StateTag {
    /// Short label used in trace listings and the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            StateTag::Dir(t) => t.label(),
            StateTag::Cache(t) => t.label(),
        }
    }
}

/// Payload-free mirror of [`MsgKind`]: the message *kind* is what selects a
/// transition-table row; payloads (word masks, data flags) do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // one-to-one with the documented MsgKind variants
pub enum MsgTag {
    ReadReq,
    OwnReq,
    UpdateReq,
    WritebackReq,
    SharedReplHint,
    ReadReply,
    OwnAck,
    UpdateDone,
    WritebackAck,
    Nack,
    Inval,
    Fetch,
    FetchInval,
    Update,
    Interrogate,
    InvalAck,
    FetchReply,
    FetchInvalReply,
    UpdateAck,
    InterrogateReply,
    AcqReq,
    AcqGrant,
    RelReq,
    RelAck,
    BarArrive,
    BarRelease,
}

impl From<MsgKind> for MsgTag {
    fn from(k: MsgKind) -> Self {
        match k {
            MsgKind::ReadReq { .. } => MsgTag::ReadReq,
            MsgKind::OwnReq { .. } => MsgTag::OwnReq,
            MsgKind::UpdateReq { .. } => MsgTag::UpdateReq,
            MsgKind::WritebackReq { .. } => MsgTag::WritebackReq,
            MsgKind::SharedReplHint => MsgTag::SharedReplHint,
            MsgKind::ReadReply { .. } => MsgTag::ReadReply,
            MsgKind::OwnAck { .. } => MsgTag::OwnAck,
            MsgKind::UpdateDone { .. } => MsgTag::UpdateDone,
            MsgKind::WritebackAck => MsgTag::WritebackAck,
            MsgKind::Nack => MsgTag::Nack,
            MsgKind::Inval => MsgTag::Inval,
            MsgKind::Fetch => MsgTag::Fetch,
            MsgKind::FetchInval => MsgTag::FetchInval,
            MsgKind::Update { .. } => MsgTag::Update,
            MsgKind::Interrogate => MsgTag::Interrogate,
            MsgKind::InvalAck => MsgTag::InvalAck,
            MsgKind::FetchReply { .. } => MsgTag::FetchReply,
            MsgKind::FetchInvalReply { .. } => MsgTag::FetchInvalReply,
            MsgKind::UpdateAck { .. } => MsgTag::UpdateAck,
            MsgKind::InterrogateReply { .. } => MsgTag::InterrogateReply,
            MsgKind::AcqReq => MsgTag::AcqReq,
            MsgKind::AcqGrant => MsgTag::AcqGrant,
            MsgKind::RelReq => MsgTag::RelReq,
            MsgKind::RelAck => MsgTag::RelAck,
            MsgKind::BarArrive { .. } => MsgTag::BarArrive,
            MsgKind::BarRelease { .. } => MsgTag::BarRelease,
        }
    }
}

impl MsgTag {
    /// Short label used in trace listings and the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            MsgTag::ReadReq => "ReadReq",
            MsgTag::OwnReq => "OwnReq",
            MsgTag::UpdateReq => "UpdateReq",
            MsgTag::WritebackReq => "WritebackReq",
            MsgTag::SharedReplHint => "SharedReplHint",
            MsgTag::ReadReply => "ReadReply",
            MsgTag::OwnAck => "OwnAck",
            MsgTag::UpdateDone => "UpdateDone",
            MsgTag::WritebackAck => "WritebackAck",
            MsgTag::Nack => "Nack",
            MsgTag::Inval => "Inval",
            MsgTag::Fetch => "Fetch",
            MsgTag::FetchInval => "FetchInval",
            MsgTag::Update => "Update",
            MsgTag::Interrogate => "Interrogate",
            MsgTag::InvalAck => "InvalAck",
            MsgTag::FetchReply => "FetchReply",
            MsgTag::FetchInvalReply => "FetchInvalReply",
            MsgTag::UpdateAck => "UpdateAck",
            MsgTag::InterrogateReply => "InterrogateReply",
            MsgTag::AcqReq => "AcqReq",
            MsgTag::AcqGrant => "AcqGrant",
            MsgTag::RelReq => "RelReq",
            MsgTag::RelAck => "RelAck",
            MsgTag::BarArrive => "BarArrive",
            MsgTag::BarRelease => "BarRelease",
        }
    }
}

/// The input that triggered a transition: a protocol message, a processor
/// access, or a cache replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceInput {
    /// A protocol message arriving at the controller.
    Msg(MsgTag),
    /// A processor read serviced by the local cache.
    CpuRead,
    /// A processor write serviced by the local cache.
    CpuWrite,
    /// A replacement (direct-mapped victim eviction).
    Replace,
    /// A node-crash fault event: the recovery layer purging a dead node's
    /// state (cache wipes, directory purges, synthesized completions).
    Crash,
}

impl TraceInput {
    /// Short label used in trace listings and the generated tables.
    pub fn label(self) -> &'static str {
        match self {
            TraceInput::Msg(m) => m.label(),
            TraceInput::CpuRead => "CpuRead",
            TraceInput::CpuWrite => "CpuWrite",
            TraceInput::Replace => "Replace",
            TraceInput::Crash => "Crash",
        }
    }
}

/// One recorded state transition of either controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Simulated time (cycles) the transition was applied.
    pub time: u64,
    /// The node whose input triggered the transition (message source or
    /// local processor).
    pub node: NodeId,
    /// The block whose state changed.
    pub block: BlockAddr,
    /// State before the input was applied.
    pub from: StateTag,
    /// State after the input was applied.
    pub to: StateTag,
    /// The triggering input.
    pub input: TraceInput,
    /// Name of the extension hook that rewrote the outcome, if any.
    pub ext: Option<&'static str>,
}

impl TransitionRecord {
    /// One-line rendering for trace listings.
    pub fn render(&self) -> String {
        format!(
            "{:>10}  n{:<2} {:>8}  {:10} -> {:10}  on {:16} {}",
            self.time,
            self.node.idx(),
            format!("{:?}", self.block),
            self.from.label(),
            self.to.label(),
            self.input.label(),
            self.ext.map(|e| format!("[{e}]")).unwrap_or_default(),
        )
    }
}

/// A bounded ring buffer of transition records.
///
/// A disabled ring (capacity 0, the default) costs one branch per
/// controller input; an enabled ring keeps the most recent `capacity`
/// records and counts what it overwrote.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    buf: Vec<TransitionRecord>,
    capacity: usize,
    /// Next write position once the buffer is full.
    head: usize,
    /// Transitions recorded over the whole run (≥ `len()`).
    total: u64,
    /// Current time stamp applied to pushed records (the timeless protocol
    /// layer has the machine set this before dispatching each input).
    now: u64,
}

impl TraceRing {
    /// A disabled ring: records nothing.
    pub fn disabled() -> Self {
        TraceRing::default()
    }

    /// An enabled ring keeping the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            ..TraceRing::default()
        }
    }

    /// Whether the ring records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity != 0
    }

    /// Sets the time stamp applied to subsequently pushed records.
    #[inline]
    pub fn set_now(&mut self, t: u64) {
        self.now = t;
    }

    /// The time stamp applied to pushed records.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Appends a record (dropping the oldest when full). No-op when
    /// disabled.
    pub fn push(&mut self, r: TransitionRecord) {
        if self.capacity == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(r);
        } else {
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TransitionRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Transitions recorded over the whole run, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records overwritten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> TransitionRecord {
        TransitionRecord {
            time: t,
            node: NodeId(0),
            block: BlockAddr::from_index(0),
            from: StateTag::Dir(DirTag::Clean),
            to: StateTag::Dir(DirTag::Modified),
            input: TraceInput::Msg(MsgTag::OwnReq),
            ext: None,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::disabled();
        assert!(!r.enabled());
        r.push(rec(1));
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_overwrites() {
        let mut r = TraceRing::with_capacity(3);
        for t in 0..5 {
            r.push(rec(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.overwritten(), 2);
        let times: Vec<u64> = r.iter().map(|x| x.time).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }
}
