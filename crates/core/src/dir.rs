//! The home-node directory controller.
//!
//! One `DirCtrl` instance lives at each node and manages the directory
//! entries of the memory blocks homed there. It is a pure protocol state
//! machine: it consumes `(source, block, MsgKind)` triples and returns the
//! messages the home node must send. Timing, versions and traffic metering
//! are applied by the machine layer.
//!
//! The state encoding matches the paper: two stable memory states (CLEAN,
//! MODIFIED) plus transient states (represented by the internal `Pending`
//! bookkeeping) while "the
//! home node is waiting for the completion of a coherence action"; a
//! sharer set (the paper's full presence-flag vector, or one of the
//! scalable organizations in [`crate::sharer`]); and, for the extensions,
//! a migratory bit, a last-writer pointer (M) and a last-updater pointer
//! (CW+M).
//!
//! All coherence fan-outs (invalidations, updates, interrogations) visit
//! their targets in ascending node-id order — part of the simulator's
//! determinism contract (see [`crate::sharer`]).

use std::collections::VecDeque;

use dirext_trace::{BlockAddr, NodeId};

use crate::blockmap::BlockMap;
use crate::error::ProtocolError;
use crate::msg::MsgKind;
use crate::sharer::{AckMask, AddOutcome, DirOrg, DirOrgError, FanoutClass, SharerSet};
use crate::proto::hooks::{
    CompetitiveUpdateExt, ExclusiveCleanExt, ExtOption, ExtStack, MigratoryExt, ReadFetch,
    ReadGrant, UpdateRoute,
};
use crate::proto::table::ExtKind;
use crate::proto::trace::{DirTag, MsgTag, StateTag, TraceInput, TraceRing, TransitionRecord};

/// A message the home node must send in response to an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirAction {
    /// Destination node.
    pub dst: NodeId,
    /// Message to send.
    pub kind: MsgKind,
}

/// Stable directory state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// The memory copy is valid.
    Clean,
    /// Exactly one cache holds the exclusive copy.
    Modified(NodeId),
}

/// Transient directory state: what the home is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    /// Invalidations outstanding for an ownership request.
    Invalidating {
        /// Send the block with the ownership acknowledgment.
        with_data: bool,
    },
    /// Fetch outstanding for a read of a dirty block.
    FetchRead,
    /// Fetch-invalidate outstanding for a migratory read.
    FetchMigRead,
    /// Fetch-invalidate outstanding for an ownership transfer.
    FetchOwn,
    /// Fetch-invalidate outstanding to recall a dirty block hit by a
    /// competitive update (CW+M race).
    RecallForUpdate {
        /// The update to apply once the block is recalled.
        dirty_words: u8,
    },
    /// Update fan-out outstanding.
    Updating,
    /// CW+M migratory interrogation outstanding.
    Interrogating {
        /// The update that triggered the interrogation.
        dirty_words: u8,
    },
    /// Dir_i_NB pointer recall outstanding: one tracked copy is being
    /// invalidated to free a pointer. Completes silently; requests queue
    /// behind it so the recalled node can never read stale data past a
    /// later ownership transfer.
    Evicting,
}

#[derive(Debug, Clone)]
struct Pending {
    kind: PendingKind,
    requester: NodeId,
    /// The node a fetch was sent to, if any (for writeback-crossing races).
    target: Option<NodeId>,
    /// Per-node mask of acknowledgments still outstanding. Tracking acks
    /// by node rather than by count makes duplicate acknowledgments
    /// idempotent: a second ack from the same node finds its bit already
    /// cleared and is dropped as stale.
    awaiting: AckMask,
    /// CW+M: at least one cache voted to keep its copy.
    keep_votes: bool,
    /// How the fan-out that opened this operation related to the true
    /// sharer set (selects the broadcast/multicast trace tags).
    fanout: FanoutClass,
    /// Recovery: the requester died (or this is a purge sweep). The
    /// operation still collects its acknowledgments — the protocol needs
    /// the copies gone — but completes without granting anything. The flag
    /// is sticky: it outlives the node's recovery, because it describes the
    /// dead *incarnation's* operation, not the node.
    abort: bool,
}

/// One directory entry — the per-block state the extension hooks inspect
/// and adjust (the transient `pending` bookkeeping stays internal to the
/// BASIC core).
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// Stable state.
    pub state: DirState,
    /// The sharer set, in the configured directory organization. May
    /// over-approximate the true copy set (never under-approximate); all
    /// fan-outs iterate it in ascending node-id order.
    pub sharers: SharerSet,
    /// M: the block is classified migratory.
    pub migratory: bool,
    /// M: the node whose write last took the block exclusive.
    pub last_writer: Option<NodeId>,
    /// CW+M: the node whose update the home last fanned out.
    pub last_updater: Option<NodeId>,
    pending: Option<Pending>,
    waiting: VecDeque<(NodeId, MsgKind)>,
}

impl DirEntry {
    /// A fresh CLEAN entry under the given directory organization.
    pub fn new(org: DirOrg) -> Self {
        DirEntry {
            state: DirState::Clean,
            sharers: org.empty_set(),
            migratory: false,
            last_writer: None,
            last_updater: None,
            pending: None,
            waiting: VecDeque::new(),
        }
    }
}

/// Counters kept by the directory controller (aggregated across all blocks
/// homed at one node; the machine sums them over nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Read requests serviced (demand + prefetch).
    pub read_reqs: u64,
    /// Ownership requests serviced.
    pub own_reqs: u64,
    /// Update requests serviced.
    pub update_reqs: u64,
    /// Writebacks received.
    pub writebacks: u64,
    /// Invalidations sent.
    pub invals_sent: u64,
    /// Update messages sent to third-party caches.
    pub updates_sent: u64,
    /// Blocks newly classified as migratory.
    pub migratory_detections: u64,
    /// Migratory classifications reverted.
    pub migratory_reverts: u64,
    /// Exclusive (migratory) read grants.
    pub exclusive_grants: u64,
    /// CW+M interrogation rounds started.
    pub interrogations: u64,
    /// Update requests that found the block dirty in a third-party cache
    /// and had to recall it before fanning out (a CW race-state: the owner
    /// gained exclusivity while the update was in flight).
    pub update_recalls: u64,
    /// Read requests serviced in two hops or locally (memory clean) — the
    /// basis of the paper's "remaining coherence misses are shorter under
    /// CW" observation.
    pub reads_clean: u64,
    /// Read requests that required a fetch from a dirty third-party cache.
    pub reads_dirty: u64,
    /// Negative acknowledgments sent (owner re-request racing its own
    /// in-flight writeback).
    pub nacks_sent: u64,
    /// Stale or duplicate messages recognized and dropped (idempotent
    /// duplicate tolerance under fault injection).
    pub stale_drops: u64,
    /// Sharer-set overflows: a limited-pointer entry ran out of pointers
    /// (Dir_i_B degrading to broadcast, or Dir_i_NB evicting a pointer).
    pub dir_overflows: u64,
    /// Coherence fan-outs widened to a full broadcast by an inexact
    /// sharer set (overflowed pointers or the directoryless organization).
    pub dir_broadcasts: u64,
    /// Dir_i_NB pointer recalls: tracked copies invalidated purely to free
    /// a pointer for a new sharer.
    pub dir_recalls: u64,
    /// Recovery: dead nodes removed surgically from exact sharer sets.
    pub purged_sharers: u64,
    /// Recovery: MODIFIED entries whose owner died — memory's last-written
    /// value stands and the entry returns to CLEAN (modeled data loss).
    pub orphan_reclaims: u64,
    /// Recovery: pending operations completed without a grant because the
    /// requester died before the acknowledgments arrived.
    pub aborted_grants: u64,
    /// Recovery: invalidation sweeps opened to purge a dead node from an
    /// inexact sharer set (the set cannot name its members, so every
    /// covered live copy is recalled to restore exactness).
    pub purge_sweeps: u64,
}

/// The directory controller for the blocks homed at one node.
///
/// # Example
///
/// ```
/// use dirext_core::dir::DirCtrl;
/// use dirext_core::msg::MsgKind;
/// use dirext_trace::{BlockAddr, NodeId};
///
/// let mut dir = DirCtrl::new(16, false, false);
/// let b = BlockAddr::from_index(1);
/// // A read miss to a clean block is answered immediately.
/// let actions = dir
///     .handle(NodeId(3), b, MsgKind::ReadReq { prefetch: false })
///     .unwrap();
/// assert_eq!(actions.len(), 1);
/// assert_eq!(actions[0].dst, NodeId(3));
/// assert!(matches!(actions[0].kind, MsgKind::ReadReply { exclusive: false }));
/// ```
#[derive(Debug)]
pub struct DirCtrl {
    nprocs: usize,
    org: DirOrg,
    exts: ExtStack,
    entries: BlockMap<DirEntry>,
    stats: DirStats,
    trace: TraceRing,
    /// Recycled wide-`AckMask` storage (machines past 64 nodes), so
    /// steady-state fan-out bookkeeping allocates nothing.
    mask_pool: Vec<Box<[u64]>>,
    /// Recovery: nodes currently purged after a crash. Fan-outs skip them
    /// (a dead node holds no copies and sends no acknowledgments); the
    /// machine sets a node at reconstruction and clears it at re-admission.
    dead: Vec<bool>,
    /// Whether the Recovery rule layer is active (a node-fault plan is
    /// installed); selects the conformance rule set.
    recovery: bool,
}

impl DirCtrl {
    /// Creates a controller for a machine of `nprocs` nodes with the given
    /// directory organization and extension stack. The BASIC transition
    /// core itself has no extension knowledge: pass [`ExtStack::new`] for
    /// the pure write-invalidate protocol, or [`ExtStack::from_protocol`]
    /// for a configured one.
    ///
    /// # Errors
    ///
    /// Returns a [`DirOrgError`] naming the organization and its node
    /// limit when it cannot represent an `nprocs`-node machine.
    pub fn with_org(nprocs: usize, org: DirOrg, exts: ExtStack) -> Result<Self, DirOrgError> {
        org.validate(nprocs)?;
        Ok(DirCtrl {
            nprocs,
            org,
            exts,
            entries: BlockMap::new(),
            stats: DirStats::default(),
            trace: TraceRing::disabled(),
            mask_pool: Vec::new(),
            dead: vec![false; nprocs],
            recovery: false,
        })
    }

    /// [`DirCtrl::with_org`] with the paper's full-map presence vector.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or exceeds the 64-node presence vector
    /// (use [`DirCtrl::with_org`] with a scalable organization for larger
    /// machines).
    pub fn with_exts(nprocs: usize, exts: ExtStack) -> Self {
        DirCtrl::with_org(nprocs, DirOrg::FullMap, exts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convenience constructor used by unit tests and examples: a machine
    /// of `nprocs` nodes with the full-map organization and the M
    /// (`migratory`) and/or CW (`competitive`) hooks installed.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or exceeds the 64-node presence vector.
    pub fn new(nprocs: usize, migratory: bool, competitive: bool) -> Self {
        let mut exts = ExtStack::new();
        if migratory {
            exts.push(Box::new(MigratoryExt::new(competitive)));
        }
        if competitive {
            exts.push(Box::new(CompetitiveUpdateExt::new(
                crate::config::CompetitiveConfig::default(),
            )));
        }
        DirCtrl::with_exts(nprocs, exts)
    }

    /// The configured directory organization.
    pub fn org(&self) -> DirOrg {
        self.org
    }

    /// The machine size this controller serves.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The rule layers a conformance replay of this controller's trace
    /// must enable: the extension stack's layers, plus the DIR layer when
    /// the organization can over-approximate (broadcasts, multicasts and
    /// pointer recalls become legal transitions).
    pub fn rule_set(&self) -> crate::proto::table::ExtSet {
        let mut set = self.exts.rule_set();
        if self.org != DirOrg::FullMap {
            set = set.with(ExtKind::DirScale);
        }
        if self.recovery {
            set = set.with(ExtKind::Recovery);
        }
        set
    }

    /// Enables or disables migratory reversion (the self-correcting part of
    /// the optimization: an unwritten exclusive copy reverts the block to
    /// ordinary sharing). On by default; the ablation bench disables it.
    pub fn set_revert(&mut self, enabled: bool) {
        self.exts.configure(ExtOption::MigratoryRevert, enabled);
    }

    /// Enables MESI-style exclusive-clean grants: a read miss to a block
    /// with no cached copies returns an exclusive copy (extension; see
    /// `ProtocolConfig::exclusive_clean`).
    pub fn set_exclusive_clean(&mut self, enabled: bool) {
        if enabled && !self.exts.contains(ExtKind::ExclusiveClean) {
            self.exts.push(Box::new(ExclusiveCleanExt));
        } else if !enabled {
            self.exts.remove(ExtKind::ExclusiveClean);
        }
    }

    /// The installed extension stack.
    pub fn exts(&self) -> &ExtStack {
        &self.exts
    }

    /// Starts recording state transitions into a ring of `capacity`
    /// records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceRing::with_capacity(capacity);
    }

    /// The transition-trace ring (disabled and empty unless
    /// [`DirCtrl::enable_trace`] was called).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Sets the time stamp applied to subsequently recorded transitions
    /// (the protocol layer is timeless; the machine layer owns the clock).
    #[inline]
    pub fn set_trace_now(&mut self, t: u64) {
        self.trace.set_now(t);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    /// Whether any block has a transient state or queued requests (the
    /// machine asserts this is false at quiescence).
    pub fn has_pending(&self) -> bool {
        self.entries
            .values()
            .any(|e| e.pending.is_some() || !e.waiting.is_empty())
    }

    /// Whether `block` has a transient state or queued requests.
    pub fn pending_op(&self, block: BlockAddr) -> bool {
        self.entries
            .get(block)
            .is_some_and(|e| e.pending.is_some() || !e.waiting.is_empty())
    }

    /// Directory view of one block for invariant checking:
    /// `(modified_owner, presence_bits, migratory)`. `None` if the block
    /// was never referenced. The presence bits cover the first 64 nodes
    /// (exact under the full map; an over-approximation under the scalable
    /// organizations — use [`DirCtrl::covers`] on larger machines).
    pub fn snapshot(&self, block: BlockAddr) -> Option<(Option<NodeId>, u64, bool)> {
        self.entries.get(block).map(|e| {
            let owner = match e.state {
                DirState::Modified(n) => Some(n),
                DirState::Clean => None,
            };
            (owner, e.sharers.low_mask(self.nprocs), e.migratory)
        })
    }

    /// Whether the directory believes node `n` may hold a copy of `block`
    /// (over-approximate: spurious coverage is legal, a missed copy is a
    /// coherence violation).
    pub fn covers(&self, block: BlockAddr, n: NodeId) -> bool {
        self.entries
            .get(block)
            .is_some_and(|e| e.sharers.may_contain(n))
    }

    /// Whether `block`'s sharer set is currently exact (coverage equals
    /// membership). Untouched blocks are trivially exact.
    pub fn entry_exact(&self, block: BlockAddr) -> bool {
        self.entries
            .get(block)
            .is_none_or(|e| e.sharers.exact_count().is_some())
    }

    /// Whether `block`'s sharer set certainly equals exactly `{n}` — only
    /// provable under an exact organization (the invariant checker uses
    /// this for the single-writer property).
    pub fn sole_sharer(&self, block: BlockAddr, n: NodeId) -> bool {
        self.entries
            .get(block)
            .is_some_and(|e| e.sharers.sole_sharer(n))
    }

    /// Iterates over all blocks this controller has entries for, in
    /// ascending block order. The dense entry arena makes this
    /// deterministic across runs and processes — the order feeds invariant
    /// audits and diagnostics, which must not vary with a hasher seed.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.entries.keys()
    }

    /// Describes the in-flight directory operations (transient states and
    /// queued requests) for diagnostic snapshots, sorted by block.
    pub fn pending_ops(&self) -> Vec<(BlockAddr, String)> {
        // BlockMap iteration is already in ascending block order.
        self.entries
            .iter()
            .filter(|(_, e)| e.pending.is_some() || !e.waiting.is_empty())
            .map(|(b, e)| {
                let desc = match &e.pending {
                    Some(p) => format!(
                        "{:?} for {:?} (target {:?}, awaiting {:#x}, {} queued)",
                        p.kind,
                        p.requester,
                        p.target,
                        p.awaiting.low_bits(),
                        e.waiting.len()
                    ),
                    None => format!("{} queued requests", e.waiting.len()),
                };
                (b, desc)
            })
            .collect()
    }

    /// Processes one incoming message and returns the outgoing messages.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] instead of panicking when a message has
    /// no legal transition in the current state. Recognizable *stale
    /// duplicates* (replayed acks and replies whose operation already
    /// completed) are not errors: they are dropped and counted in
    /// [`DirStats::stale_drops`], which is what makes the controller safe
    /// under message duplication by the fault-injection layer.
    pub fn handle(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        kind: MsgKind,
    ) -> Result<Vec<DirAction>, ProtocolError> {
        let mut actions = Vec::new();
        self.handle_into(src, block, kind, &mut actions)?;
        Ok(actions)
    }

    /// [`DirCtrl::handle`], appending the outgoing messages to a
    /// caller-provided buffer instead of allocating a fresh one.
    ///
    /// This is the simulator's hot path: the dispatch loop keeps one
    /// recycled buffer per machine, so steady-state directory processing
    /// performs no heap allocation at all.
    ///
    /// # Errors
    ///
    /// As [`DirCtrl::handle`]. On error the buffer's contents are
    /// unspecified (the caller abandons the transaction anyway).
    pub fn handle_into(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        kind: MsgKind,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        debug_assert!(src.idx() < self.nprocs);
        // `Option<Option<NodeId>>`: outer = a pending op exists, inner =
        // its fetch target (extracted so the `Pending` itself — which owns
        // an ack mask — is never copied on the hot path).
        let pending_target = self
            .entries
            .get(block)
            .and_then(|e| e.pending.as_ref())
            .map(|p| p.target);

        match kind {
            // Replacement hints bypass the queue entirely. A hint crossing
            // an exclusivity grant (the copy was replaced while the grant
            // was in flight) must not corrupt the MODIFIED entry — the
            // cache resolves that race with an unwritten writeback.
            MsgKind::SharedReplHint => {
                if let Some(e) = self.entries.get_mut(block) {
                    if !matches!(e.state, DirState::Modified(owner) if owner == src) {
                        e.sharers.remove(src);
                    }
                }
                return Ok(());
            }
            // A writeback crossing a fetch we sent to the same node serves
            // as the fetch reply.
            MsgKind::WritebackReq { written } => {
                if let Some(target) = pending_target {
                    if target == Some(src) {
                        self.stats.writebacks += 1;
                        actions.push(DirAction {
                            dst: src,
                            kind: MsgKind::WritebackAck,
                        });
                        // The owner replaced the block: it keeps no copy.
                        let pre = self.pre_tag(block);
                        self.complete_fetch(src, block, None, written, false, actions)?;
                        self.trace_dir(src, block, pre, kind);
                        self.drain_queue(block, actions)?;
                        return Ok(());
                    }
                    // Unrelated writeback while busy: queue it.
                    self.entry(block).waiting.push_back((src, kind));
                    return Ok(());
                }
                self.process_request(src, block, kind, actions)?;
                self.drain_queue(block, actions)?;
                return Ok(());
            }
            _ => {}
        }

        if kind.queues_at_home() {
            if pending_target.is_some() {
                self.entry(block).waiting.push_back((src, kind));
                return Ok(());
            }
            self.process_request(src, block, kind, actions)?;
        } else {
            self.process_reply(src, block, kind, actions)?;
        }
        self.drain_queue(block, actions)?;
        Ok(())
    }

    fn entry(&mut self, block: BlockAddr) -> &mut DirEntry {
        let org = self.org;
        self.entries.get_or_insert_with(block, || DirEntry::new(org))
    }

    /// Takes down `block`'s pending operation, returning its wide ack-mask
    /// storage (if any) to the recycle pool.
    fn clear_pending(&mut self, block: BlockAddr) {
        let DirCtrl {
            entries,
            mask_pool,
            org,
            ..
        } = self;
        let e = entries.get_or_insert_with(block, || DirEntry::new(*org));
        if let Some(p) = e.pending.take() {
            p.awaiting.recycle(mask_pool);
        }
    }

    /// Runs a hook dispatch with the entry, the extension stack and the
    /// stats borrowed simultaneously (split borrow of `self`).
    fn with_entry_exts<R>(
        &mut self,
        block: BlockAddr,
        f: impl FnOnce(&mut DirEntry, &mut ExtStack, &mut DirStats) -> R,
    ) -> R {
        let DirCtrl {
            entries,
            exts,
            stats,
            org,
            ..
        } = self;
        let e = entries.get_or_insert_with(block, || DirEntry::new(*org));
        f(e, exts, stats)
    }

    /// The transition-table tag for a block's current directory state
    /// (absent entries are CLEAN; a pending operation shadows the stable
    /// state).
    fn dir_tag(&self, block: BlockAddr) -> DirTag {
        match self.entries.get(block) {
            None => DirTag::Clean,
            Some(e) => match &e.pending {
                Some(p) => match p.kind {
                    PendingKind::Invalidating { .. } => match p.fanout {
                        FanoutClass::Exact => DirTag::Invalidating,
                        FanoutClass::Broadcast => DirTag::BcastInval,
                        FanoutClass::Multicast => DirTag::McastInval,
                    },
                    PendingKind::FetchRead => DirTag::FetchRead,
                    PendingKind::FetchMigRead => DirTag::FetchMigRead,
                    PendingKind::FetchOwn => DirTag::FetchOwn,
                    PendingKind::RecallForUpdate { .. } => DirTag::RecallForUpdate,
                    PendingKind::Updating => match p.fanout {
                        FanoutClass::Exact => DirTag::Updating,
                        FanoutClass::Broadcast => DirTag::BcastUpdating,
                        FanoutClass::Multicast => DirTag::McastUpdating,
                    },
                    PendingKind::Interrogating { .. } => DirTag::Interrogating,
                    PendingKind::Evicting => DirTag::Evicting,
                },
                None => match e.state {
                    DirState::Clean => DirTag::Clean,
                    DirState::Modified(_) => DirTag::Modified,
                },
            },
        }
    }

    /// Captures the pre-transition tag; `None` when tracing is off, so the
    /// disabled cost is a single branch.
    #[inline]
    fn pre_tag(&self, block: BlockAddr) -> Option<DirTag> {
        if self.trace.enabled() {
            Some(self.dir_tag(block))
        } else {
            None
        }
    }

    /// Records the state transition caused by one input message. Always
    /// drains the extension-attribution slot (even with tracing off) so a
    /// hook firing can never be misattributed to a later request.
    fn trace_dir(&mut self, src: NodeId, block: BlockAddr, pre: Option<DirTag>, kind: MsgKind) {
        let fired = self.exts.take_fired();
        let Some(pre) = pre else { return };
        let post = self.dir_tag(block);
        if pre == post {
            return;
        }
        let time = self.trace.now();
        self.trace.push(TransitionRecord {
            time,
            node: src,
            block,
            from: StateTag::Dir(pre),
            to: StateTag::Dir(post),
            input: TraceInput::Msg(MsgTag::from(kind)),
            ext: fired,
        });
    }

    fn owner_of(&self, block: BlockAddr) -> Option<NodeId> {
        match self.entries.get(block).map(|e| e.state) {
            Some(DirState::Modified(n)) => Some(n),
            _ => None,
        }
    }

    fn drain_queue(
        &mut self,
        block: BlockAddr,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        loop {
            let next = {
                let e = self.entry(block);
                if e.pending.is_some() {
                    return Ok(());
                }
                e.waiting.pop_front()
            };
            match next {
                Some((src, kind)) => self.process_request(src, block, kind, actions)?,
                None => return Ok(()),
            }
        }
    }

    fn process_request(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        kind: MsgKind,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        let pre = self.pre_tag(block);
        let r = self.dispatch_request(src, block, kind, actions);
        self.trace_dir(src, block, pre, kind);
        r
    }

    fn dispatch_request(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        kind: MsgKind,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        match kind {
            MsgKind::ReadReq { .. } => self.read_req(src, block, actions),
            MsgKind::OwnReq { need_data } => self.own_req(src, block, need_data, actions),
            MsgKind::UpdateReq { dirty_words } => self.update_req(src, block, dirty_words, actions),
            MsgKind::WritebackReq { written } => {
                if self.owner_of(block) == Some(src) {
                    self.stats.writebacks += 1;
                    self.apply_writeback(src, block, written);
                } else {
                    // Duplicate writeback: the original already cleared
                    // ownership. Acknowledge idempotently.
                    self.stats.stale_drops += 1;
                }
                actions.push(DirAction {
                    dst: src,
                    kind: MsgKind::WritebackAck,
                });
            }
            _ => {
                return Err(ProtocolError::UnexpectedMessage {
                    src,
                    block,
                    kind,
                    context: "home request",
                })
            }
        }
        Ok(())
    }

    fn read_req(&mut self, src: NodeId, block: BlockAddr, actions: &mut Vec<DirAction>) {
        self.stats.read_reqs += 1;
        let state = self.entry(block).state;
        match state {
            DirState::Clean => {
                self.stats.reads_clean += 1;
                // BASIC grants a shared copy; extensions (migratory,
                // exclusive-clean) may upgrade the grant.
                let mut grant = ReadGrant::shared();
                self.with_entry_exts(block, |e, exts, stats| {
                    exts.read_clean(e, src, stats, &mut grant)
                });
                let outcome = {
                    let e = self.entry(block);
                    let outcome = e.sharers.add(src);
                    if grant.exclusive {
                        e.state = DirState::Modified(src);
                        if grant.record_writer {
                            e.last_writer = Some(src);
                        }
                    }
                    outcome
                };
                actions.push(DirAction {
                    dst: src,
                    kind: MsgKind::ReadReply {
                        exclusive: grant.exclusive,
                    },
                });
                self.note_add_outcome(block, outcome, actions);
            }
            DirState::Modified(owner) if owner == src => {
                // The owner's writeback is still in flight: NACK so the
                // cache retries after a backoff, instead of blocking the
                // entry on a message that injected faults may have delayed
                // arbitrarily (or lost — then the retry budget, not this
                // entry, bounds the damage).
                self.stats.nacks_sent += 1;
                actions.push(DirAction {
                    dst: src,
                    kind: MsgKind::Nack,
                });
            }
            DirState::Modified(owner) => {
                self.stats.reads_dirty += 1;
                // BASIC fetches the dirty copy; the migratory extension
                // redirects to a fetch-invalidate that passes the block on.
                let mut mode = ReadFetch::Plain;
                self.with_entry_exts(block, |e, exts, _| exts.read_modified(e, &mut mode));
                let (fetch, pkind) = match mode {
                    ReadFetch::Invalidating => (MsgKind::FetchInval, PendingKind::FetchMigRead),
                    ReadFetch::Plain => (MsgKind::Fetch, PendingKind::FetchRead),
                };
                actions.push(DirAction {
                    dst: owner,
                    kind: fetch,
                });
                self.entry(block).pending = Some(Pending {
                    kind: pkind,
                    requester: src,
                    target: Some(owner),
                    awaiting: AckMask::Inline(0),
                    keep_votes: false,
                    fanout: FanoutClass::Exact,
                    abort: false,
                });
            }
        }
    }

    /// Applies the side effects of a sharer-set [`AddOutcome`]: counts a
    /// Dir_i_B overflow, or opens the Dir_i_NB pointer recall — an `Inval`
    /// to the evicted victim plus an `Evicting` pending that holds the
    /// entry (queueing subsequent requests) until the victim acknowledges,
    /// so the recalled copy can never be read stale past a later ownership
    /// transfer.
    fn note_add_outcome(
        &mut self,
        block: BlockAddr,
        outcome: AddOutcome,
        actions: &mut Vec<DirAction>,
    ) {
        match outcome {
            AddOutcome::Tracked => {}
            AddOutcome::Overflowed => self.stats.dir_overflows += 1,
            AddOutcome::Evicted(victim) => {
                self.stats.dir_overflows += 1;
                self.stats.dir_recalls += 1;
                actions.push(DirAction {
                    dst: victim,
                    kind: MsgKind::Inval,
                });
                let mut awaiting = AckMask::empty(self.nprocs, &mut self.mask_pool);
                awaiting.set(victim);
                let e = self.entry(block);
                debug_assert!(e.pending.is_none(), "recall while an operation is open");
                debug_assert_eq!(e.state, DirState::Clean, "recall from a non-CLEAN entry");
                e.pending = Some(Pending {
                    kind: PendingKind::Evicting,
                    requester: victim,
                    target: None,
                    awaiting,
                    keep_votes: false,
                    fanout: FanoutClass::Exact,
                    abort: false,
                });
            }
        }
    }

    fn own_req(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        need_data: bool,
        actions: &mut Vec<DirAction>,
    ) {
        self.stats.own_reqs += 1;
        // Sharing-pattern detection (the migratory extension watches
        // ownership requests arriving on read-shared blocks).
        self.with_entry_exts(block, |e, exts, stats| exts.on_own_lookup(e, src, stats));
        let state = self.entry(block).state;
        match state {
            DirState::Clean => {
                // Data may be elided only on `certainly_contains`: with an
                // exact set, a copy invalidated while this request was in
                // flight is also *removed* from the set, so membership at
                // processing time proves the copy survived. An inexact set
                // cannot distinguish "still holds it" from spurious
                // coverage (the requester's copy may have died to a
                // broadcast wave after it sent `need_data: false`), so the
                // grant must carry data.
                let had_copy = self.entry(block).sharers.certainly_contains(src);
                let with_data = !had_copy || need_data;
                let DirCtrl {
                    nprocs,
                    entries,
                    stats,
                    mask_pool,
                    org,
                    dead,
                    ..
                } = self;
                let e = entries.get_or_insert_with(block, || DirEntry::new(*org));
                let fanout = e.sharers.fanout_class();
                let mut awaiting = AckMask::empty(*nprocs, mask_pool);
                let mut sent = 0u64;
                e.sharers.for_each_target(*nprocs, Some(src), |t| {
                    // A purged node holds no copy and would never ack.
                    if dead[t.idx()] {
                        return;
                    }
                    actions.push(DirAction {
                        dst: t,
                        kind: MsgKind::Inval,
                    });
                    awaiting.set(t);
                    sent += 1;
                });
                if sent == 0 {
                    awaiting.recycle(mask_pool);
                    e.sharers.clear();
                    let _ = e.sharers.add(src);
                    e.state = DirState::Modified(src);
                    e.last_writer = Some(src);
                    actions.push(DirAction {
                        dst: src,
                        kind: MsgKind::OwnAck { with_data },
                    });
                } else {
                    stats.invals_sent += sent;
                    if fanout == FanoutClass::Broadcast {
                        stats.dir_broadcasts += 1;
                    }
                    e.pending = Some(Pending {
                        kind: PendingKind::Invalidating { with_data },
                        requester: src,
                        target: None,
                        awaiting,
                        keep_votes: false,
                        fanout,
                        abort: false,
                    });
                }
            }
            DirState::Modified(owner) if owner == src => {
                // Owner re-write racing its own in-flight writeback: NACK
                // and let the cache retry (see `read_req`).
                self.stats.nacks_sent += 1;
                actions.push(DirAction {
                    dst: src,
                    kind: MsgKind::Nack,
                });
            }
            DirState::Modified(owner) => {
                actions.push(DirAction {
                    dst: owner,
                    kind: MsgKind::FetchInval,
                });
                self.entry(block).pending = Some(Pending {
                    kind: PendingKind::FetchOwn,
                    requester: src,
                    target: Some(owner),
                    awaiting: AckMask::Inline(0),
                    keep_votes: false,
                    fanout: FanoutClass::Exact,
                    abort: false,
                });
            }
        }
    }

    fn update_req(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        dirty_words: u8,
        actions: &mut Vec<DirAction>,
    ) {
        self.stats.update_reqs += 1;
        let state = self.entry(block).state;
        match state {
            DirState::Modified(owner) if owner == src => {
                // A stale write-cache entry for a block we now own
                // exclusively: the owner's copy is newer, nothing to do.
                actions.push(DirAction {
                    dst: src,
                    kind: MsgKind::UpdateDone { exclusive: false },
                });
            }
            DirState::Modified(owner) => {
                self.stats.update_recalls += 1;
                actions.push(DirAction {
                    dst: owner,
                    kind: MsgKind::FetchInval,
                });
                self.entry(block).pending = Some(Pending {
                    kind: PendingKind::RecallForUpdate { dirty_words },
                    requester: src,
                    target: Some(owner),
                    awaiting: AckMask::Inline(0),
                    keep_votes: false,
                    fanout: FanoutClass::Exact,
                    abort: false,
                });
            }
            DirState::Clean => {
                // BASIC-CW fans the update out; the migratory extension
                // composed with CW reroutes through an interrogation round.
                let mut route = UpdateRoute::Fanout;
                self.with_entry_exts(block, |e, exts, _| exts.update_route(e, src, &mut route));
                if route == UpdateRoute::Interrogate {
                    // The M hook only routes here when the sharer count is
                    // exactly known (> 1), so this fan-out is always exact.
                    self.stats.interrogations += 1;
                    let sent = {
                        let DirCtrl {
                            nprocs,
                            entries,
                            mask_pool,
                            org,
                            dead,
                            ..
                        } = self;
                        let e = entries.get_or_insert_with(block, || DirEntry::new(*org));
                        let mut awaiting = AckMask::empty(*nprocs, mask_pool);
                        let mut sent = 0u64;
                        e.sharers.for_each_target(*nprocs, None, |t| {
                            if dead[t.idx()] {
                                return;
                            }
                            actions.push(DirAction {
                                dst: t,
                                kind: MsgKind::Interrogate,
                            });
                            awaiting.set(t);
                            sent += 1;
                        });
                        if sent == 0 {
                            awaiting.recycle(mask_pool);
                        } else {
                            e.pending = Some(Pending {
                                kind: PendingKind::Interrogating { dirty_words },
                                requester: src,
                                target: None,
                                awaiting,
                                keep_votes: false,
                                fanout: FanoutClass::Exact,
                                abort: false,
                            });
                        }
                        sent
                    };
                    // Every interrogation target was purged: nobody is left
                    // to vote, fall through to the plain fan-out.
                    if sent == 0 {
                        self.start_update_fanout(src, block, dirty_words, actions);
                    }
                } else {
                    self.start_update_fanout(src, block, dirty_words, actions);
                }
            }
        }
    }

    fn start_update_fanout(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        dirty_words: u8,
        actions: &mut Vec<DirAction>,
    ) {
        let fanned_out = {
            let DirCtrl {
                nprocs,
                entries,
                stats,
                mask_pool,
                org,
                dead,
                ..
            } = self;
            let e = entries.get_or_insert_with(block, || DirEntry::new(*org));
            e.last_updater = Some(src);
            e.last_writer = Some(src);
            let fanout = e.sharers.fanout_class();
            let mut awaiting = AckMask::empty(*nprocs, mask_pool);
            let mut sent = 0u64;
            e.sharers.for_each_target(*nprocs, Some(src), |t| {
                if dead[t.idx()] {
                    return;
                }
                actions.push(DirAction {
                    dst: t,
                    kind: MsgKind::Update { dirty_words },
                });
                awaiting.set(t);
                sent += 1;
            });
            if sent == 0 {
                awaiting.recycle(mask_pool);
                false
            } else {
                stats.updates_sent += sent;
                if fanout == FanoutClass::Broadcast {
                    stats.dir_broadcasts += 1;
                }
                e.pending = Some(Pending {
                    kind: PendingKind::Updating,
                    requester: src,
                    target: None,
                    awaiting,
                    keep_votes: false,
                    fanout,
                    abort: false,
                });
                true
            }
        };
        if !fanned_out {
            actions.push(DirAction {
                dst: src,
                kind: self.finish_update(src, block),
            });
        }
    }

    /// Completes an update with no remaining third-party copies. If the
    /// writer itself still holds a copy, the home grants it exclusive
    /// ownership so that further writes to the (now effectively private)
    /// block need no protocol transactions — the competitive-update
    /// protocol degenerates gracefully to write-invalidate.
    fn finish_update(&mut self, writer: NodeId, block: BlockAddr) -> MsgKind {
        let e = self.entry(block);
        debug_assert_eq!(e.state, DirState::Clean);
        // Exclusivity demands certainty: an inexact organization never
        // answers `sole_sharer`, so CW simply keeps updating under it.
        if e.sharers.sole_sharer(writer) {
            e.state = DirState::Modified(writer);
            e.last_writer = Some(writer);
            MsgKind::UpdateDone { exclusive: true }
        } else {
            MsgKind::UpdateDone { exclusive: false }
        }
    }

    /// Applies an owner's writeback; callers verify `src` is the owner
    /// (duplicate writebacks from past owners are filtered upstream).
    fn apply_writeback(&mut self, src: NodeId, block: BlockAddr, written: bool) {
        {
            let e = self.entry(block);
            debug_assert_eq!(e.state, DirState::Modified(src), "writeback from non-owner");
            e.state = DirState::Clean;
            e.sharers.clear();
        }
        // Self-correction: the migratory extension reverts the
        // classification when the holder never wrote the block.
        self.with_entry_exts(block, |e, exts, stats| exts.on_writeback(e, written, stats));
    }

    /// Completes a Fetch/FetchInval-style pending operation once the data
    /// (fetch reply or crossing writeback) arrives from `from`.
    ///
    /// `reply` is the wire message for actual fetch replies (checked
    /// against the pending kind so a stale duplicate can never complete a
    /// newer mismatched operation) and `None` for a crossing writeback,
    /// which legitimately completes any fetch kind. Anything that does not
    /// line up — no pending op, wrong target, wrong reply kind — is a
    /// stale duplicate: dropped and counted, never applied.
    fn complete_fetch(
        &mut self,
        from: NodeId,
        block: BlockAddr,
        reply: Option<MsgKind>,
        written: bool,
        owner_retains: bool,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        let (pkind, requester, ptarget, aborted) = match self.entry(block).pending.as_ref() {
            Some(p) => (p.kind, p.requester, p.target, p.abort),
            None => {
                self.stats.stale_drops += 1;
                return Ok(());
            }
        };
        let kind_matches = match reply {
            None => true,
            Some(r) => reply_matches(r, pkind),
        };
        if ptarget != Some(from) || !kind_matches {
            self.stats.stale_drops += 1;
            return Ok(());
        }
        if aborted {
            // The requester died while the fetch was in flight: take the
            // data home (the machine layer already merged the version) but
            // grant nothing. The old owner keeps a shared copy only if the
            // reply was a downgrade rather than an invalidation.
            let e = self.entry(block);
            e.state = DirState::Clean;
            e.sharers.remove(from);
            if owner_retains {
                let _ = e.sharers.add(from);
            }
            self.stats.aborted_grants += 1;
            self.clear_pending(block);
            return Ok(());
        }
        // A deferred Dir_i_NB recall: the downgrade re-add below may
        // overflow the pointers, but its eviction pending can only open
        // once this fetch's pending is retired.
        let mut deferred = AddOutcome::Tracked;
        match pkind {
            PendingKind::FetchRead => {
                let e = self.entry(block);
                e.state = DirState::Clean;
                e.sharers.remove(from);
                if owner_retains {
                    // The old owner downgraded to a shared copy.
                    let _ = e.sharers.add(from);
                }
                deferred = e.sharers.add(requester);
                actions.push(DirAction {
                    dst: requester,
                    kind: MsgKind::ReadReply { exclusive: false },
                });
            }
            PendingKind::FetchMigRead => {
                self.entry(block).sharers.remove(from);
                // An unwritten migratory fetch asks the extension whether
                // the classification should self-correct.
                let revert = !written && self.exts.unwritten_migratory_fetch();
                if revert {
                    // The previous holder never wrote: the pattern changed;
                    // revert to ordinary read sharing.
                    let e = self.entry(block);
                    e.migratory = false;
                    e.state = DirState::Clean;
                    e.sharers.clear();
                    let _ = e.sharers.add(requester);
                    self.stats.migratory_reverts += 1;
                    actions.push(DirAction {
                        dst: requester,
                        kind: MsgKind::ReadReply { exclusive: false },
                    });
                } else {
                    // Written (the usual hand-off) or reversion disabled
                    // (ablation): pass the block on exclusively,
                    // invalidations and all.
                    let e = self.entry(block);
                    e.state = DirState::Modified(requester);
                    e.sharers.clear();
                    let _ = e.sharers.add(requester);
                    e.last_writer = Some(requester);
                    self.stats.exclusive_grants += 1;
                    actions.push(DirAction {
                        dst: requester,
                        kind: MsgKind::ReadReply { exclusive: true },
                    });
                }
            }
            PendingKind::FetchOwn => {
                let e = self.entry(block);
                e.state = DirState::Modified(requester);
                e.sharers.clear();
                let _ = e.sharers.add(requester);
                e.last_writer = Some(requester);
                actions.push(DirAction {
                    dst: requester,
                    kind: MsgKind::OwnAck { with_data: true },
                });
            }
            PendingKind::RecallForUpdate { dirty_words } => {
                let e = self.entry(block);
                e.state = DirState::Clean;
                e.sharers.clear();
                if e.migratory {
                    e.migratory = false;
                    self.stats.migratory_reverts += 1;
                }
                self.clear_pending(block);
                self.start_update_fanout(requester, block, dirty_words, actions);
                return Ok(());
            }
            // Fan-out pendings never set `target`, so the guard above
            // already rejected them as stale.
            PendingKind::Invalidating { .. }
            | PendingKind::Updating
            | PendingKind::Interrogating { .. }
            | PendingKind::Evicting => {
                self.stats.stale_drops += 1;
                return Ok(());
            }
        }
        self.clear_pending(block);
        self.note_add_outcome(block, deferred, actions);
        Ok(())
    }

    /// Whether `src` has an outstanding-ack bit for a pending op of the
    /// kind selected by `pred`. If not, the incoming ack is stale.
    fn ack_expected(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        pred: fn(PendingKind) -> bool,
    ) -> bool {
        matches!(
            self.entry(block).pending.as_ref(),
            Some(p) if pred(p.kind) && p.awaiting.test(src)
        )
    }

    fn process_reply(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        kind: MsgKind,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        let pre = self.pre_tag(block);
        let r = self.dispatch_reply(src, block, kind, actions);
        self.trace_dir(src, block, pre, kind);
        r
    }

    fn dispatch_reply(
        &mut self,
        src: NodeId,
        block: BlockAddr,
        kind: MsgKind,
        actions: &mut Vec<DirAction>,
    ) -> Result<(), ProtocolError> {
        match kind {
            MsgKind::InvalAck => {
                // A recall ack retires a Dir_i_NB eviction silently.
                if self.ack_expected(src, block, |k| matches!(k, PendingKind::Evicting)) {
                    let done = {
                        let e = self.entry(block);
                        e.sharers.remove(src);
                        let p = e.pending.as_mut().expect("checked by ack_expected");
                        p.awaiting.clear(src);
                        p.awaiting.is_empty()
                    };
                    if done {
                        self.clear_pending(block);
                    }
                    return Ok(());
                }
                if !self.ack_expected(src, block, |k| {
                    matches!(k, PendingKind::Invalidating { .. })
                }) {
                    self.stats.stale_drops += 1;
                    return Ok(());
                }
                let (done, aborted) = {
                    let e = self.entry(block);
                    e.sharers.remove(src);
                    let p = e.pending.as_mut().expect("checked by ack_expected");
                    p.awaiting.clear(src);
                    if p.awaiting.is_empty() {
                        if p.abort {
                            // Every covered copy is now invalidated but the
                            // requester died (or this was a purge sweep):
                            // the set collapses to exactly-empty and the
                            // entry stays CLEAN with nothing granted.
                            e.sharers.clear();
                            (true, true)
                        } else {
                            let (requester, with_data) = match p.kind {
                                PendingKind::Invalidating { with_data } => (p.requester, with_data),
                                _ => unreachable!("checked by ack_expected"),
                            };
                            e.sharers.clear();
                            let _ = e.sharers.add(requester);
                            e.state = DirState::Modified(requester);
                            e.last_writer = Some(requester);
                            actions.push(DirAction {
                                dst: requester,
                                kind: MsgKind::OwnAck { with_data },
                            });
                            (true, false)
                        }
                    } else {
                        (false, false)
                    }
                };
                if done {
                    if aborted {
                        self.stats.aborted_grants += 1;
                    }
                    self.clear_pending(block);
                }
            }
            MsgKind::FetchReply { written } => {
                self.complete_fetch(src, block, Some(kind), written, true, actions)?;
            }
            MsgKind::FetchInvalReply { written } => {
                self.complete_fetch(src, block, Some(kind), written, false, actions)?;
            }
            MsgKind::UpdateAck { invalidated } => {
                if !self.ack_expected(src, block, |k| matches!(k, PendingKind::Updating)) {
                    self.stats.stale_drops += 1;
                    return Ok(());
                }
                let finish = {
                    let e = self.entry(block);
                    if invalidated {
                        e.sharers.remove(src);
                    }
                    let p = e.pending.as_mut().expect("checked by ack_expected");
                    p.awaiting.clear(src);
                    p.awaiting.is_empty().then_some((p.requester, p.abort))
                };
                if let Some((requester, aborted)) = finish {
                    self.clear_pending(block);
                    if aborted {
                        // The writer died mid-fan-out: the updates were
                        // applied (or the copies invalidated), nothing to
                        // grant and nobody to tell.
                        self.stats.aborted_grants += 1;
                        return Ok(());
                    }
                    let done = self.finish_update(requester, block);
                    actions.push(DirAction {
                        dst: requester,
                        kind: done,
                    });
                }
            }
            MsgKind::InterrogateReply { keep } => {
                if !self.ack_expected(src, block, |k| {
                    matches!(k, PendingKind::Interrogating { .. })
                }) {
                    self.stats.stale_drops += 1;
                    return Ok(());
                }
                let finish = {
                    let e = self.entry(block);
                    if !keep {
                        e.sharers.remove(src);
                    }
                    let p = e.pending.as_mut().expect("checked by ack_expected");
                    if keep {
                        p.keep_votes = true;
                    }
                    p.awaiting.clear(src);
                    if p.awaiting.is_empty() {
                        match p.kind {
                            PendingKind::Interrogating { dirty_words } => {
                                Some((p.requester, dirty_words, !p.keep_votes, p.abort))
                            }
                            _ => unreachable!("checked by ack_expected"),
                        }
                    } else {
                        None
                    }
                };
                if let Some((requester, dirty_words, all_gave_up, aborted)) = finish {
                    self.clear_pending(block);
                    if aborted {
                        // The interrogating writer died: the votes are moot
                        // and no update follows.
                        self.stats.aborted_grants += 1;
                        return Ok(());
                    }
                    if all_gave_up {
                        // "For the block to be deemed migratory, all caches
                        // must give up their copies."
                        let e = self.entry(block);
                        e.migratory = true;
                        self.stats.migratory_detections += 1;
                    }
                    self.start_update_fanout(requester, block, dirty_words, actions);
                }
            }
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    src,
                    block,
                    kind: other,
                    context: "home reply",
                })
            }
        }
        Ok(())
    }

    // ----------------------------------------------------- crash recovery

    /// Enables the Recovery rule layer for conformance replay (called once
    /// when a node-fault plan is installed, so fault-free runs keep the
    /// stricter rule set).
    pub fn enable_recovery(&mut self) {
        self.recovery = true;
    }

    /// Marks node `n` dead (reconstruction) or live again (re-admission).
    /// While dead, fan-outs skip the node: it holds no copies and sends no
    /// acknowledgments.
    pub fn set_node_dead(&mut self, n: NodeId, dead: bool) {
        self.dead[n.idx()] = dead;
    }

    /// Records a Crash-input transition (the recovery layer's analogue of
    /// [`DirCtrl::trace_dir`]). Drains the extension-attribution slot so a
    /// hook that fired during a synthesized completion is not misattributed
    /// to a later request.
    fn trace_crash(&mut self, node: NodeId, block: BlockAddr, pre: Option<DirTag>) {
        let _ = self.exts.take_fired();
        let Some(pre) = pre else { return };
        let post = self.dir_tag(block);
        if pre == post {
            return;
        }
        let time = self.trace.now();
        self.trace.push(TransitionRecord {
            time,
            node,
            block,
            from: StateTag::Dir(pre),
            to: StateTag::Dir(post),
            input: TraceInput::Crash,
            ext: None,
        });
    }

    /// Epoch-fenced directory reconstruction after node `n` crashed.
    ///
    /// Call [`DirCtrl::set_node_dead`] first; then, for every block this
    /// directory has an entry for (ascending order, so the purge is
    /// deterministic):
    ///
    /// 1. queued requests from the dead node are discarded;
    /// 2. a pending operation *requested by* the dead node is marked
    ///    aborted — it still collects its acknowledgments, but completes
    ///    without granting anything;
    /// 3. a pending fetch *targeting* the dead node is completed
    ///    synthetically (the reply will never come): the requester is
    ///    served from memory's last-written value;
    /// 4. an outstanding-ack bit held by the dead node is cleared by
    ///    synthesizing the acknowledgment it can no longer send;
    /// 5. a MODIFIED entry owned by the dead node reverts to CLEAN — the
    ///    dirty line is gone, memory's last-written value stands (the
    ///    machine layer records the modeled data loss);
    /// 6. the dead node is removed from the sharer set: surgically under an
    ///    exact representation, via an invalidation sweep of the covered
    ///    live copies under an inexact one (restoring exactness as a
    ///    side effect).
    ///
    /// # Errors
    ///
    /// Propagates a [`ProtocolError`] from a synthesized completion — a
    /// protocol bug, exactly as it would be on the live path.
    pub fn purge_node(
        &mut self,
        n: NodeId,
        out: &mut Vec<(BlockAddr, DirAction)>,
    ) -> Result<(), ProtocolError> {
        debug_assert!(self.dead[n.idx()], "purging a node not marked dead");
        let blocks: Vec<BlockAddr> = self.entries.keys().collect();
        // Unlike `handle_into`, a purge spans many blocks, so each action
        // is returned tagged with the block it belongs to.
        let mut actions: Vec<DirAction> = Vec::new();
        for block in blocks {
            // 1+2: drop the dead node's queued requests, abort its pending.
            {
                let e = self.entry(block);
                let before = e.waiting.len();
                e.waiting.retain(|(s, _)| *s != n);
                let dropped = (before - e.waiting.len()) as u64;
                if let Some(p) = e.pending.as_mut() {
                    if p.requester == n {
                        p.abort = true;
                    }
                }
                self.stats.stale_drops += dropped;
            }
            // 3: a fetch whose target died completes synthetically, as if a
            // crossing unwritten writeback arrived.
            let target_died = matches!(
                self.entries.get(block).and_then(|e| e.pending.as_ref()),
                Some(p) if p.target == Some(n)
            );
            if target_died {
                let pre = self.pre_tag(block);
                self.complete_fetch(n, block, None, false, false, &mut actions)?;
                self.trace_crash(n, block, pre);
            }
            // 4: synthesize the acknowledgment the dead node can no longer
            // send, so the fan-out completes (or aborts) normally.
            let synth = match self.entries.get(block).and_then(|e| e.pending.as_ref()) {
                Some(p) if p.awaiting.test(n) => match p.kind {
                    PendingKind::Invalidating { .. } | PendingKind::Evicting => {
                        Some(MsgKind::InvalAck)
                    }
                    PendingKind::Updating => Some(MsgKind::UpdateAck { invalidated: true }),
                    PendingKind::Interrogating { .. } => {
                        Some(MsgKind::InterrogateReply { keep: false })
                    }
                    // Fetch-style pendings never set awaiting bits.
                    _ => None,
                },
                _ => None,
            };
            if let Some(kind) = synth {
                let pre = self.pre_tag(block);
                self.dispatch_reply(n, block, kind, &mut actions)?;
                self.trace_crash(n, block, pre);
            }
            // 5: reclaim an orphaned dirty line.
            if self.owner_of(block) == Some(n)
                && self.entries.get(block).is_some_and(|e| e.pending.is_none())
            {
                let pre = self.pre_tag(block);
                self.apply_writeback(n, block, false);
                self.stats.orphan_reclaims += 1;
                self.trace_crash(n, block, pre);
            }
            // 6: purge the sharer set.
            let needs_purge = self
                .entries
                .get(block)
                .is_some_and(|e| e.sharers.may_contain(n));
            if needs_purge {
                let exact = self.entry(block).sharers.exact_count().is_some();
                if exact {
                    let contained = {
                        let e = self.entry(block);
                        let c = e.sharers.certainly_contains(n);
                        e.sharers.remove(n);
                        c
                    };
                    if contained {
                        self.stats.purged_sharers += 1;
                    }
                } else if matches!(self.entry(block).state, DirState::Clean)
                    && self.entry(block).pending.is_none()
                {
                    // The set cannot name its members: recall every covered
                    // live copy. When the sweep drains, the set is exactly
                    // empty and no longer covers the dead node.
                    let pre = self.pre_tag(block);
                    let swept = {
                        let DirCtrl {
                            nprocs,
                            entries,
                            stats,
                            mask_pool,
                            org,
                            dead,
                            ..
                        } = self;
                        let e = entries.get_or_insert_with(block, || DirEntry::new(*org));
                        let fanout = e.sharers.fanout_class();
                        let mut awaiting = AckMask::empty(*nprocs, mask_pool);
                        let mut sent = 0u64;
                        e.sharers.for_each_target(*nprocs, Some(n), |t| {
                            if dead[t.idx()] {
                                return;
                            }
                            actions.push(DirAction {
                                dst: t,
                                kind: MsgKind::Inval,
                            });
                            awaiting.set(t);
                            sent += 1;
                        });
                        if sent == 0 {
                            // Nothing live is covered: collapse directly.
                            awaiting.recycle(mask_pool);
                            e.sharers.clear();
                            false
                        } else {
                            stats.invals_sent += sent;
                            stats.purge_sweeps += 1;
                            e.pending = Some(Pending {
                                kind: PendingKind::Invalidating { with_data: false },
                                requester: n,
                                target: None,
                                awaiting,
                                keep_votes: false,
                                fanout,
                                abort: true,
                            });
                            true
                        }
                    };
                    if swept {
                        self.trace_crash(n, block, pre);
                    }
                }
                // Inexact with a MODIFIED owner or an open operation: the
                // over-approximation is sound (the dead node holds no copy)
                // and fan-outs skip dead targets; the set collapses to
                // exact on the next writeback or completion.
            }
            // Synthesized completions may have unblocked queued requests.
            self.drain_queue(block, &mut actions)?;
            out.extend(actions.drain(..).map(|a| (block, a)));
        }
        Ok(())
    }
}

/// Whether a fetch-style reply kind is the one the pending op is waiting
/// for (`Fetch` elicits `FetchReply`; `FetchInval` elicits
/// `FetchInvalReply`).
fn reply_matches(reply: MsgKind, pending: PendingKind) -> bool {
    match pending {
        PendingKind::FetchRead => matches!(reply, MsgKind::FetchReply { .. }),
        PendingKind::FetchMigRead | PendingKind::FetchOwn | PendingKind::RecallForUpdate { .. } => {
            matches!(reply, MsgKind::FetchInvalReply { .. })
        }
        PendingKind::Invalidating { .. }
        | PendingKind::Updating
        | PendingKind::Interrogating { .. }
        | PendingKind::Evicting => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 16;

    /// Test shorthand: `handle` with the error case unwrapped (no test in
    /// this module drives the controller into a `ProtocolError`).
    trait HandleOk {
        fn h(&mut self, src: NodeId, block: BlockAddr, kind: MsgKind) -> Vec<DirAction>;
    }

    impl HandleOk for DirCtrl {
        fn h(&mut self, src: NodeId, block: BlockAddr, kind: MsgKind) -> Vec<DirAction> {
            self.handle(src, block, kind).unwrap()
        }
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Shorthand: assert a single action with the given destination+kind.
    fn assert_single(actions: &[DirAction], dst: NodeId, kind: MsgKind) {
        assert_eq!(actions, &[DirAction { dst, kind }]);
    }

    #[test]
    fn read_clean_block_two_hop() {
        let mut dir = DirCtrl::new(N, false, false);
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
        let (owner, presence, mig) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 1 << 2);
        assert!(!mig);
        assert_eq!(dir.stats().reads_clean, 1);
    }

    #[test]
    fn write_miss_with_no_sharers_gets_data() {
        let mut dir = DirCtrl::new(N, false, false);
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: true });
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(1)));
    }

    #[test]
    fn upgrade_from_shared_without_data() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: false });
    }

    #[test]
    fn ownership_invalidates_all_sharers_then_acks() {
        let mut dir = DirCtrl::new(N, false, false);
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        // Invalidations to 2 and 3 only.
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|x| x.kind == MsgKind::Inval));
        let dsts: Vec<_> = a.iter().map(|x| x.dst).collect();
        assert!(dsts.contains(&n(2)) && dsts.contains(&n(3)));
        // First ack: nothing yet.
        assert!(dir.h(n(2), b(0), MsgKind::InvalAck).is_empty());
        // Second ack completes the ownership transfer.
        let a = dir.h(n(3), b(0), MsgKind::InvalAck);
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: false });
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, Some(n(1)));
        assert_eq!(presence, 1 << 1);
        assert_eq!(dir.stats().invals_sent, 2);
    }

    #[test]
    fn read_of_dirty_block_is_four_hop_through_home() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::Fetch);
        let a = dir.h(n(1), b(0), MsgKind::FetchReply { written: true });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
        // Both the old owner and the requester now share the block.
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, (1 << 1) | (1 << 2));
        assert_eq!(dir.stats().reads_dirty, 1);
    }

    #[test]
    fn requests_queue_behind_transient_state() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        // Node 1 requests ownership -> invalidation of node 2 pending.
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        assert!(dir.has_pending());
        // Node 3's read must queue.
        let a = dir.h(n(3), b(0), MsgKind::ReadReq { prefetch: false });
        assert!(a.is_empty());
        // The ack completes ownership AND services the queued read: the
        // block is now dirty at node 1, so home fetches it.
        let a = dir.h(n(2), b(0), MsgKind::InvalAck);
        assert_eq!(a.len(), 2);
        assert_eq!(
            a[0],
            DirAction {
                dst: n(1),
                kind: MsgKind::OwnAck { with_data: false }
            }
        );
        assert_eq!(
            a[1],
            DirAction {
                dst: n(1),
                kind: MsgKind::Fetch
            }
        );
    }

    #[test]
    fn writeback_clears_ownership() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        let a = dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        assert_single(&a, n(1), MsgKind::WritebackAck);
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 0);
    }

    #[test]
    fn writeback_crossing_fetch_completes_the_read() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        // Node 1's writeback races with the Fetch we just sent it.
        let a = dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        assert_eq!(a.len(), 2);
        assert_eq!(
            a[0],
            DirAction {
                dst: n(1),
                kind: MsgKind::WritebackAck
            }
        );
        assert_eq!(
            a[1],
            DirAction {
                dst: n(2),
                kind: MsgKind::ReadReply { exclusive: false }
            }
        );
    }

    #[test]
    fn writeback_crossing_fetch_leaves_no_stale_presence_bit() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        // The owner's writeback crosses the Fetch: node 1 gave up its copy,
        // so only the requester may appear in the presence vector.
        dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 1 << 2, "old owner must not be re-added");
    }

    #[test]
    fn owner_rereading_after_writeback_in_flight_is_nacked() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        // Owner replaced the block and immediately re-reads; the read
        // arrives first and is NACKed (the cache retries after backoff).
        let a = dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::Nack);
        assert_eq!(dir.stats().nacks_sent, 1);
        // The writeback lands; the retried read then succeeds normally.
        let a = dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        assert_single(&a, n(1), MsgKind::WritebackAck);
        let a = dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::ReadReply { exclusive: false });
    }

    #[test]
    fn owner_rewriting_after_writeback_in_flight_is_nacked() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        assert_single(&a, n(1), MsgKind::Nack);
        dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: true });
    }

    // ------------------------------------------- duplicate/stale tolerance

    #[test]
    fn duplicate_inval_ack_is_dropped() {
        let mut dir = DirCtrl::new(N, false, false);
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        assert!(dir.h(n(2), b(0), MsgKind::InvalAck).is_empty());
        // A replay of node 2's ack must not complete the transfer early.
        assert!(dir.h(n(2), b(0), MsgKind::InvalAck).is_empty());
        assert_eq!(dir.stats().stale_drops, 1);
        let a = dir.h(n(3), b(0), MsgKind::InvalAck);
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: false });
    }

    #[test]
    fn duplicate_fetch_reply_is_dropped() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        let a = dir.h(n(1), b(0), MsgKind::FetchReply { written: true });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
        // The replayed reply finds no pending op: dropped, state intact.
        let a = dir.h(n(1), b(0), MsgKind::FetchReply { written: true });
        assert!(a.is_empty());
        assert_eq!(dir.stats().stale_drops, 1);
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, (1 << 1) | (1 << 2));
    }

    #[test]
    fn duplicate_writeback_is_acked_idempotently() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        // Node 2 becomes the new owner; then node 1's writeback is replayed.
        dir.h(n(2), b(0), MsgKind::OwnReq { need_data: true });
        let a = dir.h(n(1), b(0), MsgKind::WritebackReq { written: true });
        assert_single(&a, n(1), MsgKind::WritebackAck);
        assert_eq!(dir.stats().stale_drops, 1);
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(2)), "owner intact");
    }

    #[test]
    fn mismatched_fetch_reply_kind_is_dropped() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        // Pending is FetchRead (a plain Fetch went out); a stray
        // FetchInvalReply must not complete it with invalidate semantics.
        let a = dir.h(n(1), b(0), MsgKind::FetchInvalReply { written: true });
        assert!(a.is_empty());
        assert_eq!(dir.stats().stale_drops, 1);
        let a = dir.h(n(1), b(0), MsgKind::FetchReply { written: true });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
    }

    #[test]
    fn unexpected_message_is_a_structured_error() {
        let mut dir = DirCtrl::new(N, false, false);
        let err = dir
            .handle(n(1), b(0), MsgKind::ReadReply { exclusive: false })
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::UnexpectedMessage { src, .. } if src == n(1)
        ));
        assert!(err.to_string().contains("ReadReply"));
    }

    #[test]
    fn pending_ops_reports_transient_blocks() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        let ops = dir.pending_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b(0));
        assert!(ops[0].1.contains("FetchRead"));
    }

    #[test]
    fn shared_repl_hint_clears_presence_and_prevents_inval() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(2), b(0), MsgKind::SharedReplHint);
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        // No sharers besides node 1 remain: immediate ack, no invalidation.
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: false });
        assert_eq!(dir.stats().invals_sent, 0);
    }

    // ------------------------------------------------------- migratory (M)

    /// Drives the canonical migratory pattern: node i read-misses then
    /// requests ownership, in turn.
    fn migratory_turn(dir: &mut DirCtrl, i: NodeId, block: BlockAddr) -> Vec<DirAction> {
        let mut all = dir.h(i, block, MsgKind::ReadReq { prefetch: false });
        // Resolve any fetch the home sent.
        let fetches: Vec<_> = all
            .iter()
            .filter(|a| matches!(a.kind, MsgKind::Fetch | MsgKind::FetchInval))
            .copied()
            .collect();
        for f in fetches {
            let reply = match f.kind {
                MsgKind::Fetch => MsgKind::FetchReply { written: true },
                MsgKind::FetchInval => MsgKind::FetchInvalReply { written: true },
                _ => unreachable!(),
            };
            all.extend(dir.h(f.dst, block, reply));
        }
        // If the reply was shared, the node writes: ownership request.
        if all
            .iter()
            .any(|a| a.kind == MsgKind::ReadReply { exclusive: false })
        {
            let own = dir.h(i, block, MsgKind::OwnReq { need_data: false });
            for a in &own {
                if a.kind == MsgKind::Inval {
                    all.extend(dir.h(a.dst, block, MsgKind::InvalAck));
                }
            }
            all.extend(own);
        }
        all
    }

    #[test]
    fn migratory_detection_after_two_read_write_sequences() {
        let mut dir = DirCtrl::new(N, true, false);
        migratory_turn(&mut dir, n(0), b(0)); // node 0 reads + writes
        assert!(!dir.snapshot(b(0)).unwrap().2);
        migratory_turn(&mut dir, n(1), b(0)); // node 1 reads + writes
        assert!(dir.snapshot(b(0)).unwrap().2, "block must be migratory now");
        assert_eq!(dir.stats().migratory_detections, 1);
        // Third turn: node 2's read gets an exclusive copy directly.
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::FetchInval);
        let a = dir.h(n(1), b(0), MsgKind::FetchInvalReply { written: true });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: true });
        // ...and node 2's subsequent write needs NO ownership request:
        // that's the optimization. (The cache layer verifies silent
        // promotion; here we check the directory granted exclusivity.)
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(2)));
    }

    #[test]
    fn migratory_reverts_when_holder_never_writes() {
        let mut dir = DirCtrl::new(N, true, false);
        migratory_turn(&mut dir, n(0), b(0));
        migratory_turn(&mut dir, n(1), b(0));
        assert!(dir.snapshot(b(0)).unwrap().2);
        // Node 2 reads (exclusive grant), never writes; node 3 then reads.
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        let a = dir.h(n(1), b(0), MsgKind::FetchInvalReply { written: true });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: true });
        let a = dir.h(n(3), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(2), MsgKind::FetchInval);
        let a = dir.h(n(2), b(0), MsgKind::FetchInvalReply { written: false });
        assert_single(&a, n(3), MsgKind::ReadReply { exclusive: false });
        assert!(!dir.snapshot(b(0)).unwrap().2, "migratory bit must revert");
        assert_eq!(dir.stats().migratory_reverts, 1);
    }

    #[test]
    fn revert_disabled_keeps_granting_exclusive() {
        let mut dir = DirCtrl::new(N, true, false);
        dir.set_revert(false);
        migratory_turn(&mut dir, n(0), b(0));
        migratory_turn(&mut dir, n(1), b(0));
        assert!(dir.snapshot(b(0)).unwrap().2);
        // Node 2 reads (exclusive), never writes; node 3 reads: with
        // reversion off the home hands out another exclusive copy anyway.
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(1), b(0), MsgKind::FetchInvalReply { written: true });
        dir.h(n(3), b(0), MsgKind::ReadReq { prefetch: false });
        let a = dir.h(n(2), b(0), MsgKind::FetchInvalReply { written: false });
        assert_single(&a, n(3), MsgKind::ReadReply { exclusive: true });
        assert!(dir.snapshot(b(0)).unwrap().2, "migratory bit must persist");
        assert_eq!(dir.stats().migratory_reverts, 0);
    }

    #[test]
    fn unwritten_migratory_writeback_reverts() {
        let mut dir = DirCtrl::new(N, true, false);
        migratory_turn(&mut dir, n(0), b(0));
        migratory_turn(&mut dir, n(1), b(0));
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(1), b(0), MsgKind::FetchInvalReply { written: true });
        // Node 2 replaces the unwritten exclusive copy.
        let a = dir.h(n(2), b(0), MsgKind::WritebackReq { written: false });
        assert_single(&a, n(2), MsgKind::WritebackAck);
        assert!(!dir.snapshot(b(0)).unwrap().2);
    }

    #[test]
    fn read_only_sharing_never_detected_as_migratory() {
        let mut dir = DirCtrl::new(N, true, false);
        for i in 0..8u16 {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        assert!(!dir.snapshot(b(0)).unwrap().2);
        assert_eq!(dir.stats().migratory_detections, 0);
    }

    #[test]
    fn three_sharers_not_detected_as_migratory() {
        let mut dir = DirCtrl::new(N, true, false);
        // Nodes 0, 1, 2 all read; node 1 then writes. Presence count is 3,
        // not 2, so this is not the migratory pattern.
        for i in 0..3u16 {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        assert!(!dir.snapshot(b(0)).unwrap().2);
    }

    // --------------------------------------------- MESI exclusive-clean (E)

    #[test]
    fn exclusive_clean_grants_when_no_copies_exist() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.set_exclusive_clean(true);
        let a = dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::ReadReply { exclusive: true });
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(1)));
        // A second reader forces a fetch-downgrade back to sharing.
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::Fetch);
        let a = dir.h(n(1), b(0), MsgKind::FetchReply { written: false });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, (1 << 1) | (1 << 2));
    }

    #[test]
    fn exclusive_clean_not_granted_with_existing_sharers() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.set_exclusive_clean(true);
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(1), b(0), MsgKind::WritebackReq { written: false });
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        // Node 2 reads while node 1 holds a copy: shared grant... first
        // recall node 1's exclusive copy.
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::Fetch);
        dir.h(n(1), b(0), MsgKind::FetchReply { written: false });
        // Node 3 now reads a block with two sharers: plain shared grant.
        let a = dir.h(n(3), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(3), MsgKind::ReadReply { exclusive: false });
    }

    // ------------------------------------------------- competitive update (CW)

    #[test]
    fn update_with_no_other_copies_completes_immediately() {
        let mut dir = DirCtrl::new(N, false, true);
        // The writer holds no copy either: no exclusivity grant.
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 0b1 });
        assert_single(&a, n(1), MsgKind::UpdateDone { exclusive: false });
    }

    #[test]
    fn sole_sharer_update_degenerates_to_ownership() {
        let mut dir = DirCtrl::new(N, false, true);
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 0b1 });
        assert_single(&a, n(1), MsgKind::UpdateDone { exclusive: true });
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(1)));
        // Further writes are silent; a later update from a stale write
        // cache entry is simply dropped.
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 0b10 });
        assert_single(&a, n(1), MsgKind::UpdateDone { exclusive: false });
    }

    #[test]
    fn update_fans_out_to_sharers_and_clears_invalidated_copies() {
        let mut dir = DirCtrl::new(N, false, true);
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 0b11 });
        assert_eq!(a.len(), 2);
        assert!(a
            .iter()
            .all(|x| x.kind == MsgKind::Update { dirty_words: 0b11 }));
        // Node 2 keeps its copy; node 3's competitive counter expired.
        assert!(dir
            .h(n(2), b(0), MsgKind::UpdateAck { invalidated: false })
            .is_empty());
        let a = dir.h(n(3), b(0), MsgKind::UpdateAck { invalidated: true });
        assert_single(&a, n(1), MsgKind::UpdateDone { exclusive: false });
        let (_, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(presence, (1 << 1) | (1 << 2));
        assert_eq!(dir.stats().updates_sent, 2);
    }

    #[test]
    fn updates_keep_memory_clean_so_reads_are_two_hop() {
        let mut dir = DirCtrl::new(N, false, true);
        // Two sharers, so the writer keeps the block in update mode.
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 0b1 });
        dir.h(n(2), b(0), MsgKind::UpdateAck { invalidated: false });
        // A later read finds the block clean at home: two-hop service.
        let a = dir.h(n(3), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(3), MsgKind::ReadReply { exclusive: false });
        assert_eq!(dir.stats().reads_dirty, 0);
    }

    // ------------------------------------------------------------ CW+M

    #[test]
    fn cwm_interrogation_detects_migratory_when_all_give_up() {
        let mut dir = DirCtrl::new(N, true, true);
        dir.h(n(0), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        // Node 0 updates first (becomes last_updater).
        let a = dir.h(n(0), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        assert_single(&a, n(1), MsgKind::Update { dirty_words: 1 });
        dir.h(n(1), b(0), MsgKind::UpdateAck { invalidated: false });
        // Node 1 updates next: different updater, two copies -> interrogate.
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|x| x.kind == MsgKind::Interrogate));
        assert_eq!(dir.stats().interrogations, 1);
        // Both caches gave up (idle since last update).
        dir.h(n(0), b(0), MsgKind::InterrogateReply { keep: false });
        let a = dir.h(n(1), b(0), MsgKind::InterrogateReply { keep: false });
        // All gave up: migratory; the pending update completes with no
        // remaining copies to update.
        assert_single(&a, n(1), MsgKind::UpdateDone { exclusive: false });
        assert!(dir.snapshot(b(0)).unwrap().2);
        assert_eq!(dir.stats().migratory_detections, 1);
    }

    #[test]
    fn cwm_keep_vote_vetoes_migratory() {
        let mut dir = DirCtrl::new(N, true, true);
        for i in [0u16, 1, 2] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        dir.h(n(0), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        dir.h(n(1), b(0), MsgKind::UpdateAck { invalidated: false });
        dir.h(n(2), b(0), MsgKind::UpdateAck { invalidated: false });
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        assert_eq!(a.len(), 3, "interrogate all three copies");
        dir.h(n(0), b(0), MsgKind::InterrogateReply { keep: false });
        dir.h(n(1), b(0), MsgKind::InterrogateReply { keep: false });
        // Node 2 is actively reading: it keeps its copy.
        let a = dir.h(n(2), b(0), MsgKind::InterrogateReply { keep: true });
        assert!(!dir.snapshot(b(0)).unwrap().2, "keep vote vetoes migratory");
        // The update is still delivered to the keeper.
        assert!(a
            .iter()
            .any(|x| x.dst == n(2) && matches!(x.kind, MsgKind::Update { .. })));
    }

    #[test]
    fn cwm_update_to_migratory_modified_block_recalls_owner() {
        let mut dir = DirCtrl::new(N, true, true);
        // Make the block migratory and owned by node 0 via an exclusive read.
        dir.h(n(0), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(1), b(0), MsgKind::ReadReq { prefetch: false });
        dir.h(n(0), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        dir.h(n(1), b(0), MsgKind::UpdateAck { invalidated: true });
        dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        // (single copy now: no interrogation, immediate done)
        // Force migratory via detection path: read by 2 then 3 with writes.
        // Simpler: mark by interrogation is already covered; here exercise
        // the recall path by making the block Modified first.
        let mut dir = DirCtrl::new(N, true, true);
        dir.h(n(0), b(0), MsgKind::OwnReq { need_data: true }); // modified at 0
        let a = dir.h(n(1), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        assert_single(&a, n(0), MsgKind::FetchInval);
        let a = dir.h(n(0), b(0), MsgKind::FetchInvalReply { written: true });
        assert_single(&a, n(1), MsgKind::UpdateDone { exclusive: false });
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 0);
    }

    #[test]
    fn stale_update_from_current_owner_is_dropped() {
        let mut dir = DirCtrl::new(N, true, true);
        dir.h(n(0), b(0), MsgKind::OwnReq { need_data: true });
        let a = dir.h(n(0), b(0), MsgKind::UpdateReq { dirty_words: 1 });
        assert_single(&a, n(0), MsgKind::UpdateDone { exclusive: false });
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(0)));
    }

    #[test]
    #[should_panic(expected = "supports at most 64 nodes")]
    fn too_many_nodes_rejected() {
        let _ = DirCtrl::new(65, false, false);
    }

    #[test]
    fn large_machines_use_high_presence_bits() {
        let mut dir = DirCtrl::new(64, false, false);
        dir.h(n(63), b(0), MsgKind::ReadReq { prefetch: false });
        let (_, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(presence, 1u64 << 63);
        let a = dir.h(n(63), b(0), MsgKind::OwnReq { need_data: false });
        assert_single(&a, n(63), MsgKind::OwnAck { with_data: false });
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(63)));
    }

    // ------------------------------------------------- crash recovery

    fn purge(dir: &mut DirCtrl, node: NodeId) -> Vec<DirAction> {
        let mut out = Vec::new();
        dir.set_node_dead(node, true);
        dir.purge_node(node, &mut out).unwrap();
        // These tests drive a single block; drop the tag.
        out.into_iter().map(|(_, a)| a).collect()
    }

    #[test]
    fn purge_removes_dead_sharer_from_exact_set() {
        let mut dir = DirCtrl::new(N, false, false);
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        let a = purge(&mut dir, n(2));
        assert!(a.is_empty(), "exact purge is surgical: {a:?}");
        let (_, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(presence, (1 << 1) | (1 << 3));
        assert_eq!(dir.stats().purged_sharers, 1);
        // A later ownership request no longer invalidates the dead node.
        let a = dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        assert_single(&a, n(3), MsgKind::Inval);
    }

    #[test]
    fn purge_reclaims_orphaned_dirty_line() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        let a = purge(&mut dir, n(1));
        assert!(a.is_empty());
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 0);
        assert_eq!(dir.stats().orphan_reclaims, 1);
        // The block is readable again, served from memory.
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
    }

    #[test]
    fn purge_synthesizes_ack_from_dead_invalidation_target() {
        let mut dir = DirCtrl::new(N, false, false);
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        // Node 1 wants ownership; 2 and 3 owe InvalAcks.
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        // Node 3 dies before acking: the purge synthesizes its ack.
        assert!(purge(&mut dir, n(3)).is_empty());
        // Node 2's real ack now completes the transfer.
        let a = dir.h(n(2), b(0), MsgKind::InvalAck);
        assert_single(&a, n(1), MsgKind::OwnAck { with_data: false });
        assert_eq!(dir.snapshot(b(0)).unwrap().0, Some(n(1)));
    }

    #[test]
    fn purge_completes_fetch_targeting_dead_owner() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        // Node 2's read is waiting on a fetch from owner 1, who dies.
        let a = dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false });
        assert_single(&a, n(1), MsgKind::Fetch);
        let a = purge(&mut dir, n(1));
        // The requester is served from memory's last-written value.
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 1 << 2);
    }

    #[test]
    fn dead_requester_completion_grants_nothing() {
        let mut dir = DirCtrl::new(N, false, false);
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: false });
        // The *requester* dies mid-fan-out; live acks still drain it.
        assert!(purge(&mut dir, n(1)).is_empty());
        assert!(dir.h(n(2), b(0), MsgKind::InvalAck).is_empty());
        let a = dir.h(n(3), b(0), MsgKind::InvalAck);
        assert!(a.is_empty(), "no grant to a dead requester: {a:?}");
        let (owner, presence, _) = dir.snapshot(b(0)).unwrap();
        assert_eq!(owner, None);
        assert_eq!(presence, 0);
        assert_eq!(dir.stats().aborted_grants, 1);
        assert!(!dir.has_pending());
    }

    #[test]
    fn purge_sweeps_inexact_set_and_restores_exactness() {
        let mut dir = DirCtrl::with_org(N, DirOrg::Directoryless, ExtStack::new()).unwrap();
        for i in [1u16, 2, 3] {
            dir.h(n(i), b(0), MsgKind::ReadReq { prefetch: false });
        }
        let a = purge(&mut dir, n(2));
        // Directoryless covers everyone: every live node gets recalled.
        assert_eq!(a.len(), N - 1);
        assert!(a.iter().all(|x| x.kind == MsgKind::Inval));
        assert!(a.iter().all(|x| x.dst != n(2)));
        assert_eq!(dir.stats().purge_sweeps, 1);
        // Live holders (and non-holders — the set cannot tell) ack.
        for i in 0..N as u16 {
            if i != 2 {
                assert!(dir.h(n(i), b(0), MsgKind::InvalAck).is_empty());
            }
        }
        assert!(!dir.has_pending());
        assert!(!dir.covers(b(0), n(2)), "sweep left coverage of the dead node");
        assert_eq!(dir.stats().aborted_grants, 1);
    }

    #[test]
    fn purge_drops_dead_nodes_queued_requests() {
        let mut dir = DirCtrl::new(N, false, false);
        dir.h(n(1), b(0), MsgKind::OwnReq { need_data: true });
        dir.h(n(2), b(0), MsgKind::ReadReq { prefetch: false }); // fetch pending
        let a = dir.h(n(3), b(0), MsgKind::ReadReq { prefetch: false }); // queued
        assert!(a.is_empty());
        // Node 3 dies; its queued read must not be serviced at completion.
        assert!(purge(&mut dir, n(3)).is_empty());
        let a = dir.h(n(1), b(0), MsgKind::FetchReply { written: true });
        assert_single(&a, n(2), MsgKind::ReadReply { exclusive: false });
        assert!(!dir.covers(b(0), n(3)));
    }

    #[test]
    fn recovery_rule_set_only_when_enabled() {
        let mut dir = DirCtrl::new(N, false, false);
        assert!(!dir.rule_set().contains(ExtKind::Recovery));
        dir.enable_recovery();
        assert!(dir.rule_set().contains(ExtKind::Recovery));
    }
}
