//! Hardware-cost model — regenerates the paper's Table 1.
//!
//! Each extension "adds only marginally to the overall system complexity";
//! Table 1 itemizes the cost: state bits per SLC line, extra per-cache
//! mechanisms, SLWB features, and state bits per memory line. This module
//! computes those quantities from a [`ProtocolConfig`] so the table is a
//! *property of the implementation*, checked by tests, rather than prose.

use std::fmt;

use crate::config::{Consistency, ProtocolConfig, ProtocolKind};

/// Itemized hardware cost of one protocol configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareCost {
    /// Protocol label (paper notation).
    pub label: String,
    /// State bits per SLC line (stable states + extension bits/counters).
    pub slc_bits_per_line: u32,
    /// Number of per-cache counters (P's three modulo-16 counters).
    pub cache_counters: u32,
    /// Bits per such counter.
    pub counter_bits: u32,
    /// Write-cache blocks attached to the SLC.
    pub write_cache_blocks: u32,
    /// State bits per memory line (directory state + presence bits +
    /// extension bits/pointers).
    pub mem_bits_per_line: u32,
    /// Human-readable SLWB requirement.
    pub slwb_note: &'static str,
}

impl HardwareCost {
    /// Computes the cost of `cfg` for a machine of `nprocs` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is not at least 2.
    pub fn of(cfg: &ProtocolConfig, nprocs: usize) -> Self {
        assert!(nprocs >= 2, "a multiprocessor needs at least two nodes");
        let n = nprocs as u32;
        let log2n = u32::BITS - (n - 1).leading_zeros();

        // BASIC: 3 cache states (INVALID/SHARED/DIRTY) -> 2 bits.
        let mut states: u32 = 3;
        let mut slc_extra = 0;
        // M adds the MigClean state.
        if cfg.migratory {
            states += 1;
        }
        // P: two extra bits per line.
        if cfg.prefetch.is_some() {
            slc_extra += 2;
        }
        // CW: the competitive counter; with the paper's threshold of one it
        // is a modulo-2 counter (1 bit). CW+M adds the locally-modified bit
        // used by the interrogation heuristic.
        if let Some(cw) = cfg.competitive {
            slc_extra += u8::BITS - cw.threshold.leading_zeros();
            if cfg.migratory {
                slc_extra += 1;
            }
        }
        let state_bits = u32::BITS - (states - 1).leading_zeros();

        // BASIC memory line: 3 state bits (2 stable + 3 transient states =
        // 5 states) plus N presence bits.
        let mut mem_bits = 3 + n;
        // M: migratory bit + last-writer pointer.
        if cfg.migratory {
            mem_bits += 1 + log2n;
        }

        HardwareCost {
            label: cfg.label(),
            slc_bits_per_line: state_bits + slc_extra,
            cache_counters: if cfg.prefetch.is_some() { 3 } else { 0 },
            counter_bits: if cfg.prefetch.is_some() { 4 } else { 0 },
            write_cache_blocks: cfg.competitive.filter(|c| c.write_cache).map_or(0, |_| 4),
            mem_bits_per_line: mem_bits,
            slwb_note: match (
                cfg.consistency,
                cfg.prefetch.is_some(),
                cfg.competitive.is_some(),
            ) {
                (Consistency::Sc, false, _) => "single entry",
                (Consistency::Sc, true, _) => "single demand entry + pending prefetches",
                (Consistency::Rc, _, true) => "several entries; each entry holds a block",
                (Consistency::Rc, true, false) => "several entries incl. pending prefetches",
                (Consistency::Rc, false, false) => "several entries",
            },
        }
    }

    /// Overhead of this configuration relative to BASIC under the same
    /// consistency model: `(extra SLC bits/line, extra memory bits/line)`.
    pub fn overhead_vs_basic(&self, cfg: &ProtocolConfig, nprocs: usize) -> (u32, u32) {
        let basic = HardwareCost::of(&ProtocolConfig::basic(cfg.consistency), nprocs);
        (
            self.slc_bits_per_line - basic.slc_bits_per_line,
            self.mem_bits_per_line - basic.mem_bits_per_line,
        )
    }
}

impl fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.label)?;
        writeln!(f, "  SLC bits/line:    {}", self.slc_bits_per_line)?;
        if self.cache_counters > 0 {
            writeln!(
                f,
                "  cache counters:   {} x {} bits",
                self.cache_counters, self.counter_bits
            )?;
        }
        if self.write_cache_blocks > 0 {
            writeln!(f, "  write cache:      {} blocks", self.write_cache_blocks)?;
        }
        writeln!(f, "  memory bits/line: {}", self.mem_bits_per_line)?;
        write!(f, "  SLWB:             {}", self.slwb_note)
    }
}

/// Renders the paper's Table 1 for all four columns (BASIC, P, M, CW) at
/// the given machine size.
pub fn table1(nprocs: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("Table 1: hardware cost (N = {nprocs} nodes)\n"));
    for kind in [
        ProtocolKind::Basic,
        ProtocolKind::P,
        ProtocolKind::M,
        ProtocolKind::Cw,
    ] {
        let cost = HardwareCost::of(&kind.config(Consistency::Rc), nprocs);
        out.push_str(&cost.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(kind: ProtocolKind) -> HardwareCost {
        HardwareCost::of(&kind.config(Consistency::Rc), 16)
    }

    #[test]
    fn basic_matches_table_1() {
        // "The hardware support for cache coherence in BASIC is limited to
        // two bits per cache block and N+3 bits per memory block."
        let c = cost(ProtocolKind::Basic);
        assert_eq!(c.slc_bits_per_line, 2);
        assert_eq!(c.mem_bits_per_line, 16 + 3);
        assert_eq!(c.cache_counters, 0);
        assert_eq!(c.write_cache_blocks, 0);
    }

    #[test]
    fn prefetch_matches_table_1() {
        // P: 2 bits per line + three modulo-16 counters; no memory overhead.
        let c = cost(ProtocolKind::P);
        assert_eq!(c.slc_bits_per_line, 2 + 2);
        assert_eq!(c.cache_counters, 3);
        assert_eq!(c.counter_bits, 4);
        assert_eq!(c.mem_bits_per_line, 19);
    }

    #[test]
    fn migratory_matches_table_1() {
        // M: one extra cache state; 1 bit + log2(N) pointer per memory line.
        let c = cost(ProtocolKind::M);
        assert_eq!(c.slc_bits_per_line, 2); // 4 states still fit in 2 bits
        assert_eq!(c.mem_bits_per_line, 19 + 1 + 4);
    }

    #[test]
    fn competitive_matches_table_1() {
        // CW: a modulo-2 (1-bit) counter per line and a 4-block write cache.
        let c = cost(ProtocolKind::Cw);
        assert_eq!(c.slc_bits_per_line, 2 + 1);
        assert_eq!(c.write_cache_blocks, 4);
        assert_eq!(c.mem_bits_per_line, 19);
        assert!(c.slwb_note.contains("block"));
    }

    #[test]
    fn combination_costs_are_additive() {
        let c = cost(ProtocolKind::PCwM);
        // 4 states (2 bits) + P's 2 bits + CW's 1-bit counter + CW+M's
        // modified bit.
        assert_eq!(c.slc_bits_per_line, 2 + 2 + 1 + 1);
        assert_eq!(c.mem_bits_per_line, 19 + 5);
        let (slc_extra, mem_extra) =
            c.overhead_vs_basic(&ProtocolKind::PCwM.config(Consistency::Rc), 16);
        assert_eq!(slc_extra, 4);
        assert_eq!(mem_extra, 5);
    }

    #[test]
    fn sc_slwb_is_single_entry() {
        let c = HardwareCost::of(&ProtocolKind::Basic.config(Consistency::Sc), 16);
        assert_eq!(c.slwb_note, "single entry");
        let c = HardwareCost::of(&ProtocolKind::P.config(Consistency::Sc), 16);
        assert!(c.slwb_note.contains("prefetch"));
    }

    #[test]
    fn table_renders_all_columns() {
        let t = table1(16);
        for name in ["BASIC", "P", "M", "CW"] {
            assert!(t.contains(&format!("{name}:")), "missing column {name}");
        }
    }
}
