//! Protocol configuration: which extensions are enabled, and under which
//! memory consistency model.

use std::fmt;

/// Memory consistency model (paper Sections 5.1 and 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Sequential consistency: the processor stalls on every shared
    /// reference until it is globally performed; single-entry write buffers.
    Sc,
    /// Release consistency (RCpc): writes are buffered and overlapped; only
    /// reads, acquires and full buffers stall the processor; a release waits
    /// for all previously issued ownership/update requests.
    Rc,
}

impl fmt::Display for Consistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consistency::Sc => write!(f, "SC"),
            Consistency::Rc => write!(f, "RC"),
        }
    }
}

/// Parameters of the adaptive sequential prefetching extension (P).
///
/// The ISCA'94 paper fixes the mechanism's budget — "three modulo-16
/// counters per cache and two extra bits per cache line" — and refers to
/// the ICPP'93 paper for the adjustment details; the thresholds here are
/// our reconstruction (see `DESIGN.md` §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Initial degree of prefetching K.
    pub initial_k: u32,
    /// Maximum degree of prefetching.
    pub max_k: u32,
    /// Useful-prefetch count (out of 16) at or above which K is increased.
    pub high_mark: u8,
    /// Useful-prefetch count (out of 16) below which K is decreased.
    pub low_mark: u8,
    /// Sequential-miss count (out of 16) that re-enables prefetching when
    /// K has adapted down to zero.
    pub restart_mark: u8,
    /// If false, K is fixed at `initial_k` (the non-adaptive "fixed
    /// sequential prefetching" baseline from the ICPP'93 comparison, used
    /// by the ablation bench).
    pub adaptive: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            initial_k: 1,
            max_k: 16,
            high_mark: 12,
            low_mark: 6,
            restart_mark: 8,
            adaptive: true,
        }
    }
}

/// Parameters of the competitive-update extension (CW).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompetitiveConfig {
    /// Number of foreign updates with no intervening local access after
    /// which a copy self-invalidates. The paper recommends 4 without write
    /// caches and 1 with them.
    pub threshold: u8,
    /// Whether the 4-block write cache is attached to the SLC (the paper's
    /// CW always includes it; the ablation bench disables it).
    pub write_cache: bool,
}

impl Default for CompetitiveConfig {
    /// The paper's recommended configuration: threshold 1 with write caches.
    fn default() -> Self {
        CompetitiveConfig {
            threshold: 1,
            write_cache: true,
        }
    }
}

/// Full protocol configuration: BASIC plus any subset of {P, M, CW}.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Memory consistency model.
    pub consistency: Consistency,
    /// Adaptive sequential prefetching, if enabled.
    pub prefetch: Option<PrefetchConfig>,
    /// Migratory-sharing optimization.
    pub migratory: bool,
    /// Whether a migratory classification reverts when the sharing pattern
    /// changes (an unwritten exclusive copy is fetched or replaced). Always
    /// on in the paper's protocol; the ablation bench turns it off to show
    /// why the extra cache state is worth its bit.
    pub migratory_revert: bool,
    /// MESI-style exclusive-clean grants (extension, off by default and not
    /// part of any paper protocol): a read miss to a block with *no* cached
    /// copies returns an exclusive copy, so the first write to private data
    /// is silent. The ablation bench uses this to measure how much of the
    /// migratory optimization's benefit a plain E state already captures —
    /// M generalizes E from "nobody has it" to "the previous writer is done
    /// with it".
    pub exclusive_clean: bool,
    /// Competitive-update mechanism, if enabled.
    pub competitive: Option<CompetitiveConfig>,
}

impl ProtocolConfig {
    /// The baseline write-invalidate protocol under the given consistency.
    pub fn basic(consistency: Consistency) -> Self {
        ProtocolConfig {
            consistency,
            prefetch: None,
            migratory: false,
            migratory_revert: true,
            exclusive_clean: false,
            competitive: None,
        }
    }

    /// Whether this configuration is implementable. The competitive-update
    /// mechanism requires relaxed consistency ("we omit CW because it is not
    /// feasible under sequential consistency"): updates are combined in the
    /// write cache and delayed until a release.
    pub fn is_feasible(&self) -> bool {
        !(self.consistency == Consistency::Sc && self.competitive.is_some())
    }

    /// Short protocol name in the paper's notation (without the consistency
    /// suffix), e.g. `"P+CW"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.prefetch.is_some() {
            parts.push("P");
        }
        if self.competitive.is_some() {
            parts.push("CW");
        }
        if self.migratory {
            parts.push("M");
        }
        if parts.is_empty() {
            "BASIC".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// The eight protocols evaluated in the paper (BASIC and its seven
/// extension combinations), as a convenient closed enumeration.
///
/// # Example
///
/// ```
/// use dirext_core::{Consistency, ProtocolKind};
///
/// let cfg = ProtocolKind::PCw.config(Consistency::Rc);
/// assert!(cfg.prefetch.is_some());
/// assert!(cfg.competitive.is_some());
/// assert!(!cfg.migratory);
/// assert_eq!(cfg.label(), "P+CW");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The baseline write-invalidate protocol.
    Basic,
    /// BASIC + adaptive sequential prefetching.
    P,
    /// BASIC + migratory optimization.
    M,
    /// BASIC + competitive update with write caches.
    Cw,
    /// P and CW combined.
    PCw,
    /// P and M combined.
    PM,
    /// CW and M combined.
    CwM,
    /// All three extensions.
    PCwM,
}

impl ProtocolKind {
    /// All eight protocols in the paper's Figure-2 presentation order.
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::Basic,
        ProtocolKind::P,
        ProtocolKind::Cw,
        ProtocolKind::M,
        ProtocolKind::PCw,
        ProtocolKind::PM,
        ProtocolKind::CwM,
        ProtocolKind::PCwM,
    ];

    /// Whether this protocol includes prefetching.
    pub fn has_prefetch(self) -> bool {
        matches!(
            self,
            ProtocolKind::P | ProtocolKind::PCw | ProtocolKind::PM | ProtocolKind::PCwM
        )
    }

    /// Whether this protocol includes the migratory optimization.
    pub fn has_migratory(self) -> bool {
        matches!(
            self,
            ProtocolKind::M | ProtocolKind::PM | ProtocolKind::CwM | ProtocolKind::PCwM
        )
    }

    /// Whether this protocol includes competitive update.
    pub fn has_competitive(self) -> bool {
        matches!(
            self,
            ProtocolKind::Cw | ProtocolKind::PCw | ProtocolKind::CwM | ProtocolKind::PCwM
        )
    }

    /// Builds the default configuration of this protocol under the given
    /// consistency model.
    pub fn config(self, consistency: Consistency) -> ProtocolConfig {
        ProtocolConfig {
            consistency,
            prefetch: self.has_prefetch().then(PrefetchConfig::default),
            migratory: self.has_migratory(),
            migratory_revert: true,
            exclusive_clean: false,
            competitive: self.has_competitive().then(CompetitiveConfig::default),
        }
    }

    /// The paper's name for this protocol, e.g. `"P+CW"`.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Basic => "BASIC",
            ProtocolKind::P => "P",
            ProtocolKind::M => "M",
            ProtocolKind::Cw => "CW",
            ProtocolKind::PCw => "P+CW",
            ProtocolKind::PM => "P+M",
            ProtocolKind::CwM => "CW+M",
            ProtocolKind::PCwM => "P+CW+M",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_flags_match_names() {
        for k in ProtocolKind::ALL {
            let name = k.name();
            assert_eq!(name.starts_with('P'), k.has_prefetch(), "{name}");
            assert_eq!(name.ends_with('M'), k.has_migratory(), "{name}");
            assert_eq!(name.contains("CW"), k.has_competitive(), "{name}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for k in ProtocolKind::ALL {
            assert_eq!(k.config(Consistency::Rc).label(), k.name());
        }
    }

    #[test]
    fn cw_infeasible_under_sc() {
        assert!(!ProtocolKind::Cw.config(Consistency::Sc).is_feasible());
        assert!(ProtocolKind::Cw.config(Consistency::Rc).is_feasible());
        assert!(ProtocolKind::PM.config(Consistency::Sc).is_feasible());
        assert!(ProtocolKind::Basic.config(Consistency::Sc).is_feasible());
    }

    #[test]
    fn default_competitive_matches_paper_recommendation() {
        let c = CompetitiveConfig::default();
        assert_eq!(c.threshold, 1);
        assert!(c.write_cache);
    }

    #[test]
    fn default_prefetch_is_adaptive() {
        let p = PrefetchConfig::default();
        assert!(p.adaptive);
        assert_eq!(p.max_k, 16);
        assert!(p.high_mark > p.low_mark);
    }

    #[test]
    fn all_covers_eight_distinct_protocols() {
        let mut names: Vec<_> = ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
