//! Scalable sharer-set representations for the home directory.
//!
//! The 1994 paper's directory is a full-map presence vector — one bit per
//! node, which caps the machine at the width of a word. This module
//! abstracts the sharer set behind [`SharerSet`], with four organizations
//! selected by [`DirOrg`]:
//!
//! * **`FullMap`** — the paper's presence vector, bit-identical to the
//!   original `u64` implementation (and still limited to 64 nodes);
//! * **`LimitedPtr`** (Dir_i_B / Dir_i_NB) — `i` node pointers. On pointer
//!   overflow, Dir_i_B degrades to broadcast invalidation while Dir_i_NB
//!   recalls (invalidates) one tracked copy to free a pointer;
//! * **`CoarseVector`** — one bit per *region* of `region` consecutive
//!   nodes; invalidations multicast to every node of every marked region.
//!   With `region == 1` this is an exact (128-node) full map;
//! * **`Directoryless`** — a DLS-style shared-LLC organization keeping only
//!   a "may be cached somewhere" flag; every invalidation or update
//!   broadcasts.
//!
//! All organizations maintain the *over-approximation invariant*: the set
//! may cover nodes that hold no copy (caches tolerate spurious `Inval` /
//! `Update` / `Interrogate` messages by acknowledging them), but it never
//! misses a node that does. Exclusive ownership (`DirState::Modified`)
//! stays exact in every organization — only the *shared* copy set is
//! approximated.
//!
//! # Determinism contract
//!
//! Fan-out iteration ([`SharerSet::for_each_target`]) visits nodes in
//! **ascending node-id order** in every organization. The simulator's
//! byte-identical artifact guarantees (parallel sweeps, journal resume,
//! cross-process determinism) depend on message emission order, so this
//! ordering is part of the public contract, not an implementation detail.

use std::fmt;

use dirext_trace::NodeId;

/// The hard machine-size ceiling across all organizations (node ids are
/// 16-bit; awaiting-acknowledgment masks are sized for this many nodes).
pub const MAX_NODES: usize = 1024;

/// Maximum pointers a limited-pointer directory entry can hold.
pub const MAX_PTRS: usize = 8;

/// Regions representable by the coarse-vector organization (two words).
pub const MAX_REGIONS: usize = 128;

/// A directory organization: how each entry represents its sharer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirOrg {
    /// Full-map presence vector (the paper's directory; ≤ 64 nodes).
    FullMap,
    /// Limited-pointer directory with `ptrs` pointers. `broadcast` selects
    /// Dir_i_B (overflow ⇒ broadcast) over Dir_i_NB (overflow ⇒ recall one
    /// tracked copy).
    LimitedPtr {
        /// Number of sharer pointers per entry (1..=8).
        ptrs: u8,
        /// Dir_i_B (true) or Dir_i_NB (false).
        broadcast: bool,
    },
    /// Coarse bit vector over regions of `region` consecutive nodes.
    CoarseVector {
        /// Nodes per region bit (1, 2, 4, ... ; `region == 1` is exact).
        region: u16,
    },
    /// Directoryless / shared-LLC (DLS-style): a single may-be-cached flag;
    /// all coherence fan-out broadcasts.
    Directoryless,
}

impl DirOrg {
    /// The organizations exercised by the directory-scaling sweep.
    pub const ALL: [DirOrg; 5] = [
        DirOrg::FullMap,
        DirOrg::LimitedPtr {
            ptrs: 4,
            broadcast: true,
        },
        DirOrg::LimitedPtr {
            ptrs: 4,
            broadcast: false,
        },
        DirOrg::CoarseVector { region: 8 },
        DirOrg::Directoryless,
    ];

    /// The largest machine this organization can represent.
    pub fn max_nodes(self) -> usize {
        match self {
            DirOrg::FullMap => 64,
            DirOrg::LimitedPtr { .. } => MAX_NODES,
            DirOrg::CoarseVector { region } => (region as usize).saturating_mul(MAX_REGIONS),
            DirOrg::Directoryless => MAX_NODES,
        }
    }

    /// Validates this organization for an `nprocs`-node machine, returning
    /// an actionable message on failure.
    pub fn validate(self, nprocs: usize) -> Result<(), DirOrgError> {
        if nprocs == 0 {
            return Err(DirOrgError {
                org: self,
                nprocs,
                detail: "a machine needs at least one node".to_owned(),
            });
        }
        if let DirOrg::LimitedPtr { ptrs, .. } = self {
            if ptrs == 0 || ptrs as usize > MAX_PTRS {
                return Err(DirOrgError {
                    org: self,
                    nprocs,
                    detail: format!("pointer count {ptrs} outside 1..={MAX_PTRS}"),
                });
            }
        }
        if let DirOrg::CoarseVector { region } = self {
            if region == 0 || !region.is_power_of_two() {
                return Err(DirOrgError {
                    org: self,
                    nprocs,
                    detail: format!("region size {region} must be a power of two"),
                });
            }
        }
        let max = self.max_nodes().min(MAX_NODES);
        if nprocs > max {
            return Err(DirOrgError {
                org: self,
                nprocs,
                detail: format!("supports at most {max} nodes"),
            });
        }
        Ok(())
    }

    /// Whether the sharer set stays exact (no over-approximation) as long
    /// as it never overflows.
    pub fn is_exact(self) -> bool {
        match self {
            DirOrg::FullMap => true,
            DirOrg::LimitedPtr { .. } => true, // until overflow
            DirOrg::CoarseVector { region } => region == 1,
            DirOrg::Directoryless => false,
        }
    }

    /// An empty sharer set of this organization.
    pub fn empty_set(self) -> SharerSet {
        match self {
            DirOrg::FullMap => SharerSet::Full { bits: 0 },
            DirOrg::LimitedPtr { ptrs, broadcast } => SharerSet::Limited {
                ptrs: [0; MAX_PTRS],
                len: 0,
                cap: ptrs,
                broadcast,
                overflow: false,
            },
            DirOrg::CoarseVector { region } => SharerSet::Coarse {
                words: [0; 2],
                region,
            },
            DirOrg::Directoryless => SharerSet::Directoryless { present: false },
        }
    }

    /// Parses a CLI organization name: `full`, `ptr<i>b`, `ptr<i>nb`,
    /// `coarse<k>` or `none`.
    pub fn parse(s: &str) -> Option<DirOrg> {
        match s {
            "full" => return Some(DirOrg::FullMap),
            "none" => return Some(DirOrg::Directoryless),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("ptr") {
            let (num, broadcast) = if let Some(n) = rest.strip_suffix("nb") {
                (n, false)
            } else if let Some(n) = rest.strip_suffix('b') {
                (n, true)
            } else {
                return None;
            };
            let ptrs: u8 = num.parse().ok()?;
            return Some(DirOrg::LimitedPtr { ptrs, broadcast });
        }
        if let Some(num) = s.strip_prefix("coarse") {
            let region: u16 = num.parse().ok()?;
            return Some(DirOrg::CoarseVector { region });
        }
        None
    }

    /// The CLI name of this organization (inverse of [`DirOrg::parse`]).
    pub fn cli_name(self) -> String {
        match self {
            DirOrg::FullMap => "full".to_owned(),
            DirOrg::LimitedPtr { ptrs, broadcast } => {
                format!("ptr{ptrs}{}", if broadcast { "b" } else { "nb" })
            }
            DirOrg::CoarseVector { region } => format!("coarse{region}"),
            DirOrg::Directoryless => "none".to_owned(),
        }
    }
}

impl fmt::Display for DirOrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirOrg::FullMap => write!(f, "full-map"),
            DirOrg::LimitedPtr { ptrs, broadcast } => {
                write!(f, "Dir{}{}", ptrs, if *broadcast { "B" } else { "NB" })
            }
            DirOrg::CoarseVector { region } => write!(f, "coarse-vector/{region}"),
            DirOrg::Directoryless => write!(f, "directoryless"),
        }
    }
}

/// An unsupported directory-organization configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOrgError {
    /// The configured organization.
    pub org: DirOrg,
    /// The requested machine size.
    pub nprocs: usize,
    /// What is wrong with the combination.
    pub detail: String,
}

impl fmt::Display for DirOrgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "directory organization `{}` ({}) cannot serve a {}-node machine: {}",
            self.org.cli_name(),
            self.org,
            self.nprocs,
            self.detail
        )
    }
}

impl std::error::Error for DirOrgError {}

/// Outcome of adding a node to a sharer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// The node is covered (newly added or already present).
    Tracked,
    /// Dir_i_B ran out of pointers *on this add*: the set degraded to
    /// broadcast coverage. (Later adds to an already-overflowed set report
    /// `Tracked`.)
    Overflowed,
    /// Dir_i_NB ran out of pointers: the returned victim's pointer was
    /// evicted to make room and its copy must be invalidated (recalled) by
    /// the caller.
    Evicted(NodeId),
}

/// How a coherence fan-out relates to the true sharer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FanoutClass {
    /// The targets are exactly the tracked sharers.
    Exact,
    /// Overflow/directoryless broadcast: every node may be a target.
    Broadcast,
    /// Coarse-vector region multicast: targets cover whole regions.
    Multicast,
}

/// A directory entry's sharer set under one of the [`DirOrg`]
/// organizations. See the module docs for semantics and the determinism
/// contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharerSet {
    /// Full-map presence bits (≤ 64 nodes).
    Full {
        /// One presence bit per node.
        bits: u64,
    },
    /// Limited-pointer set (Dir_i_B / Dir_i_NB).
    Limited {
        /// Sharer pointers, insertion-ordered; `ptrs[..len]` are live.
        ptrs: [u16; MAX_PTRS],
        /// Live pointer count.
        len: u8,
        /// Configured pointer capacity (1..=8).
        cap: u8,
        /// Dir_i_B (broadcast on overflow) vs Dir_i_NB (evict on overflow).
        broadcast: bool,
        /// Dir_i_B only: the set overflowed and now covers every node.
        overflow: bool,
    },
    /// Coarse region-bit vector (≤ 128 regions).
    Coarse {
        /// One bit per region of `region` consecutive nodes.
        words: [u64; 2],
        /// Nodes per region.
        region: u16,
    },
    /// Directoryless: a single may-be-cached flag.
    Directoryless {
        /// Whether any cache may hold a copy.
        present: bool,
    },
}

impl SharerSet {
    /// Whether `n` *may* hold a copy (over-approximate: never a false
    /// negative).
    pub fn may_contain(&self, n: NodeId) -> bool {
        match self {
            SharerSet::Full { bits } => bits & (1u64 << n.idx()) != 0,
            SharerSet::Limited {
                ptrs,
                len,
                overflow,
                ..
            } => *overflow || ptrs[..*len as usize].contains(&n.0),
            SharerSet::Coarse { words, region } => {
                let r = n.idx() / *region as usize;
                words[r / 64] & (1u64 << (r % 64)) != 0
            }
            SharerSet::Directoryless { present } => *present,
        }
    }

    /// Whether `n` *certainly* holds a copy (under-approximate: never a
    /// false positive). Only exact organizations can say yes.
    pub fn certainly_contains(&self, n: NodeId) -> bool {
        match self {
            SharerSet::Full { .. } => self.may_contain(n),
            SharerSet::Limited { overflow, .. } => !overflow && self.may_contain(n),
            SharerSet::Coarse { region, .. } => *region == 1 && self.may_contain(n),
            SharerSet::Directoryless { .. } => false,
        }
    }

    /// The exact sharer count, when the organization knows it. An empty set
    /// is exactly empty in every organization.
    pub fn exact_count(&self) -> Option<u32> {
        match self {
            SharerSet::Full { bits } => Some(bits.count_ones()),
            SharerSet::Limited { len, overflow, .. } => (!overflow).then_some(*len as u32),
            SharerSet::Coarse { words, region } => {
                let pop = words[0].count_ones() + words[1].count_ones();
                if pop == 0 || *region == 1 {
                    Some(pop)
                } else {
                    None
                }
            }
            SharerSet::Directoryless { present } => (!present).then_some(0),
        }
    }

    /// Whether the set is known to be empty.
    pub fn exactly_empty(&self) -> bool {
        self.exact_count() == Some(0)
    }

    /// Whether `n` is known to be the *only* sharer (drives exclusivity
    /// upgrades; approximate organizations conservatively answer no).
    pub fn sole_sharer(&self, n: NodeId) -> bool {
        self.exact_count() == Some(1) && self.certainly_contains(n)
    }

    /// Number of nodes a full fan-out would cover (the upper bound the
    /// `invals_sent` / `updates_sent` accounting uses).
    pub fn covered_count(&self, nprocs: usize) -> u32 {
        match self {
            SharerSet::Full { bits } => bits.count_ones(),
            SharerSet::Limited { len, overflow, .. } => {
                if *overflow {
                    nprocs as u32
                } else {
                    *len as u32
                }
            }
            SharerSet::Coarse { words, region } => {
                let mut covered = 0u32;
                let nregions = nprocs.div_ceil(*region as usize);
                for r in 0..nregions {
                    if words[r / 64] & (1u64 << (r % 64)) != 0 {
                        let base = r * *region as usize;
                        covered += (nprocs - base).min(*region as usize) as u32;
                    }
                }
                covered
            }
            SharerSet::Directoryless { present } => {
                if *present {
                    nprocs as u32
                } else {
                    0
                }
            }
        }
    }

    /// How a fan-out over this set relates to the true sharers (recorded on
    /// transient states for trace conformance).
    pub fn fanout_class(&self) -> FanoutClass {
        match self {
            SharerSet::Full { .. } => FanoutClass::Exact,
            SharerSet::Limited { overflow, .. } => {
                if *overflow {
                    FanoutClass::Broadcast
                } else {
                    FanoutClass::Exact
                }
            }
            SharerSet::Coarse { region, .. } => {
                if *region == 1 {
                    FanoutClass::Exact
                } else {
                    FanoutClass::Multicast
                }
            }
            SharerSet::Directoryless { present } => {
                if *present {
                    FanoutClass::Broadcast
                } else {
                    FanoutClass::Exact // an empty set fans out to nobody
                }
            }
        }
    }

    /// Adds `n` to the set. See [`AddOutcome`] for the overflow behaviors.
    pub fn add(&mut self, n: NodeId) -> AddOutcome {
        match self {
            SharerSet::Full { bits } => {
                debug_assert!(n.idx() < 64, "full-map add past 64 nodes");
                *bits |= 1u64 << n.idx();
                AddOutcome::Tracked
            }
            SharerSet::Limited {
                ptrs,
                len,
                cap,
                broadcast,
                overflow,
            } => {
                if *overflow || ptrs[..*len as usize].contains(&n.0) {
                    return AddOutcome::Tracked;
                }
                if *len < *cap {
                    ptrs[*len as usize] = n.0;
                    *len += 1;
                    return AddOutcome::Tracked;
                }
                if *broadcast {
                    // Dir_i_B: stop tracking; the set now covers everyone.
                    *overflow = true;
                    *len = 0;
                    AddOutcome::Overflowed
                } else {
                    // Dir_i_NB: evict the oldest pointer (FIFO) to make
                    // room; the caller must recall (invalidate) the victim.
                    let victim = NodeId(ptrs[0]);
                    ptrs.copy_within(1..*len as usize, 0);
                    ptrs[*len as usize - 1] = n.0;
                    AddOutcome::Evicted(victim)
                }
            }
            SharerSet::Coarse { words, region } => {
                let r = n.idx() / *region as usize;
                debug_assert!(r < MAX_REGIONS, "coarse-vector add past 128 regions");
                words[r / 64] |= 1u64 << (r % 64);
                AddOutcome::Tracked
            }
            SharerSet::Directoryless { present } => {
                *present = true;
                AddOutcome::Tracked
            }
        }
    }

    /// Removes `n` where the organization can (exact sets). Approximate
    /// organizations keep the over-approximation — a region bit cannot be
    /// cleared for one member, and a broadcast flag cannot un-overflow —
    /// which preserves the no-false-negative invariant.
    pub fn remove(&mut self, n: NodeId) {
        match self {
            SharerSet::Full { bits } => *bits &= !(1u64 << n.idx()),
            SharerSet::Limited {
                ptrs,
                len,
                overflow,
                ..
            } => {
                if *overflow {
                    return;
                }
                if let Some(i) = ptrs[..*len as usize].iter().position(|&p| p == n.0) {
                    ptrs.copy_within(i + 1..*len as usize, i);
                    *len -= 1;
                }
            }
            SharerSet::Coarse { words, region } => {
                if *region == 1 {
                    let r = n.idx();
                    words[r / 64] &= !(1u64 << (r % 64));
                }
            }
            SharerSet::Directoryless { .. } => {}
        }
    }

    /// Empties the set (ownership transfers and invalidation completions
    /// re-exact every organization).
    pub fn clear(&mut self) {
        match self {
            SharerSet::Full { bits } => *bits = 0,
            SharerSet::Limited { len, overflow, .. } => {
                *len = 0;
                *overflow = false;
            }
            SharerSet::Coarse { words, .. } => *words = [0; 2],
            SharerSet::Directoryless { present } => *present = false,
        }
    }

    /// Calls `f` for every covered node except `except`, in ascending
    /// node-id order (the determinism contract — see the module docs).
    pub fn for_each_target(
        &self,
        nprocs: usize,
        except: Option<NodeId>,
        mut f: impl FnMut(NodeId),
    ) {
        let skip = |n: NodeId| except == Some(n);
        match self {
            SharerSet::Full { bits } => {
                let mut mask = *bits;
                if let Some(e) = except {
                    mask &= !(1u64 << e.idx());
                }
                while mask != 0 {
                    let i = mask.trailing_zeros();
                    mask &= mask - 1;
                    f(NodeId(i as u16));
                }
            }
            SharerSet::Limited {
                ptrs,
                len,
                overflow,
                ..
            } => {
                if *overflow {
                    for i in 0..nprocs as u16 {
                        if !skip(NodeId(i)) {
                            f(NodeId(i));
                        }
                    }
                    return;
                }
                // Insertion order is FIFO, not sorted: walk ascending by
                // repeated minimum scan (cap ≤ 8, so this is cheap and
                // allocation-free).
                let live = &ptrs[..*len as usize];
                let mut prev: i32 = -1;
                loop {
                    let mut next: i32 = i32::MAX;
                    for &p in live {
                        if (p as i32) > prev && (p as i32) < next {
                            next = p as i32;
                        }
                    }
                    if next == i32::MAX {
                        return;
                    }
                    prev = next;
                    let n = NodeId(next as u16);
                    if !skip(n) {
                        f(n);
                    }
                }
            }
            SharerSet::Coarse { words, region } => {
                let nregions = nprocs.div_ceil(*region as usize);
                for r in 0..nregions {
                    if words[r / 64] & (1u64 << (r % 64)) == 0 {
                        continue;
                    }
                    let base = r * *region as usize;
                    let end = (base + *region as usize).min(nprocs);
                    for i in base..end {
                        let n = NodeId(i as u16);
                        if !skip(n) {
                            f(n);
                        }
                    }
                }
            }
            SharerSet::Directoryless { present } => {
                if !present {
                    return;
                }
                for i in 0..nprocs as u16 {
                    if !skip(NodeId(i)) {
                        f(NodeId(i));
                    }
                }
            }
        }
    }

    /// The coverage of the first 64 nodes as a bitmask (diagnostics and the
    /// invariant snapshots of ≤ 64-node machines).
    pub fn low_mask(&self, nprocs: usize) -> u64 {
        if let SharerSet::Full { bits } = self {
            return *bits;
        }
        let mut mask = 0u64;
        self.for_each_target(nprocs.min(64), None, |n| mask |= 1u64 << n.idx());
        mask
    }
}

/// A per-pending-operation acknowledgment mask, inline for ≤ 64-node
/// machines and heap-spilled (recycled by the directory controller) above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckMask {
    /// One word of per-node bits (machines of ≤ 64 nodes).
    Inline(u64),
    /// `ceil(nprocs/64)` words for larger machines.
    Wide(Box<[u64]>),
}

impl AckMask {
    /// An empty mask for an `nprocs`-node machine, reusing `pool` storage
    /// when available (zero steady-state allocation on the wide path).
    pub fn empty(nprocs: usize, pool: &mut Vec<Box<[u64]>>) -> AckMask {
        if nprocs <= 64 {
            AckMask::Inline(0)
        } else {
            match pool.pop() {
                Some(mut words) => {
                    words.fill(0);
                    AckMask::Wide(words)
                }
                None => AckMask::Wide(vec![0u64; nprocs.div_ceil(64)].into_boxed_slice()),
            }
        }
    }

    /// Returns wide storage to the recycle pool.
    pub fn recycle(self, pool: &mut Vec<Box<[u64]>>) {
        if let AckMask::Wide(words) = self {
            pool.push(words);
        }
    }

    /// Sets node `n`'s bit.
    #[inline]
    pub fn set(&mut self, n: NodeId) {
        match self {
            AckMask::Inline(w) => *w |= 1u64 << n.idx(),
            AckMask::Wide(words) => words[n.idx() / 64] |= 1u64 << (n.idx() % 64),
        }
    }

    /// Clears node `n`'s bit.
    #[inline]
    pub fn clear(&mut self, n: NodeId) {
        match self {
            AckMask::Inline(w) => *w &= !(1u64 << n.idx()),
            AckMask::Wide(words) => words[n.idx() / 64] &= !(1u64 << (n.idx() % 64)),
        }
    }

    /// Whether node `n`'s bit is set.
    #[inline]
    pub fn test(&self, n: NodeId) -> bool {
        match self {
            AckMask::Inline(w) => w & (1u64 << n.idx()) != 0,
            AckMask::Wide(words) => words[n.idx() / 64] & (1u64 << (n.idx() % 64)) != 0,
        }
    }

    /// Whether no bits are set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            AckMask::Inline(w) => *w == 0,
            AckMask::Wide(words) => words.iter().all(|&w| w == 0),
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        match self {
            AckMask::Inline(w) => w.count_ones(),
            AckMask::Wide(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// The low 64 bits (diagnostic rendering).
    pub fn low_bits(&self) -> u64 {
        match self {
            AckMask::Inline(w) => *w,
            AckMask::Wide(words) => words.first().copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn targets(s: &SharerSet, nprocs: usize, except: Option<NodeId>) -> Vec<u16> {
        let mut v = Vec::new();
        s.for_each_target(nprocs, except, |x| v.push(x.0));
        v
    }

    #[test]
    fn parse_round_trips() {
        for name in ["full", "ptr4b", "ptr4nb", "ptr1b", "coarse8", "coarse1", "none"] {
            let org = DirOrg::parse(name).expect(name);
            assert_eq!(org.cli_name(), name);
        }
        assert_eq!(DirOrg::parse("ptr0x"), None);
        assert_eq!(DirOrg::parse("coarsely"), None);
        assert_eq!(DirOrg::parse(""), None);
    }

    #[test]
    fn validation_names_the_limit() {
        let err = DirOrg::FullMap.validate(65).unwrap_err();
        assert!(err.to_string().contains("full"), "{err}");
        assert!(err.to_string().contains("64"), "{err}");
        assert!(DirOrg::FullMap.validate(64).is_ok());
        assert!(DirOrg::Directoryless.validate(1024).is_ok());
        assert!(DirOrg::Directoryless.validate(1025).is_err());
        // coarse8 covers 8 * 128 = 1024 nodes; coarse1 only 128.
        assert!(DirOrg::CoarseVector { region: 8 }.validate(1024).is_ok());
        assert!(DirOrg::CoarseVector { region: 1 }.validate(129).is_err());
        assert!(DirOrg::CoarseVector { region: 3 }.validate(16).is_err());
        assert!(DirOrg::LimitedPtr {
            ptrs: 9,
            broadcast: true
        }
        .validate(16)
        .is_err());
    }

    #[test]
    fn full_map_matches_bit_semantics() {
        let mut s = DirOrg::FullMap.empty_set();
        assert!(s.exactly_empty());
        s.add(n(3));
        s.add(n(7));
        s.add(n(3));
        assert_eq!(s.exact_count(), Some(2));
        assert!(s.may_contain(n(3)) && s.certainly_contains(n(7)));
        assert_eq!(targets(&s, 16, Some(n(3))), vec![7]);
        assert_eq!(s.low_mask(16), (1 << 3) | (1 << 7));
        s.remove(n(3));
        assert!(s.sole_sharer(n(7)));
        s.clear();
        assert!(s.exactly_empty());
    }

    #[test]
    fn limited_b_overflows_to_broadcast() {
        let mut s = DirOrg::LimitedPtr {
            ptrs: 2,
            broadcast: true,
        }
        .empty_set();
        assert_eq!(s.add(n(5)), AddOutcome::Tracked);
        assert_eq!(s.add(n(1)), AddOutcome::Tracked);
        assert_eq!(s.exact_count(), Some(2));
        assert_eq!(s.fanout_class(), FanoutClass::Exact);
        // Ascending order despite FIFO insertion.
        assert_eq!(targets(&s, 8, None), vec![1, 5]);
        assert_eq!(s.add(n(3)), AddOutcome::Overflowed);
        assert_eq!(s.fanout_class(), FanoutClass::Broadcast);
        assert_eq!(s.exact_count(), None);
        assert!(s.may_contain(n(7)) && !s.certainly_contains(n(7)));
        assert_eq!(targets(&s, 4, Some(n(2))), vec![0, 1, 3]);
        assert_eq!(s.add(n(6)), AddOutcome::Tracked);
        s.clear();
        assert_eq!(s.fanout_class(), FanoutClass::Exact);
        assert!(s.exactly_empty());
    }

    #[test]
    fn limited_nb_evicts_fifo() {
        let mut s = DirOrg::LimitedPtr {
            ptrs: 2,
            broadcast: false,
        }
        .empty_set();
        s.add(n(5));
        s.add(n(1));
        assert_eq!(s.add(n(9)), AddOutcome::Evicted(n(5)));
        assert!(!s.may_contain(n(5)));
        assert_eq!(targets(&s, 16, None), vec![1, 9]);
        // Still exact: eviction keeps the pointer set precise.
        assert_eq!(s.exact_count(), Some(2));
        s.remove(n(9));
        assert!(s.sole_sharer(n(1)));
    }

    #[test]
    fn coarse_regions_multicast() {
        let mut s = DirOrg::CoarseVector { region: 4 }.empty_set();
        s.add(n(5)); // region 1 = nodes 4..8
        assert_eq!(s.fanout_class(), FanoutClass::Multicast);
        assert!(s.may_contain(n(6)) && !s.certainly_contains(n(6)));
        assert_eq!(s.exact_count(), None);
        assert_eq!(s.covered_count(16), 4);
        assert_eq!(targets(&s, 16, Some(n(5))), vec![4, 6, 7]);
        // remove() cannot clear a region for one member.
        s.remove(n(5));
        assert!(s.may_contain(n(5)));
        s.clear();
        assert!(s.exactly_empty());
        // A truncated final region fans out only to real nodes.
        s.add(n(9));
        assert_eq!(targets(&s, 10, None), vec![8, 9]);
        assert_eq!(s.covered_count(10), 2);
    }

    #[test]
    fn coarse_region_one_is_exact() {
        let mut s = DirOrg::CoarseVector { region: 1 }.empty_set();
        s.add(n(100));
        s.add(n(3));
        assert_eq!(s.fanout_class(), FanoutClass::Exact);
        assert_eq!(s.exact_count(), Some(2));
        assert!(s.certainly_contains(n(100)));
        s.remove(n(3));
        assert!(s.sole_sharer(n(100)));
        assert_eq!(targets(&s, 128, None), vec![100]);
    }

    #[test]
    fn directoryless_broadcasts_once_present() {
        let mut s = DirOrg::Directoryless.empty_set();
        assert!(s.exactly_empty());
        assert_eq!(targets(&s, 4, None), Vec::<u16>::new());
        s.add(n(2));
        assert_eq!(s.fanout_class(), FanoutClass::Broadcast);
        assert!(s.may_contain(n(0)) && !s.certainly_contains(n(2)));
        assert_eq!(s.exact_count(), None);
        s.remove(n(2)); // cannot untrack
        assert_eq!(targets(&s, 4, Some(n(1))), vec![0, 2, 3]);
        s.clear();
        assert!(s.exactly_empty());
    }

    #[test]
    fn ack_mask_inline_and_wide() {
        let mut pool = Vec::new();
        let mut m = AckMask::empty(16, &mut pool);
        assert!(matches!(m, AckMask::Inline(_)));
        m.set(n(3));
        assert!(m.test(n(3)) && !m.test(n(4)));
        m.clear(n(3));
        assert!(m.is_empty());

        let mut w = AckMask::empty(256, &mut pool);
        assert!(matches!(w, AckMask::Wide(_)));
        w.set(n(200));
        w.set(n(5));
        assert_eq!(w.count(), 2);
        assert!(w.test(n(200)));
        w.clear(n(200));
        assert!(!w.is_empty());
        w.clear(n(5));
        assert!(w.is_empty());
        w.recycle(&mut pool);
        assert_eq!(pool.len(), 1);
        // Recycled storage comes back zeroed.
        let w2 = AckMask::empty(256, &mut pool);
        assert!(w2.is_empty() && pool.is_empty());
    }

    #[test]
    fn fanout_order_is_ascending_everywhere() {
        for org in DirOrg::ALL {
            let nprocs = 64.min(org.max_nodes());
            let mut s = org.empty_set();
            for i in [9u16, 2, 30, 17] {
                s.add(n(i));
            }
            let t = targets(&s, nprocs, None);
            let mut sorted = t.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(t, sorted, "{org}: fanout must ascend");
        }
    }
}
