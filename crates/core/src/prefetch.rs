//! Adaptive sequential prefetching (extension P).
//!
//! On a read miss to block `b`, the SLC controller prefetches the `K`
//! consecutive blocks following `b` that are neither cached nor pending
//! ("the K consecutive blocks directly following the missing block in the
//! address space are accessed in the cache... prefetches are issued one at
//! a time, and are pipelined in the memory system with the original miss").
//! The prefetch stream also continues on the *first reference* to a
//! prefetched block, which keeps the pipeline filled during sequential
//! scans.
//!
//! The adaptive mechanism counts the fraction of prefetched blocks that are
//! later referenced and adjusts `K` against preset marks. The hardware
//! budget is the paper's: **three modulo-16 counters** per cache
//! (prefetches-arrived, useful-prefetches, restart) and two bits per line
//! (the `prefetched` bit lives in [`crate::line::Line`]; the second bit is
//! the line's membership in the useful count, folded into the same flag
//! here). The exact thresholds follow our reconstruction of the ICPP'93
//! scheme (see `DESIGN.md` §4.1).

use crate::config::PrefetchConfig;

/// Statistics exported by the prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Prefetched blocks that were later referenced before invalidation or
    /// replacement.
    pub useful: u64,
    /// Times the degree K was increased.
    pub k_increases: u64,
    /// Times the degree K was decreased.
    pub k_decreases: u64,
}

/// The per-cache adaptive sequential prefetch controller.
///
/// # Example
///
/// ```
/// use dirext_core::config::PrefetchConfig;
/// use dirext_core::Prefetcher;
///
/// let mut p = Prefetcher::new(PrefetchConfig::default());
/// assert_eq!(p.k(), 1);
/// // A perfectly sequential stream: every prefetch is useful, K grows.
/// for _ in 0..64 {
///     p.on_prefetch_issued();
///     p.on_prefetch_arrived();
///     p.on_useful_first_reference();
/// }
/// assert!(p.k() > 1);
/// ```
#[derive(Debug, Clone)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    k: u32,
    /// Modulo-16 counter of prefetched blocks that arrived.
    arrived: u8,
    /// Modulo-16 counter of useful prefetches in the current window.
    useful: u8,
    /// Modulo-16 counter of read misses observed while K == 0.
    restart_misses: u8,
    /// Sequential misses (predecessor block cached) in the restart window.
    restart_sequential: u8,
    stats: PrefetchStats,
}

impl Prefetcher {
    /// Creates a prefetcher with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `initial_k > max_k`.
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(cfg.initial_k <= cfg.max_k, "initial K exceeds maximum");
        Prefetcher {
            k: cfg.initial_k,
            cfg,
            arrived: 0,
            useful: 0,
            restart_misses: 0,
            restart_sequential: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// The current degree of prefetching.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Called on a demand read miss. `predecessor_cached` reports whether
    /// the block immediately preceding the missing one is resident — the
    /// restart heuristic's evidence of sequential locality while K is zero.
    /// Returns the number of blocks to prefetch after this miss.
    pub fn on_demand_miss(&mut self, predecessor_cached: bool) -> u32 {
        if self.k == 0 && self.cfg.adaptive {
            self.restart_misses = (self.restart_misses + 1) % 16;
            if predecessor_cached {
                self.restart_sequential = self.restart_sequential.saturating_add(1);
            }
            if self.restart_misses == 0 {
                if self.restart_sequential >= self.cfg.restart_mark {
                    self.k = 1;
                    self.stats.k_increases += 1;
                }
                self.restart_sequential = 0;
            }
        }
        self.k
    }

    /// Called on the first reference to a block that arrived by prefetch.
    /// Returns the number of blocks to prefetch ahead of it (continuing the
    /// stream).
    pub fn on_useful_first_reference(&mut self) -> u32 {
        self.stats.useful += 1;
        if self.cfg.adaptive {
            self.useful = (self.useful + 1).min(16);
        }
        self.k
    }

    /// Called when a prefetch request is accepted into the SLWB.
    pub fn on_prefetch_issued(&mut self) {
        self.stats.issued += 1;
    }

    /// Called when a prefetched block arrives. Every 16 arrivals the degree
    /// adapts: useful fraction ≥ high mark doubles K (up to the maximum);
    /// below the low mark K halves (possibly to zero, disabling
    /// prefetching).
    pub fn on_prefetch_arrived(&mut self) {
        if !self.cfg.adaptive {
            return;
        }
        self.arrived = (self.arrived + 1) % 16;
        if self.arrived == 0 {
            if self.useful >= self.cfg.high_mark {
                let new_k = (self.k * 2).clamp(1, self.cfg.max_k);
                if new_k > self.k {
                    self.stats.k_increases += 1;
                }
                self.k = new_k;
            } else if self.useful < self.cfg.low_mark {
                let new_k = self.k / 2;
                if new_k < self.k {
                    self.stats.k_decreases += 1;
                }
                self.k = new_k;
            }
            self.useful = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_window(p: &mut Prefetcher, useful_of_16: u32) {
        for i in 0..16 {
            p.on_prefetch_issued();
            if i < useful_of_16 {
                p.on_useful_first_reference();
            }
            p.on_prefetch_arrived();
        }
    }

    #[test]
    fn high_usefulness_doubles_k_up_to_max() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        assert_eq!(p.k(), 1);
        run_window(&mut p, 16);
        assert_eq!(p.k(), 2);
        run_window(&mut p, 16);
        assert_eq!(p.k(), 4);
        run_window(&mut p, 16);
        run_window(&mut p, 16);
        assert_eq!(p.k(), 16);
        run_window(&mut p, 16);
        assert_eq!(p.k(), 16, "K saturates at max_k");
    }

    #[test]
    fn low_usefulness_halves_k_down_to_zero() {
        let mut p = Prefetcher::new(PrefetchConfig {
            initial_k: 4,
            ..PrefetchConfig::default()
        });
        run_window(&mut p, 0);
        assert_eq!(p.k(), 2);
        run_window(&mut p, 0);
        assert_eq!(p.k(), 1);
        run_window(&mut p, 0);
        assert_eq!(p.k(), 0, "prefetching turns itself off");
        assert_eq!(p.stats().k_decreases, 3);
    }

    #[test]
    fn moderate_usefulness_keeps_k() {
        let mut p = Prefetcher::new(PrefetchConfig {
            initial_k: 4,
            ..PrefetchConfig::default()
        });
        run_window(&mut p, 8); // between low (6) and high (12)
        assert_eq!(p.k(), 4);
    }

    #[test]
    fn restart_heuristic_reenables_prefetching() {
        let mut p = Prefetcher::new(PrefetchConfig {
            initial_k: 1,
            ..PrefetchConfig::default()
        });
        run_window(&mut p, 0); // K -> 0
        assert_eq!(p.k(), 0);
        // 16 misses, most with the predecessor cached: sequential locality.
        for _ in 0..16 {
            assert_eq!(p.on_demand_miss(true), if p.k() == 0 { 0 } else { 1 });
        }
        assert_eq!(p.k(), 1, "restart counter re-enabled prefetching");
    }

    #[test]
    fn restart_needs_sequential_evidence() {
        let mut p = Prefetcher::new(PrefetchConfig {
            initial_k: 1,
            ..PrefetchConfig::default()
        });
        run_window(&mut p, 0);
        for _ in 0..64 {
            p.on_demand_miss(false); // random misses: no evidence
        }
        assert_eq!(p.k(), 0);
    }

    #[test]
    fn non_adaptive_keeps_fixed_k() {
        let mut p = Prefetcher::new(PrefetchConfig {
            initial_k: 4,
            adaptive: false,
            ..PrefetchConfig::default()
        });
        run_window(&mut p, 0);
        run_window(&mut p, 16);
        assert_eq!(p.k(), 4);
        assert_eq!(p.on_demand_miss(false), 4);
    }

    #[test]
    #[should_panic(expected = "initial K exceeds maximum")]
    fn invalid_config_rejected() {
        let _ = Prefetcher::new(PrefetchConfig {
            initial_k: 32,
            max_k: 16,
            ..PrefetchConfig::default()
        });
    }
}
