//! Keeps the transition-table section of `docs/PROTOCOL.md` in sync with
//! the declarative tables in `proto::table`. The markdown between the
//! `BEGIN/END GENERATED TABLES` markers must equal `render_markdown()`
//! exactly; regenerate it with
//! `DIREXT_BLESS=1 cargo test -p dirext-core --test doc_tables`.

use std::fs;
use std::path::PathBuf;

use dirext_core::proto::table::render_markdown;

const BEGIN: &str = "<!-- BEGIN GENERATED TABLES -->";
const END: &str = "<!-- END GENERATED TABLES -->";

fn doc_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md")
}

#[test]
fn protocol_doc_tables_match_the_code() {
    let path = doc_path();
    let doc =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let start = doc
        .find(BEGIN)
        .unwrap_or_else(|| panic!("{}: missing '{BEGIN}' marker", path.display()));
    let end = doc
        .find(END)
        .unwrap_or_else(|| panic!("{}: missing '{END}' marker", path.display()));
    assert!(start < end, "markers out of order in {}", path.display());

    let embedded = &doc[start + BEGIN.len()..end];
    let generated = format!("\n\n{}\n", render_markdown());
    if embedded == generated {
        return;
    }
    if std::env::var_os("DIREXT_BLESS").is_some() {
        let updated = format!("{}{BEGIN}{generated}{}", &doc[..start], &doc[end..]);
        fs::write(&path, updated).unwrap();
        return;
    }
    panic!(
        "{} is stale relative to proto::table; regenerate with \
         DIREXT_BLESS=1 cargo test -p dirext-core --test doc_tables",
        path.display()
    );
}
