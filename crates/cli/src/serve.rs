//! `dirext serve` / `dirext query` — a journal-backed result server.
//!
//! [`run_serve`] turns a sweep journal into a long-running result cache:
//! a daemon listening on a Unix domain socket, answering one-line JSON
//! experiment queries. Cached cells are served directly from the journal
//! (including assembled fleet journals, so a finished fleet sweep doubles
//! as a pre-warmed cache); misses are computed on demand and journaled,
//! so every configuration is simulated at most once across the daemon's
//! lifetime *and* across restarts.
//!
//! The daemon degrades gracefully instead of falling over:
//!
//! - **Bounded in-flight computes** (`--max-inflight`): a miss is only
//!   admitted while a compute slot is free. When saturated, misses get
//!   an explicit `{"status":"busy"}` response immediately — load is shed
//!   at the door, no unbounded queue builds up.
//! - **Cache hits always go through**, even when every compute slot is
//!   busy: a hit touches only the in-memory journal index.
//! - **Request timeout** (`--request-timeout-ms`): a slow compute stops
//!   blocking its client with `{"status":"timeout"}`, but the compute
//!   keeps running and journals its result, so a retry becomes a hit.
//! - **Bounded connections** ([`MAX_CONNS`]): each connection holds a
//!   thread, so the accept loop admits at most a fixed number at once;
//!   excess connects get one `{"status":"error"}` line and a close.
//! - **Bounded request lines** ([`MAX_LINE_BYTES`]): an oversized line is
//!   drained (never buffered whole) and answered with a structured JSON
//!   error — the connection stays usable for the next request.
//! - **Idle-connection timeout** (`--idle-timeout-ms`): a connection that
//!   sends nothing for the window gets a final `{"status":"closed"}`
//!   notice and is released, so abandoned clients cannot pin connection
//!   slots forever.
//!
//! Protocol: newline-delimited JSON over the socket, one response line
//! per request line. A request is `{"app": "Water", "procs": 8, "scale":
//! "tiny", "protocol": "P+CW+M", "consistency": "rc", "network":
//! "uniform"}` — every field except `app` is optional — or `{"cmd":
//! "stats"}` for the daemon's counters. Responses carry a `status` of
//! `hit`, `computed`, `busy`, `timeout`, `error`, `closed`, or `stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_sim::experiments::{journal::cell_key, run_protocol_cfg, Journal};
use dirext_sim::NetworkKind;
use dirext_trace::Workload;
use dirext_workloads::{App, Scale};
use serde::{Content, Serialize};

use crate::Args;

/// Default journal path for `serve` when neither `--journal` nor
/// `--fleet` names one.
const DEFAULT_SERVE_JOURNAL: &str = "dirext-serve.jsonl";

/// The CLI-facing request/response text uses plain JSON lines; this is
/// the serve driver name baked into journal keys for cells the daemon
/// computed itself.
const SERVE_DRIVER: &str = "serve";

/// Longest request line the daemon will buffer. Anything longer is
/// drained off the wire and answered with a structured error; a valid
/// query is a few hundred bytes, so the cap only ever cuts off garbage.
pub(crate) const MAX_LINE_BYTES: usize = 64 * 1024;

/// Most connections served at once. Each holds a thread, so this is the
/// daemon's thread budget; connection 65 gets an error line and a close.
pub(crate) const MAX_CONNS: usize = 64;

/// The canonical CLI spelling of a network kind (inverse of the
/// `--network` parser in `main.rs`).
pub(crate) fn network_label(network: NetworkKind) -> String {
    match network {
        NetworkKind::Uniform => "uniform".to_owned(),
        NetworkKind::Mesh { link_bits } => format!("mesh{link_bits}"),
        NetworkKind::HierMesh { link_bits } => format!("hmesh{link_bits}"),
        NetworkKind::Ring { link_bits } => format!("ring{link_bits}"),
    }
}

fn parse_network(s: &str) -> Result<NetworkKind, String> {
    match s {
        "uniform" => Ok(NetworkKind::Uniform),
        "mesh64" => Ok(NetworkKind::Mesh { link_bits: 64 }),
        "mesh32" => Ok(NetworkKind::Mesh { link_bits: 32 }),
        "mesh16" => Ok(NetworkKind::Mesh { link_bits: 16 }),
        "hmesh64" => Ok(NetworkKind::HierMesh { link_bits: 64 }),
        "hmesh32" => Ok(NetworkKind::HierMesh { link_bits: 32 }),
        "hmesh16" => Ok(NetworkKind::HierMesh { link_bits: 16 }),
        "ring64" => Ok(NetworkKind::Ring { link_bits: 64 }),
        "ring32" => Ok(NetworkKind::Ring { link_bits: 32 }),
        "ring16" => Ok(NetworkKind::Ring { link_bits: 16 }),
        other => Err(format!(
            "unknown network '{other}' (uniform, mesh64/32/16, hmesh64/32/16, ring64/32/16)"
        )),
    }
}

/// One fully-validated experiment query.
struct Request {
    app: App,
    procs: usize,
    scale: Scale,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
}

impl Request {
    /// Parses and validates a request out of a JSON object, with
    /// actionable errors (the response the client sees).
    fn parse(req: &Content) -> Result<Request, String> {
        let app_name = req
            .get("app")
            .as_str()
            .ok_or("missing `app` (MP3D, Cholesky, Water, LU, Ocean)")?;
        let app = crate::parse_app(app_name).ok_or_else(|| {
            format!("unknown app '{app_name}' (MP3D, Cholesky, Water, LU, Ocean)")
        })?;
        let procs = usize::try_from(req.get("procs").as_u64().unwrap_or(16)).unwrap_or(0);
        if procs == 0 || procs > 64 {
            return Err(format!("`procs` must be between 1 and 64, got {procs}"));
        }
        let scale = match req.get("scale").as_str().unwrap_or("paper") {
            "paper" => Scale::Paper,
            "small" => Scale::Small,
            "tiny" => Scale::Tiny,
            other => return Err(format!("unknown scale '{other}' (paper, small, tiny)")),
        };
        let proto_name = req.get("protocol").as_str().unwrap_or("BASIC");
        let kind = crate::parse_protocol(proto_name).ok_or_else(|| {
            format!(
                "unknown protocol '{proto_name}' ({})",
                ProtocolKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        let consistency = match req.get("consistency").as_str().unwrap_or("rc") {
            "rc" => Consistency::Rc,
            "sc" => Consistency::Sc,
            other => return Err(format!("unknown consistency '{other}' (rc, sc)")),
        };
        let network = parse_network(req.get("network").as_str().unwrap_or("uniform"))?;
        if !kind.config(consistency).is_feasible() {
            return Err(format!(
                "{kind} is not implementable under {consistency:?}: the competitive-update \
                 mechanism needs relaxed consistency"
            ));
        }
        Ok(Request {
            app,
            procs,
            scale,
            kind,
            consistency,
            network,
        })
    }
}

/// The daemon's shared state: journal-as-cache, admission counters, and
/// a workload memo (workload generation is deterministic but not free,
/// so each `(app, procs, scale)` is generated once).
pub(crate) struct Server {
    journal: Arc<Journal>,
    max_inflight: usize,
    timeout: Duration,
    /// Close a connection that sends nothing for this long.
    idle_timeout: Duration,
    /// Connection budget (thread budget); [`MAX_CONNS`] in production,
    /// smaller in tests.
    max_conns: usize,
    /// Test hook: artificial per-compute delay in ms (`DIREXT_SERVE_SLOW_MS`),
    /// used to make saturation and timeouts deterministic in tests.
    slow_ms: u64,
    inflight: AtomicUsize,
    conns: AtomicUsize,
    workloads: Mutex<HashMap<String, Arc<Workload>>>,
    hits: AtomicU64,
    computed: AtomicU64,
    busy: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

/// Renders a response object; `entries` are `(key, value)` pairs.
fn response(entries: Vec<(&str, Content)>) -> String {
    let map = Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    );
    serde_json::to_string(&map).unwrap_or_else(|_| "{\"status\":\"error\"}".to_owned())
}

fn error_response(detail: String) -> String {
    response(vec![
        ("status", Content::Str("error".to_owned())),
        ("error", Content::Str(detail)),
    ])
}

impl Server {
    pub(crate) fn new(
        journal: Arc<Journal>,
        max_inflight: usize,
        timeout: Duration,
        slow_ms: u64,
    ) -> Server {
        Server {
            journal,
            max_inflight,
            timeout,
            idle_timeout: Duration::from_secs(30),
            max_conns: MAX_CONNS,
            slow_ms,
            inflight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            workloads: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Overrides the idle-connection timeout (`--idle-timeout-ms`).
    pub(crate) fn with_idle_timeout(mut self, idle: Duration) -> Server {
        self.idle_timeout = idle;
        self
    }

    /// Overrides the connection budget (tests only).
    #[cfg(test)]
    fn with_max_conns(mut self, max: usize) -> Server {
        self.max_conns = max;
        self
    }

    fn workload(&self, app: App, procs: usize, scale: Scale) -> Arc<Workload> {
        let memo_key = format!("{}/{procs}/{scale}", app.name());
        let mut memo = self.workloads.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            memo.entry(memo_key)
                .or_insert_with(|| Arc::new(app.workload(procs, scale))),
        )
    }

    /// One-line summary of the lifetime counters (logged at shutdown).
    pub(crate) fn stats_line(&self) -> String {
        format!(
            "{} hit(s), {} computed, {} busy-shed, {} timeout(s), {} error(s), {} cached cell(s)",
            self.hits.load(Ordering::Relaxed),
            self.computed.load(Ordering::Relaxed),
            self.busy.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.journal.completed_cells(),
        )
    }

    fn stats_response(&self) -> String {
        response(vec![
            ("status", Content::Str("stats".to_owned())),
            ("hits", Content::U64(self.hits.load(Ordering::Relaxed))),
            (
                "computed",
                Content::U64(self.computed.load(Ordering::Relaxed)),
            ),
            ("busy", Content::U64(self.busy.load(Ordering::Relaxed))),
            (
                "timeouts",
                Content::U64(self.timeouts.load(Ordering::Relaxed)),
            ),
            ("errors", Content::U64(self.errors.load(Ordering::Relaxed))),
            (
                "inflight",
                Content::U64(self.inflight.load(Ordering::Relaxed) as u64),
            ),
            ("max_inflight", Content::U64(self.max_inflight as u64)),
            (
                "connections",
                Content::U64(self.conns.load(Ordering::Relaxed) as u64),
            ),
            ("max_connections", Content::U64(self.max_conns as u64)),
            (
                "cached_cells",
                Content::U64(self.journal.completed_cells() as u64),
            ),
        ])
    }

    /// Tries to take a compute slot; `false` means the daemon is
    /// saturated and the request must be shed.
    fn admit(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Tries to take a connection slot; `false` means the connection
    /// budget is exhausted and the connect must be refused.
    fn conn_admit(&self) -> bool {
        let mut cur = self.conns.load(Ordering::Acquire);
        loop {
            if cur >= self.max_conns {
                return false;
            }
            match self.conns.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Handles one request line, returning the one-line JSON response.
    /// Never panics and never blocks longer than the request timeout.
    pub(crate) fn handle(self: &Arc<Server>, line: &str) -> String {
        let req: Content = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return error_response(format!("bad request JSON: {e}"));
            }
        };
        match req.get("cmd").as_str().unwrap_or("run") {
            "stats" => self.stats_response(),
            "run" => self.run_request(&req),
            other => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                error_response(format!("unknown cmd '{other}' (run, stats)"))
            }
        }
    }

    fn run_request(self: &Arc<Server>, req: &Content) -> String {
        let parsed = match Request::parse(req) {
            Ok(p) => p,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return error_response(e);
            }
        };
        let w = self.workload(parsed.app, parsed.procs, parsed.scale);
        let key = cell_key(
            SERVE_DRIVER,
            &w,
            parsed.kind,
            parsed.consistency,
            parsed.network,
            dirext_core::sharer::DirOrg::FullMap,
            "base",
            None,
        );
        // Hit path: the journal index is in memory, so hits are served
        // even when every compute slot is busy — that is the whole point
        // of the load-shed design.
        if let Some(m) = self.journal.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return response(vec![
                ("status", Content::Str("hit".to_owned())),
                ("key", Content::Str(key)),
                ("metrics", m.serialize()),
            ]);
        }
        // Cross-driver hit: a sweep journal (e.g. an assembled fleet run
        // of fig2) records the same configuration under its own driver
        // prefix; any completed cell with an identical config suffix is
        // equally authoritative.
        let suffix = key.split_once('/').map_or(key.as_str(), |(_, s)| s);
        if let Some((served_from, m)) = self.journal.lookup_config(suffix) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return response(vec![
                ("status", Content::Str("hit".to_owned())),
                ("key", Content::Str(key.clone())),
                ("served_from", Content::Str(served_from)),
                ("metrics", m.serialize()),
            ]);
        }
        // Miss: admission-control the compute. Shedding here (instead of
        // queueing) keeps the daemon responsive under overload.
        if !self.admit() {
            self.busy.fetch_add(1, Ordering::Relaxed);
            return response(vec![
                ("status", Content::Str("busy".to_owned())),
                (
                    "inflight",
                    Content::U64(self.inflight.load(Ordering::Relaxed) as u64),
                ),
                ("max_inflight", Content::U64(self.max_inflight as u64)),
                (
                    "hint",
                    Content::Str(
                        "compute slots saturated; cache hits are still served — retry later"
                            .to_owned(),
                    ),
                ),
            ]);
        }
        // The compute runs on its own thread so the response clock keeps
        // ticking; on timeout the thread keeps going and journals its
        // result, turning the client's retry into a cache hit.
        let (tx, rx) = mpsc::channel();
        let server = Arc::clone(self);
        let worker_w = Arc::clone(&w);
        let worker_key = key.clone();
        std::thread::spawn(move || {
            if server.slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(server.slow_ms));
            }
            let result = run_protocol_cfg(
                &worker_w,
                parsed.kind,
                parsed.consistency,
                parsed.network,
                None,
                None,
            );
            if let Ok(m) = &result {
                server.journal.record_ok(&worker_key, 1, m);
            }
            server.inflight.fetch_sub(1, Ordering::AcqRel);
            let _ = tx.send(result);
        });
        match rx.recv_timeout(self.timeout) {
            Ok(Ok(m)) => {
                self.computed.fetch_add(1, Ordering::Relaxed);
                response(vec![
                    ("status", Content::Str("computed".to_owned())),
                    ("key", Content::Str(key)),
                    ("metrics", m.serialize()),
                ])
            }
            Ok(Err(e)) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                error_response(format!("simulation failed: {e}"))
            }
            Err(_) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                response(vec![
                    ("status", Content::Str("timeout".to_owned())),
                    ("key", Content::Str(key)),
                    (
                        "hint",
                        Content::Str(
                            "computation continues in the background and will be journaled; \
                             retry to hit the cache"
                                .to_owned(),
                        ),
                    ),
                ])
            }
        }
    }
}

/// Outcome of one bounded line read off a connection.
enum LineRead {
    /// A complete line within the size cap.
    Line(String),
    /// The line exceeded the cap; the excess was drained off the wire
    /// (never buffered), so the connection is still framed correctly.
    Oversized,
    /// Peer closed the connection.
    Eof,
    /// No complete line arrived within the idle timeout.
    Idle,
    /// Hard I/O error.
    Failed,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes. A
/// longer line is consumed to its newline but reported [`LineRead::Oversized`]
/// without ever holding more than one `fill_buf` chunk of it in memory.
fn read_bounded_line(reader: &mut impl std::io::BufRead, max: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineRead::Idle;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            // EOF. A final unterminated line still gets an answer; the
            // write will fail harmlessly if the peer is fully gone.
            return match (buf.is_empty(), oversized) {
                (_, true) => LineRead::Oversized,
                (true, false) => LineRead::Eof,
                (false, false) => LineRead::Line(String::from_utf8_lossy(&buf).into_owned()),
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !oversized && buf.len() + take > max {
            oversized = true;
            buf.clear();
        }
        if !oversized {
            buf.extend_from_slice(&chunk[..take]);
        }
        let consumed = newline.map_or(take, |p| p + 1);
        reader.consume(consumed);
        if newline.is_some() {
            return if oversized {
                LineRead::Oversized
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            };
        }
    }
}

/// Decrements the connection gauge when a connection handler exits by
/// any path — clean EOF, idle timeout, I/O error, or panic.
struct ConnGuard<'a>(&'a Server);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Serves one accepted connection until EOF, idle timeout, or I/O error.
/// Admission against the connection budget happens here, and the slot is
/// released on every exit path, so the budget cannot drift.
#[cfg(unix)]
pub(crate) fn serve_connection(server: &Arc<Server>, stream: std::os::unix::net::UnixStream) {
    use std::io::Write;

    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(server.idle_timeout));
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(reader);
    let mut send = |resp: &str| -> bool {
        stream
            .write_all(resp.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .is_ok()
    };
    if !server.conn_admit() {
        server.busy.fetch_add(1, Ordering::Relaxed);
        send(&error_response(format!(
            "connection budget exhausted ({} open); retry shortly",
            server.max_conns
        )));
        return;
    }
    let _guard = ConnGuard(server);
    loop {
        match read_bounded_line(&mut reader, MAX_LINE_BYTES) {
            LineRead::Line(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if !send(&server.handle(trimmed)) {
                    return;
                }
            }
            LineRead::Oversized => {
                // The oversized line was drained, so the stream is still
                // newline-framed: answer and keep the connection.
                server.errors.fetch_add(1, Ordering::Relaxed);
                if !send(&error_response(format!(
                    "request line exceeds {MAX_LINE_BYTES} bytes; a query is one small JSON object"
                ))) {
                    return;
                }
            }
            LineRead::Idle => {
                // Parting notice is best-effort; the slot is freed either
                // way by the guard.
                send(&response(vec![
                    ("status", Content::Str("closed".to_owned())),
                    (
                        "reason",
                        Content::Str(format!(
                            "idle for {} ms; reconnect to continue",
                            server.idle_timeout.as_millis()
                        )),
                    ),
                ]));
                return;
            }
            LineRead::Eof | LineRead::Failed => return,
        }
    }
}

/// Opens the journal `serve` answers from: an assembled fleet directory
/// (`--fleet DIR`, folding worker journals first), an explicit
/// `--journal PATH`, or the default serve journal. Always in resume
/// mode — a result cache that refused to reopen would be pointless.
fn open_serve_journal(args: &Args) -> Result<Arc<Journal>, Box<dyn std::error::Error>> {
    use dirext_sim::experiments::{assembled_path, journal, worker_journals};
    let path = if let Some(dir) = &args.fleet {
        let dir = std::path::Path::new(dir);
        let workers = worker_journals(dir)?;
        if workers.is_empty() {
            return Err(format!(
                "serve --fleet: no worker journals (worker-*.jsonl) in {}; run a fleet sweep \
                 first or pass --journal PATH",
                dir.display()
            )
            .into());
        }
        let out = assembled_path(dir);
        let summary = journal::assemble(&workers, &out)?;
        eprintln!(
            "serve: assembled {} worker journal(s) — {} cached cell(s)",
            summary.workers, summary.cells
        );
        out.display().to_string()
    } else {
        args.journal
            .clone()
            .unwrap_or_else(|| DEFAULT_SERVE_JOURNAL.to_owned())
    };
    Ok(Arc::new(Journal::resume(&path)?))
}

/// Test hook: artificial compute delay, for deterministic saturation in
/// the integration tests.
fn slow_ms_from_env() -> u64 {
    std::env::var("DIREXT_SERVE_SLOW_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// `dirext serve`: bind the socket and answer queries until SIGINT.
///
/// # Errors
///
/// Socket/journal setup failures; per-request errors are answered over
/// the wire, never crash the daemon.
#[cfg(unix)]
pub(crate) fn run_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use std::os::unix::net::{UnixListener, UnixStream};

    let Some(socket) = &args.socket else {
        return Err("serve needs --socket PATH (the Unix socket to listen on)".into());
    };
    let journal = open_serve_journal(args)?;
    crate::register_journal(&journal);
    let server = Arc::new(
        Server::new(
            journal,
            args.max_inflight,
            Duration::from_millis(args.request_timeout_ms),
            slow_ms_from_env(),
        )
        .with_idle_timeout(Duration::from_millis(args.idle_timeout_ms)),
    );
    let path = std::path::Path::new(socket);
    if path.exists() {
        // A live daemon answers a connect; a stale socket file (daemon
        // killed without cleanup) refuses it and is safe to replace.
        if UnixStream::connect(path).is_ok() {
            return Err(format!(
                "socket {socket} is already being served; stop the other daemon first"
            )
            .into());
        }
        std::fs::remove_file(path)
            .map_err(|e| format!("cannot replace stale socket {socket}: {e}"))?;
    }
    let listener = UnixListener::bind(path).map_err(|e| format!("cannot bind {socket}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure {socket}: {e}"))?;
    let cancel = crate::sigint::arm();
    eprintln!(
        "serve: listening on {socket} — {} cached cell(s), {} compute slot(s), {} ms request \
         timeout, {} ms idle timeout (Ctrl-C to stop)",
        server.journal.completed_cells(),
        args.max_inflight,
        args.request_timeout_ms,
        args.idle_timeout_ms
    );
    while !cancel.load(std::sync::atomic::Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                std::thread::spawn(move || serve_connection(&server, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(format!("accept on {socket} failed: {e}").into());
            }
        }
    }
    let _ = std::fs::remove_file(path);
    eprintln!("serve: shut down — {}", server.stats_line());
    Ok(())
}

#[cfg(not(unix))]
pub(crate) fn run_serve(_args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    Err("serve needs Unix domain sockets, which this platform does not have".into())
}

/// `dirext query`: one request to a running `serve` daemon. Prints the
/// raw JSON response line to stdout. Exit codes: 0 answered (hit,
/// computed, or stats), 3 shed (busy or timeout — retry later), 1 error.
///
/// # Errors
///
/// Connection failures (with a hint to start `serve`) and server-side
/// `error` responses.
#[cfg(unix)]
pub(crate) fn run_query(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let Some(socket) = &args.socket else {
        return Err("query needs --socket PATH (where `dirext serve` is listening)".into());
    };
    let request = if args.stats {
        response(vec![("cmd", Content::Str("stats".to_owned()))])
    } else {
        let app = args.app.unwrap_or(App::Mp3d);
        response(vec![
            ("app", Content::Str(app.name().to_owned())),
            ("procs", Content::U64(args.procs as u64)),
            ("scale", Content::Str(args.scale.to_string())),
            ("protocol", Content::Str(args.protocol.name().to_owned())),
            (
                "consistency",
                Content::Str(
                    match args.consistency {
                        Consistency::Rc => "rc",
                        Consistency::Sc => "sc",
                    }
                    .to_owned(),
                ),
            ),
            ("network", Content::Str(network_label(args.network))),
        ])
    };
    let mut stream = UnixStream::connect(socket).map_err(|e| {
        format!("cannot connect to {socket}: {e} (is `dirext serve --socket {socket}` running?)")
    })?;
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply)?;
    let reply = reply.trim();
    if reply.is_empty() {
        return Err("server closed the connection without answering".into());
    }
    println!("{reply}");
    let parsed: Content =
        serde_json::from_str(reply).map_err(|e| format!("malformed server response: {e}"))?;
    match parsed.get("status").as_str().unwrap_or("") {
        "busy" | "timeout" => {
            // Explicit shed: distinct exit code so scripts can retry.
            let _ = std::io::stdout().flush();
            std::process::exit(3);
        }
        "error" => Err(format!(
            "server error: {}",
            parsed.get("error").as_str().unwrap_or("unknown")
        )
        .into()),
        _ => Ok(()),
    }
}

#[cfg(not(unix))]
pub(crate) fn run_query(_args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    Err("query needs Unix domain sockets, which this platform does not have".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_journal(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "dirext-serve-unit-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn server(name: &str, max_inflight: usize, timeout_ms: u64, slow_ms: u64) -> Arc<Server> {
        let journal = Arc::new(Journal::create(tmp_journal(name)).expect("journal"));
        Arc::new(Server::new(
            journal,
            max_inflight,
            Duration::from_millis(timeout_ms),
            slow_ms,
        ))
    }

    fn status(resp: &str) -> String {
        let v: Content = serde_json::from_str(resp).expect("response JSON");
        v.get("status").as_str().unwrap_or("").to_owned()
    }

    const WATER: &str = r#"{"app":"Water","procs":4,"scale":"tiny"}"#;
    const LU: &str = r#"{"app":"LU","procs":4,"scale":"tiny"}"#;
    const MP3D: &str = r#"{"app":"MP3D","procs":4,"scale":"tiny"}"#;

    #[test]
    fn computes_then_hits() {
        let s = server("compute-hit", 2, 10_000, 0);
        assert_eq!(status(&s.handle(WATER)), "computed");
        let second = s.handle(WATER);
        assert_eq!(status(&second), "hit");
        assert!(
            second.contains("exec_cycles"),
            "hit carries metrics: {second}"
        );
        let stats = s.handle(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"hits\":1"), "{stats}");
        assert!(stats.contains("\"computed\":1"), "{stats}");
    }

    #[test]
    fn sheds_load_when_saturated_but_serves_hits() {
        let s = server("shed", 1, 10_000, 400);
        // Prime the cache through a fast twin sharing the same journal:
        // hits must keep flowing while the slow server's one slot is busy.
        let fast = Arc::new(Server::new(
            Arc::clone(&s.journal),
            1,
            Duration::from_millis(10_000),
            0,
        ));
        assert_eq!(status(&fast.handle(MP3D)), "computed");
        let slow = Arc::clone(&s);
        let bg = std::thread::spawn(move || status(&slow.handle(WATER)));
        std::thread::sleep(Duration::from_millis(100));
        // The single compute slot is held by the Water request: a new
        // miss is shed with an explicit busy response...
        assert_eq!(status(&s.handle(LU)), "busy");
        // ...while a cached cell is still served.
        assert_eq!(status(&s.handle(MP3D)), "hit");
        assert_eq!(bg.join().expect("bg"), "computed");
        // Slot released: the shed request now goes through.
        assert_eq!(status(&s.handle(LU)), "computed");
    }

    #[test]
    fn timeout_releases_client_and_caches_result() {
        let s = server("timeout", 2, 80, 300);
        assert_eq!(status(&s.handle(WATER)), "timeout");
        // The compute keeps running past the client timeout and journals
        // its result; once it lands, the retry is a hit.
        std::thread::sleep(Duration::from_millis(600));
        assert_eq!(status(&s.handle(WATER)), "hit");
    }

    #[test]
    fn rejects_malformed_requests() {
        let s = server("reject", 2, 1_000, 0);
        assert_eq!(status(&s.handle("not json")), "error");
        assert_eq!(status(&s.handle(r#"{"cmd":"nope"}"#)), "error");
        assert_eq!(status(&s.handle(r#"{"procs":4}"#)), "error");
        assert_eq!(
            status(&s.handle(r#"{"app":"Water","protocol":"CW","consistency":"sc"}"#)),
            "error"
        );
        assert_eq!(status(&s.handle(r#"{"app":"Water","procs":0}"#)), "error");
        let stats = s.handle(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"errors\":5"), "{stats}");
    }

    #[test]
    fn bounded_line_reader_drains_oversized_lines() {
        use std::io::Cursor;
        // Small line, oversized line, small line: the middle one must be
        // consumed without desynchronizing the stream framing.
        let mut data = Vec::new();
        data.extend_from_slice(b"first\n");
        data.extend_from_slice(&vec![b'x'; 4 * MAX_LINE_BYTES]);
        data.push(b'\n');
        data.extend_from_slice(b"last\n");
        let mut r = std::io::BufReader::new(Cursor::new(data));
        assert!(matches!(
            read_bounded_line(&mut r, MAX_LINE_BYTES),
            LineRead::Line(l) if l == "first"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, MAX_LINE_BYTES),
            LineRead::Oversized
        ));
        assert!(matches!(
            read_bounded_line(&mut r, MAX_LINE_BYTES),
            LineRead::Line(l) if l == "last"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, MAX_LINE_BYTES),
            LineRead::Eof
        ));
    }

    #[cfg(unix)]
    fn client_pair(s: &Arc<Server>) -> (std::os::unix::net::UnixStream, std::thread::JoinHandle<()>) {
        let (client, served) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        let server = Arc::clone(s);
        let handle = std::thread::spawn(move || serve_connection(&server, served));
        (client, handle)
    }

    #[cfg(unix)]
    #[test]
    fn oversized_request_gets_an_error_and_the_connection_survives() {
        use std::io::{BufRead, BufReader, Write};
        let s = server("oversized", 2, 10_000, 0);
        let (mut client, handle) = client_pair(&s);
        let mut big = vec![b'{'; MAX_LINE_BYTES + 100];
        big.push(b'\n');
        client.write_all(&big).expect("send oversized");
        client
            .write_all(b"{\"cmd\":\"stats\"}\n")
            .expect("send follow-up");
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("error reply");
        assert_eq!(status(&reply), "error");
        assert!(reply.contains("exceeds"), "{reply}");
        // Same connection, next request: still served.
        reply.clear();
        reader.read_line(&mut reply).expect("stats reply");
        assert_eq!(status(&reply), "stats");
        assert!(reply.contains("\"connections\":1"), "{reply}");
        drop(client);
        drop(reader);
        handle.join().expect("handler exits");
        assert_eq!(s.conns.load(Ordering::Relaxed), 0, "slot released");
    }

    #[cfg(unix)]
    #[test]
    fn idle_connection_is_closed_with_a_notice() {
        use std::io::{BufRead, BufReader};
        let journal = Arc::new(Journal::create(tmp_journal("idle")).expect("journal"));
        let s = Arc::new(
            Server::new(journal, 2, Duration::from_millis(10_000), 0)
                .with_idle_timeout(Duration::from_millis(150)),
        );
        let (client, handle) = client_pair(&s);
        let mut reader = BufReader::new(client);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("close notice");
        assert_eq!(status(&reply), "closed");
        assert!(reply.contains("idle"), "{reply}");
        reply.clear();
        assert_eq!(
            reader.read_line(&mut reply).expect("eof"),
            0,
            "connection is closed after the notice"
        );
        handle.join().expect("handler exits");
        assert_eq!(s.conns.load(Ordering::Relaxed), 0, "slot released");
    }

    #[cfg(unix)]
    #[test]
    fn connection_budget_refuses_the_excess_connect_and_recovers() {
        use std::io::{BufRead, BufReader, Write};
        let journal = Arc::new(Journal::create(tmp_journal("connbudget")).expect("journal"));
        let s = Arc::new(
            Server::new(journal, 2, Duration::from_millis(10_000), 0).with_max_conns(1),
        );
        let (mut first, first_handle) = client_pair(&s);
        // Make sure the first connection is admitted before racing in the
        // second one.
        first.write_all(b"{\"cmd\":\"stats\"}\n").expect("warm up");
        let mut first_reader = BufReader::new(first.try_clone().expect("clone"));
        let mut reply = String::new();
        first_reader.read_line(&mut reply).expect("stats");
        assert_eq!(status(&reply), "stats");
        // Budget full: the second connection gets a structured refusal.
        let (second, second_handle) = client_pair(&s);
        let mut second_reader = BufReader::new(second);
        reply.clear();
        second_reader.read_line(&mut reply).expect("refusal");
        assert_eq!(status(&reply), "error");
        assert!(reply.contains("connection budget"), "{reply}");
        second_handle.join().expect("refused handler exits");
        // Closing the first frees the slot for a fresh connect.
        drop(first);
        drop(first_reader);
        first_handle.join().expect("handler exits");
        let (mut third, third_handle) = client_pair(&s);
        third.write_all(b"{\"cmd\":\"stats\"}\n").expect("reuse");
        let mut third_reader = BufReader::new(third.try_clone().expect("clone"));
        reply.clear();
        third_reader.read_line(&mut reply).expect("served again");
        assert_eq!(status(&reply), "stats");
        drop(third);
        drop(third_reader);
        third_handle.join().expect("handler exits");
        assert_eq!(s.conns.load(Ordering::Relaxed), 0, "budget back to zero");
    }
}
