//! `dirext serve` / `dirext query` — a journal-backed result server.
//!
//! [`run_serve`] turns a sweep journal into a long-running result cache:
//! a daemon listening on a Unix domain socket, answering one-line JSON
//! experiment queries. Cached cells are served directly from the journal
//! (including assembled fleet journals, so a finished fleet sweep doubles
//! as a pre-warmed cache); misses are computed on demand and journaled,
//! so every configuration is simulated at most once across the daemon's
//! lifetime *and* across restarts.
//!
//! The daemon degrades gracefully instead of falling over:
//!
//! - **Bounded in-flight computes** (`--max-inflight`): a miss is only
//!   admitted while a compute slot is free. When saturated, misses get
//!   an explicit `{"status":"busy"}` response immediately — load is shed
//!   at the door, no unbounded queue builds up.
//! - **Cache hits always go through**, even when every compute slot is
//!   busy: a hit touches only the in-memory journal index.
//! - **Request timeout** (`--request-timeout-ms`): a slow compute stops
//!   blocking its client with `{"status":"timeout"}`, but the compute
//!   keeps running and journals its result, so a retry becomes a hit.
//!
//! Protocol: newline-delimited JSON over the socket, one response line
//! per request line. A request is `{"app": "Water", "procs": 8, "scale":
//! "tiny", "protocol": "P+CW+M", "consistency": "rc", "network":
//! "uniform"}` — every field except `app` is optional — or `{"cmd":
//! "stats"}` for the daemon's counters. Responses carry a `status` of
//! `hit`, `computed`, `busy`, `timeout`, `error`, or `stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_sim::experiments::{journal::cell_key, run_protocol_cfg, Journal};
use dirext_sim::NetworkKind;
use dirext_trace::Workload;
use dirext_workloads::{App, Scale};
use serde::{Content, Serialize};

use crate::Args;

/// Default journal path for `serve` when neither `--journal` nor
/// `--fleet` names one.
const DEFAULT_SERVE_JOURNAL: &str = "dirext-serve.jsonl";

/// The CLI-facing request/response text uses plain JSON lines; this is
/// the serve driver name baked into journal keys for cells the daemon
/// computed itself.
const SERVE_DRIVER: &str = "serve";

/// The canonical CLI spelling of a network kind (inverse of the
/// `--network` parser in `main.rs`).
pub(crate) fn network_label(network: NetworkKind) -> String {
    match network {
        NetworkKind::Uniform => "uniform".to_owned(),
        NetworkKind::Mesh { link_bits } => format!("mesh{link_bits}"),
        NetworkKind::HierMesh { link_bits } => format!("hmesh{link_bits}"),
        NetworkKind::Ring { link_bits } => format!("ring{link_bits}"),
    }
}

fn parse_network(s: &str) -> Result<NetworkKind, String> {
    match s {
        "uniform" => Ok(NetworkKind::Uniform),
        "mesh64" => Ok(NetworkKind::Mesh { link_bits: 64 }),
        "mesh32" => Ok(NetworkKind::Mesh { link_bits: 32 }),
        "mesh16" => Ok(NetworkKind::Mesh { link_bits: 16 }),
        "hmesh64" => Ok(NetworkKind::HierMesh { link_bits: 64 }),
        "hmesh32" => Ok(NetworkKind::HierMesh { link_bits: 32 }),
        "hmesh16" => Ok(NetworkKind::HierMesh { link_bits: 16 }),
        "ring64" => Ok(NetworkKind::Ring { link_bits: 64 }),
        "ring32" => Ok(NetworkKind::Ring { link_bits: 32 }),
        "ring16" => Ok(NetworkKind::Ring { link_bits: 16 }),
        other => Err(format!(
            "unknown network '{other}' (uniform, mesh64/32/16, hmesh64/32/16, ring64/32/16)"
        )),
    }
}

/// One fully-validated experiment query.
struct Request {
    app: App,
    procs: usize,
    scale: Scale,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
}

impl Request {
    /// Parses and validates a request out of a JSON object, with
    /// actionable errors (the response the client sees).
    fn parse(req: &Content) -> Result<Request, String> {
        let app_name = req
            .get("app")
            .as_str()
            .ok_or("missing `app` (MP3D, Cholesky, Water, LU, Ocean)")?;
        let app = crate::parse_app(app_name).ok_or_else(|| {
            format!("unknown app '{app_name}' (MP3D, Cholesky, Water, LU, Ocean)")
        })?;
        let procs = usize::try_from(req.get("procs").as_u64().unwrap_or(16)).unwrap_or(0);
        if procs == 0 || procs > 64 {
            return Err(format!("`procs` must be between 1 and 64, got {procs}"));
        }
        let scale = match req.get("scale").as_str().unwrap_or("paper") {
            "paper" => Scale::Paper,
            "small" => Scale::Small,
            "tiny" => Scale::Tiny,
            other => return Err(format!("unknown scale '{other}' (paper, small, tiny)")),
        };
        let proto_name = req.get("protocol").as_str().unwrap_or("BASIC");
        let kind = crate::parse_protocol(proto_name).ok_or_else(|| {
            format!(
                "unknown protocol '{proto_name}' ({})",
                ProtocolKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        let consistency = match req.get("consistency").as_str().unwrap_or("rc") {
            "rc" => Consistency::Rc,
            "sc" => Consistency::Sc,
            other => return Err(format!("unknown consistency '{other}' (rc, sc)")),
        };
        let network = parse_network(req.get("network").as_str().unwrap_or("uniform"))?;
        if !kind.config(consistency).is_feasible() {
            return Err(format!(
                "{kind} is not implementable under {consistency:?}: the competitive-update \
                 mechanism needs relaxed consistency"
            ));
        }
        Ok(Request {
            app,
            procs,
            scale,
            kind,
            consistency,
            network,
        })
    }
}

/// The daemon's shared state: journal-as-cache, admission counters, and
/// a workload memo (workload generation is deterministic but not free,
/// so each `(app, procs, scale)` is generated once).
pub(crate) struct Server {
    journal: Arc<Journal>,
    max_inflight: usize,
    timeout: Duration,
    /// Test hook: artificial per-compute delay in ms (`DIREXT_SERVE_SLOW_MS`),
    /// used to make saturation and timeouts deterministic in tests.
    slow_ms: u64,
    inflight: AtomicUsize,
    workloads: Mutex<HashMap<String, Arc<Workload>>>,
    hits: AtomicU64,
    computed: AtomicU64,
    busy: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

/// Renders a response object; `entries` are `(key, value)` pairs.
fn response(entries: Vec<(&str, Content)>) -> String {
    let map = Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    );
    serde_json::to_string(&map).unwrap_or_else(|_| "{\"status\":\"error\"}".to_owned())
}

fn error_response(detail: String) -> String {
    response(vec![
        ("status", Content::Str("error".to_owned())),
        ("error", Content::Str(detail)),
    ])
}

impl Server {
    pub(crate) fn new(
        journal: Arc<Journal>,
        max_inflight: usize,
        timeout: Duration,
        slow_ms: u64,
    ) -> Server {
        Server {
            journal,
            max_inflight,
            timeout,
            slow_ms,
            inflight: AtomicUsize::new(0),
            workloads: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    fn workload(&self, app: App, procs: usize, scale: Scale) -> Arc<Workload> {
        let memo_key = format!("{}/{procs}/{scale}", app.name());
        let mut memo = self.workloads.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            memo.entry(memo_key)
                .or_insert_with(|| Arc::new(app.workload(procs, scale))),
        )
    }

    /// One-line summary of the lifetime counters (logged at shutdown).
    pub(crate) fn stats_line(&self) -> String {
        format!(
            "{} hit(s), {} computed, {} busy-shed, {} timeout(s), {} error(s), {} cached cell(s)",
            self.hits.load(Ordering::Relaxed),
            self.computed.load(Ordering::Relaxed),
            self.busy.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.journal.completed_cells(),
        )
    }

    fn stats_response(&self) -> String {
        response(vec![
            ("status", Content::Str("stats".to_owned())),
            ("hits", Content::U64(self.hits.load(Ordering::Relaxed))),
            (
                "computed",
                Content::U64(self.computed.load(Ordering::Relaxed)),
            ),
            ("busy", Content::U64(self.busy.load(Ordering::Relaxed))),
            (
                "timeouts",
                Content::U64(self.timeouts.load(Ordering::Relaxed)),
            ),
            ("errors", Content::U64(self.errors.load(Ordering::Relaxed))),
            (
                "inflight",
                Content::U64(self.inflight.load(Ordering::Relaxed) as u64),
            ),
            ("max_inflight", Content::U64(self.max_inflight as u64)),
            (
                "cached_cells",
                Content::U64(self.journal.completed_cells() as u64),
            ),
        ])
    }

    /// Tries to take a compute slot; `false` means the daemon is
    /// saturated and the request must be shed.
    fn admit(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Handles one request line, returning the one-line JSON response.
    /// Never panics and never blocks longer than the request timeout.
    pub(crate) fn handle(self: &Arc<Server>, line: &str) -> String {
        let req: Content = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return error_response(format!("bad request JSON: {e}"));
            }
        };
        match req.get("cmd").as_str().unwrap_or("run") {
            "stats" => self.stats_response(),
            "run" => self.run_request(&req),
            other => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                error_response(format!("unknown cmd '{other}' (run, stats)"))
            }
        }
    }

    fn run_request(self: &Arc<Server>, req: &Content) -> String {
        let parsed = match Request::parse(req) {
            Ok(p) => p,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return error_response(e);
            }
        };
        let w = self.workload(parsed.app, parsed.procs, parsed.scale);
        let key = cell_key(
            SERVE_DRIVER,
            &w,
            parsed.kind,
            parsed.consistency,
            parsed.network,
            dirext_core::sharer::DirOrg::FullMap,
            "base",
            None,
        );
        // Hit path: the journal index is in memory, so hits are served
        // even when every compute slot is busy — that is the whole point
        // of the load-shed design.
        if let Some(m) = self.journal.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return response(vec![
                ("status", Content::Str("hit".to_owned())),
                ("key", Content::Str(key)),
                ("metrics", m.serialize()),
            ]);
        }
        // Cross-driver hit: a sweep journal (e.g. an assembled fleet run
        // of fig2) records the same configuration under its own driver
        // prefix; any completed cell with an identical config suffix is
        // equally authoritative.
        let suffix = key.split_once('/').map_or(key.as_str(), |(_, s)| s);
        if let Some((served_from, m)) = self.journal.lookup_config(suffix) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return response(vec![
                ("status", Content::Str("hit".to_owned())),
                ("key", Content::Str(key.clone())),
                ("served_from", Content::Str(served_from)),
                ("metrics", m.serialize()),
            ]);
        }
        // Miss: admission-control the compute. Shedding here (instead of
        // queueing) keeps the daemon responsive under overload.
        if !self.admit() {
            self.busy.fetch_add(1, Ordering::Relaxed);
            return response(vec![
                ("status", Content::Str("busy".to_owned())),
                (
                    "inflight",
                    Content::U64(self.inflight.load(Ordering::Relaxed) as u64),
                ),
                ("max_inflight", Content::U64(self.max_inflight as u64)),
                (
                    "hint",
                    Content::Str(
                        "compute slots saturated; cache hits are still served — retry later"
                            .to_owned(),
                    ),
                ),
            ]);
        }
        // The compute runs on its own thread so the response clock keeps
        // ticking; on timeout the thread keeps going and journals its
        // result, turning the client's retry into a cache hit.
        let (tx, rx) = mpsc::channel();
        let server = Arc::clone(self);
        let worker_w = Arc::clone(&w);
        let worker_key = key.clone();
        std::thread::spawn(move || {
            if server.slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(server.slow_ms));
            }
            let result = run_protocol_cfg(
                &worker_w,
                parsed.kind,
                parsed.consistency,
                parsed.network,
                None,
                None,
            );
            if let Ok(m) = &result {
                server.journal.record_ok(&worker_key, 1, m);
            }
            server.inflight.fetch_sub(1, Ordering::AcqRel);
            let _ = tx.send(result);
        });
        match rx.recv_timeout(self.timeout) {
            Ok(Ok(m)) => {
                self.computed.fetch_add(1, Ordering::Relaxed);
                response(vec![
                    ("status", Content::Str("computed".to_owned())),
                    ("key", Content::Str(key)),
                    ("metrics", m.serialize()),
                ])
            }
            Ok(Err(e)) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                error_response(format!("simulation failed: {e}"))
            }
            Err(_) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                response(vec![
                    ("status", Content::Str("timeout".to_owned())),
                    ("key", Content::Str(key)),
                    (
                        "hint",
                        Content::Str(
                            "computation continues in the background and will be journaled; \
                             retry to hit the cache"
                                .to_owned(),
                        ),
                    ),
                ])
            }
        }
    }
}

/// Opens the journal `serve` answers from: an assembled fleet directory
/// (`--fleet DIR`, folding worker journals first), an explicit
/// `--journal PATH`, or the default serve journal. Always in resume
/// mode — a result cache that refused to reopen would be pointless.
fn open_serve_journal(args: &Args) -> Result<Arc<Journal>, Box<dyn std::error::Error>> {
    use dirext_sim::experiments::{assembled_path, journal, worker_journals};
    let path = if let Some(dir) = &args.fleet {
        let dir = std::path::Path::new(dir);
        let workers = worker_journals(dir)?;
        if workers.is_empty() {
            return Err(format!(
                "serve --fleet: no worker journals (worker-*.jsonl) in {}; run a fleet sweep \
                 first or pass --journal PATH",
                dir.display()
            )
            .into());
        }
        let out = assembled_path(dir);
        let summary = journal::assemble(&workers, &out)?;
        eprintln!(
            "serve: assembled {} worker journal(s) — {} cached cell(s)",
            summary.workers, summary.cells
        );
        out.display().to_string()
    } else {
        args.journal
            .clone()
            .unwrap_or_else(|| DEFAULT_SERVE_JOURNAL.to_owned())
    };
    Ok(Arc::new(Journal::resume(&path)?))
}

/// Test hook: artificial compute delay, for deterministic saturation in
/// the integration tests.
fn slow_ms_from_env() -> u64 {
    std::env::var("DIREXT_SERVE_SLOW_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// `dirext serve`: bind the socket and answer queries until SIGINT.
///
/// # Errors
///
/// Socket/journal setup failures; per-request errors are answered over
/// the wire, never crash the daemon.
#[cfg(unix)]
pub(crate) fn run_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Write;
    use std::os::unix::net::{UnixListener, UnixStream};

    let Some(socket) = &args.socket else {
        return Err("serve needs --socket PATH (the Unix socket to listen on)".into());
    };
    let journal = open_serve_journal(args)?;
    crate::register_journal(&journal);
    let server = Arc::new(Server::new(
        journal,
        args.max_inflight,
        Duration::from_millis(args.request_timeout_ms),
        slow_ms_from_env(),
    ));
    let path = std::path::Path::new(socket);
    if path.exists() {
        // A live daemon answers a connect; a stale socket file (daemon
        // killed without cleanup) refuses it and is safe to replace.
        if UnixStream::connect(path).is_ok() {
            return Err(format!(
                "socket {socket} is already being served; stop the other daemon first"
            )
            .into());
        }
        std::fs::remove_file(path)
            .map_err(|e| format!("cannot replace stale socket {socket}: {e}"))?;
    }
    let listener = UnixListener::bind(path).map_err(|e| format!("cannot bind {socket}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure {socket}: {e}"))?;
    let cancel = crate::sigint::arm();
    eprintln!(
        "serve: listening on {socket} — {} cached cell(s), {} compute slot(s), {} ms request \
         timeout (Ctrl-C to stop)",
        server.journal.completed_cells(),
        args.max_inflight,
        args.request_timeout_ms
    );
    while !cancel.load(std::sync::atomic::Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let Ok(reader) = stream.try_clone() else {
                        return;
                    };
                    let mut reader = std::io::BufReader::new(reader);
                    let mut stream = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match std::io::BufRead::read_line(&mut reader, &mut line) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => {
                                let trimmed = line.trim();
                                if trimmed.is_empty() {
                                    continue;
                                }
                                let resp = server.handle(trimmed);
                                if stream
                                    .write_all(resp.as_bytes())
                                    .and_then(|()| stream.write_all(b"\n"))
                                    .is_err()
                                {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(format!("accept on {socket} failed: {e}").into());
            }
        }
    }
    let _ = std::fs::remove_file(path);
    eprintln!("serve: shut down — {}", server.stats_line());
    Ok(())
}

#[cfg(not(unix))]
pub(crate) fn run_serve(_args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    Err("serve needs Unix domain sockets, which this platform does not have".into())
}

/// `dirext query`: one request to a running `serve` daemon. Prints the
/// raw JSON response line to stdout. Exit codes: 0 answered (hit,
/// computed, or stats), 3 shed (busy or timeout — retry later), 1 error.
///
/// # Errors
///
/// Connection failures (with a hint to start `serve`) and server-side
/// `error` responses.
#[cfg(unix)]
pub(crate) fn run_query(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let Some(socket) = &args.socket else {
        return Err("query needs --socket PATH (where `dirext serve` is listening)".into());
    };
    let request = if args.stats {
        response(vec![("cmd", Content::Str("stats".to_owned()))])
    } else {
        let app = args.app.unwrap_or(App::Mp3d);
        response(vec![
            ("app", Content::Str(app.name().to_owned())),
            ("procs", Content::U64(args.procs as u64)),
            ("scale", Content::Str(args.scale.to_string())),
            ("protocol", Content::Str(args.protocol.name().to_owned())),
            (
                "consistency",
                Content::Str(
                    match args.consistency {
                        Consistency::Rc => "rc",
                        Consistency::Sc => "sc",
                    }
                    .to_owned(),
                ),
            ),
            ("network", Content::Str(network_label(args.network))),
        ])
    };
    let mut stream = UnixStream::connect(socket).map_err(|e| {
        format!("cannot connect to {socket}: {e} (is `dirext serve --socket {socket}` running?)")
    })?;
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply)?;
    let reply = reply.trim();
    if reply.is_empty() {
        return Err("server closed the connection without answering".into());
    }
    println!("{reply}");
    let parsed: Content =
        serde_json::from_str(reply).map_err(|e| format!("malformed server response: {e}"))?;
    match parsed.get("status").as_str().unwrap_or("") {
        "busy" | "timeout" => {
            // Explicit shed: distinct exit code so scripts can retry.
            let _ = std::io::stdout().flush();
            std::process::exit(3);
        }
        "error" => Err(format!(
            "server error: {}",
            parsed.get("error").as_str().unwrap_or("unknown")
        )
        .into()),
        _ => Ok(()),
    }
}

#[cfg(not(unix))]
pub(crate) fn run_query(_args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    Err("query needs Unix domain sockets, which this platform does not have".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_journal(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "dirext-serve-unit-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn server(name: &str, max_inflight: usize, timeout_ms: u64, slow_ms: u64) -> Arc<Server> {
        let journal = Arc::new(Journal::create(tmp_journal(name)).expect("journal"));
        Arc::new(Server::new(
            journal,
            max_inflight,
            Duration::from_millis(timeout_ms),
            slow_ms,
        ))
    }

    fn status(resp: &str) -> String {
        let v: Content = serde_json::from_str(resp).expect("response JSON");
        v.get("status").as_str().unwrap_or("").to_owned()
    }

    const WATER: &str = r#"{"app":"Water","procs":4,"scale":"tiny"}"#;
    const LU: &str = r#"{"app":"LU","procs":4,"scale":"tiny"}"#;
    const MP3D: &str = r#"{"app":"MP3D","procs":4,"scale":"tiny"}"#;

    #[test]
    fn computes_then_hits() {
        let s = server("compute-hit", 2, 10_000, 0);
        assert_eq!(status(&s.handle(WATER)), "computed");
        let second = s.handle(WATER);
        assert_eq!(status(&second), "hit");
        assert!(
            second.contains("exec_cycles"),
            "hit carries metrics: {second}"
        );
        let stats = s.handle(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"hits\":1"), "{stats}");
        assert!(stats.contains("\"computed\":1"), "{stats}");
    }

    #[test]
    fn sheds_load_when_saturated_but_serves_hits() {
        let s = server("shed", 1, 10_000, 400);
        // Prime the cache through a fast twin sharing the same journal:
        // hits must keep flowing while the slow server's one slot is busy.
        let fast = Arc::new(Server::new(
            Arc::clone(&s.journal),
            1,
            Duration::from_millis(10_000),
            0,
        ));
        assert_eq!(status(&fast.handle(MP3D)), "computed");
        let slow = Arc::clone(&s);
        let bg = std::thread::spawn(move || status(&slow.handle(WATER)));
        std::thread::sleep(Duration::from_millis(100));
        // The single compute slot is held by the Water request: a new
        // miss is shed with an explicit busy response...
        assert_eq!(status(&s.handle(LU)), "busy");
        // ...while a cached cell is still served.
        assert_eq!(status(&s.handle(MP3D)), "hit");
        assert_eq!(bg.join().expect("bg"), "computed");
        // Slot released: the shed request now goes through.
        assert_eq!(status(&s.handle(LU)), "computed");
    }

    #[test]
    fn timeout_releases_client_and_caches_result() {
        let s = server("timeout", 2, 80, 300);
        assert_eq!(status(&s.handle(WATER)), "timeout");
        // The compute keeps running past the client timeout and journals
        // its result; once it lands, the retry is a hit.
        std::thread::sleep(Duration::from_millis(600));
        assert_eq!(status(&s.handle(WATER)), "hit");
    }

    #[test]
    fn rejects_malformed_requests() {
        let s = server("reject", 2, 1_000, 0);
        assert_eq!(status(&s.handle("not json")), "error");
        assert_eq!(status(&s.handle(r#"{"cmd":"nope"}"#)), "error");
        assert_eq!(status(&s.handle(r#"{"procs":4}"#)), "error");
        assert_eq!(
            status(&s.handle(r#"{"app":"Water","protocol":"CW","consistency":"sc"}"#)),
            "error"
        );
        assert_eq!(status(&s.handle(r#"{"app":"Water","procs":0}"#)), "error");
        let stats = s.handle(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"errors\":5"), "{stats}");
    }
}
