//! `dirext` — command-line experiment runner.
//!
//! Regenerates every table and figure of *"Combined Performance Gains of
//! Simple Cache Protocol Extensions"* (ISCA 1994) from the `dirext`
//! simulator. Run `dirext help` for usage.

mod serve;
mod svg;

use std::process::ExitCode;

use std::sync::{Arc, Mutex, OnceLock};

use dirext_core::config::Consistency;
use dirext_core::sharer::DirOrg;
use dirext_core::ProtocolKind;
use dirext_sim::experiments::{self, sens, Journal, SweepError, SweepOpts};
use dirext_sim::Machine;
use dirext_sim::MachineConfig;
use dirext_sim::{FaultPlan, NodeFaultEvent, NodeFaultPlan};
use dirext_trace::Workload;
use dirext_workloads::{App, Scale};

/// Default journal path when `--resume` is given without `--journal`.
const DEFAULT_JOURNAL: &str = "dirext-journal.jsonl";

const USAGE: &str = "\
dirext — reproduce 'Combined Performance Gains of Simple Cache Protocol Extensions' (ISCA 1994)

USAGE:
    dirext <COMMAND> [--scale paper|small|tiny] [--procs N] [--app NAME] [--json]

COMMANDS:
    fig2           Figure 2: relative execution times under RC
    table2         Table 2: cold & coherence miss rates
    fig3           Figure 3: execution times under SC
    table3         Table 3: execution-time ratios on 64/32/16-bit meshes
    fig4           Figure 4: network traffic normalized to BASIC
    table1         Table 1: hardware cost model
    sens-buffers   §5.4: 4-entry FLWB/SLWB sensitivity
    sens-cache     §5.4: 16-KB SLC sensitivity
    miss-latency   §5.1: average read-miss latency, BASIC vs CW
    scaling        Extension: processor-count sweep 4..64 (--app)
    dirscale       Extension: directory organizations (full-map, limited
                   pointers, coarse vector, directoryless) at 64, 256 and
                   1024 nodes on the hierarchical mesh (--app)
    degrade        Extension: graceful-degradation sweep — seeded node
                   crash/recovery counts (0/1/2/4) crossed with every
                   feasible directory organization and protocol stack
                   (--app, --procs; --node-fault-seed/--node-fault-detect
                   shape the schedules). Journaled/fleet-shardable like
                   the paper sweeps
    topology       Extension: uniform vs mesh vs ring interconnects
    stress         Protocol fuzzer: random workloads through all protocols
                   (--seeds N, default 50; every run is coherence-audited)
    run-all        Every experiment in sequence (the full paper sweep);
                   honors --jobs for parallel execution
    run            One simulation: --app or --trace, --protocol, --consistency
    trace          Like `run`, but records every directory and cache state
                   transition, replays the trace through the declarative
                   protocol tables, and prints the tail (--last N) with a
                   conformance verdict
    dump-trace     Write a workload as a text trace to stdout (--app, --scale)
    validate       Check a trace file without running it (--trace FILE)
    report         Run every experiment and write a markdown report (--out)
    assemble       Fold a fleet's worker journals (--fleet DIR) and replay
                   them through a sweep command: `dirext assemble fig2
                   --fleet DIR` prints the same bytes as a serial run, or
                   errors on incomplete/quarantined cells (--keep-going
                   recomputes the gaps locally instead)
    serve          Result-serving daemon on a Unix socket (--socket PATH):
                   answers JSON experiment queries from a journal cache
                   (--journal PATH or an assembled --fleet DIR), computing
                   and journaling misses. Bounded by --max-inflight and
                   --request-timeout-ms; sheds load with a busy response
                   when saturated instead of queueing
    query          One request to a running serve daemon (--socket PATH,
                   plus --app/--procs/--scale/--protocol/--consistency/
                   --network, or --stats for counters). Exit 0 answered,
                   3 shed (busy/timeout — retry later), 1 error
    suite          Print the workload suite's sizes
    help           This message

OPTIONS:
    --scale     Problem scale (default: paper)
    --procs     Processor count (default: 16; up to 1024 with a scalable
                --dir organization, 64 with the full-map directory)
    --dir       Directory organization for `run`/`trace`: full (default),
                ptr4b, ptr4nb, coarse8, none (any ptrNb/ptrNnb/coarseN)
    --app       Restrict to one application (MP3D, Cholesky, Water, LU, Ocean)
    --protocol  For `run`: BASIC, P, M, CW, P+CW, P+M, CW+M, P+CW+M
    --consistency  For `run`: rc (default) or sc
    --json      For `run`: emit the metrics as JSON
    --csv       For fig2/table2/fig3/table3/fig4: emit CSV instead of a table
    --svg       For fig2/fig3/fig4: also write the figure as an SVG file
    --trace     For `run`: load the workload from a text trace file
    --seeds     For `stress`: number of random seeds to sweep (default 50)
    --out       For `report`: output file (default: stdout)
    --network   For `run`: uniform (default), mesh64, mesh32, mesh16,
                ring64, ring32, ring16, hmesh64, hmesh32, hmesh16
                (hmesh = two-level hierarchical mesh, up to 1024 nodes)
    --last      For `trace`: how many trailing transition records to print
                (default 32; 0 = none, just the verdict)
    --ring      For `trace`: transition-ring capacity per controller
                (default 65536; oldest records are overwritten on overflow)
    --jobs      Worker threads for the sweep commands (fig2/table2/fig3/
                table3/fig4/sens-*/miss-latency/topology/scaling/
                dirscale/stress/run-all/report). Default 1 (serial);
                0 = all CPU cores.
                Results are byte-identical for any value.
    --sim-threads  Worker threads *inside* each simulated machine (the
                windowed-parallel engine; applies to run/trace and, per
                cell, to the sweep commands). Default 1 (serial); must be
                >= 1; requests past the host's CPU count are clamped
                (DIREXT_SIM_THREADS_UNCLAMPED=1 disables the clamp).
                Results are bit-identical for any value; pays off on
                big --procs machines (256/1024 nodes).

CRASH-SAFE SWEEPS (fig2/table2/fig3/table3/fig4/sens-*/miss-latency/
topology/scaling/dirscale/run-all/report):
    --journal PATH  Append each completed cell to a write-ahead JSONL log.
                    A killed sweep loses at most the in-flight cells; the
                    log replays with --resume. Refuses to overwrite an
                    existing non-empty file unless --resume is also given.
    --resume        Load the journal (default path dirext-journal.jsonl if
                    --journal is absent), skip every cell it records, and
                    reassemble byte-identical artifacts. Safe to repeat;
                    a missing journal file starts a fresh run.
    --keep-going    Quarantine failing cells and finish the sweep instead
                    of stopping at the first failure; prints a per-cell
                    failure report and exits with code 2.

    Ctrl-C (SIGINT) drains in-flight cells, flushes the journal, and exits
    130; a second Ctrl-C kills immediately. Exit codes: 0 success,
    1 error, 2 completed-with-quarantined-cells, 130 interrupted.

FLEET MODE (the sweep commands):
    --fleet DIR     Join a worker fleet sharing DIR: workers claim disjoint
                    cells through a fencing-token lease log (DIR/
                    leases.jsonl), journal results to DIR/worker-<id>.jsonl,
                    and reclaim cells whose lease expired when a worker
                    dies (kill -9 included). Run the same command in N
                    processes to shard one sweep; finish with `dirext
                    assemble <command> --fleet DIR`.
    --worker-id     Stable worker name (default: w<pid>). A restarted
                    worker with the same id resumes its own journal.
    --lease-ms      Lease duration in wall-ms (default 5000, bounds
                    200-600000): how long after a worker's last heartbeat
                    its cells become reclaimable.
    --heartbeat-ms  Lease renewal interval (default lease/5, minimum 20;
                    must renew at least 3x per lease lifetime).

RESULT SERVER (`serve` and `query`):
    --socket PATH          Unix domain socket the daemon listens on.
    --max-inflight N       Compute slots for cache misses (default 4,
                           1-1024); further misses get a busy response.
    --request-timeout-ms   Per-request compute deadline (default 30000,
                           50-600000); a timed-out compute still finishes
                           and journals, so a retry hits the cache.
    --idle-timeout-ms      Close a connection that sends nothing for this
                           long (default 30000, 100-3600000); the client
                           gets a final status=closed notice line.
    --stats                For `query`: ask for the daemon's counters.

FAULT INJECTION (for `run`, `stress` and the sweep commands):
    --fault-drop     Probability a message is dropped before link-layer
                     retransmission, in permille (0-1000)
    --fault-dup      Probability a message is duplicated, in permille
    --fault-jitter   Maximum extra delivery delay, in cycles
    --fault-seed     Fault-schedule RNG seed (default 1); the same seed
                     reproduces the same schedule byte for byte
    --fault-retries  Link-layer retransmission budget per message
                     (default 16; 0 makes every drop a permanent loss)
    --watchdog       Progress-watchdog window in processor clocks
                     (default 1000000; 0 disables the watchdog)
    --audit-every    Check mid-run coherence invariants every N events
                     (default 0 = only at quiescence)

NODE FAULT INJECTION (whole-node crash/recovery; `run`, `trace`, `stress`
and the `degrade` sweep):
    --node-fault-crashes N     Crash N seed-chosen nodes (never node 0) at
                               staggered cycles, each recovering after a
                               seed-derived outage
    --node-fault-seed S        Crash-schedule seed (default 1); the same
                               seed reproduces the same schedule bit for
                               bit across --jobs and --sim-threads
    --node-fault-detect D      Cycles between a crash and the directories'
                               reconstruction sweep (default 500)
    --node-fault-schedule SPEC Explicit windows instead of a seed:
                               comma-separated NODE@CRASH-RECOVER entries,
                               e.g. 3@2000-9000,5@15000-22000
";

#[derive(Debug, Clone)]
struct Args {
    command: String,
    scale: Scale,
    procs: usize,
    app: Option<App>,
    protocol: ProtocolKind,
    consistency: Consistency,
    json: bool,
    csv: bool,
    trace: Option<String>,
    seeds: u64,
    network: dirext_sim::NetworkKind,
    dir: DirOrg,
    out: Option<String>,
    svg: Option<String>,
    fault: FaultPlan,
    node_fault_crashes: Option<usize>,
    node_fault_seed: Option<u64>,
    node_fault_detect: Option<u64>,
    node_fault_schedule: Option<Vec<NodeFaultEvent>>,
    watchdog: Option<u64>,
    audit_every: u64,
    jobs: usize,
    sim_threads: usize,
    last: usize,
    ring: usize,
    journal: Option<String>,
    resume: bool,
    keep_going: bool,
    fleet: Option<String>,
    worker_id: Option<String>,
    lease_ms: Option<u64>,
    heartbeat_ms: Option<u64>,
    socket: Option<String>,
    max_inflight: usize,
    request_timeout_ms: u64,
    idle_timeout_ms: u64,
    stats: bool,
    /// `assemble`'s positional argument: the sweep command to replay.
    assemble_target: Option<String>,
    /// Internal (set by `assemble`): replay the journal without
    /// computing; missing cells are an error unless `--keep-going`.
    replay_only: bool,
}

impl Args {
    /// Applies the directory organization and robustness flags shared by
    /// `run`, `trace` and `stress`.
    fn harden(&self, mut cfg: MachineConfig) -> MachineConfig {
        cfg = cfg.with_dir_org(self.dir);
        if self.fault.is_active() {
            cfg = cfg.with_faults(self.fault);
        }
        if let Some(plan) = self.node_fault_plan(cfg.procs) {
            cfg = cfg.with_node_faults(plan);
        }
        if let Some(w) = self.watchdog {
            cfg = cfg.with_watchdog(w);
        }
        if self.audit_every > 0 {
            cfg = cfg.with_audit_every(self.audit_every);
        }
        cfg.with_sim_threads(self.sim_threads())
    }

    /// The whole-node crash/recovery plan implied by the `--node-fault-*`
    /// flags for a machine of `procs` nodes (`None` when no crash was
    /// asked for). The explicit schedule wins; otherwise the seed draws
    /// the requested number of crash windows.
    fn node_fault_plan(&self, procs: usize) -> Option<NodeFaultPlan> {
        let detect_delay = self.node_fault_detect.unwrap_or(500);
        if let Some(events) = &self.node_fault_schedule {
            return Some(NodeFaultPlan {
                events: events.clone(),
                detect_delay,
            });
        }
        let crashes = self.node_fault_crashes?;
        let mut plan = NodeFaultPlan::seeded(self.node_fault_seed.unwrap_or(1), procs, crashes);
        plan.detect_delay = detect_delay;
        Some(plan)
    }

    /// Resolved worker-thread count: `--jobs 0` means all CPU cores, and
    /// explicit requests are clamped to the host's available parallelism
    /// (oversubscribing a sweep only adds scheduler thrash, never speed).
    /// The clamp is reported once so logs record the effective count.
    fn jobs(&self) -> usize {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.jobs == 0 {
            return host;
        }
        let effective = self.jobs.min(host);
        if effective < self.jobs {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "note: --jobs {} exceeds the {host} available CPU(s); using --jobs {effective}",
                    self.jobs
                );
            });
        }
        effective
    }

    /// Resolved windowed-engine thread count: explicit requests past the
    /// host's available parallelism are clamped like `--jobs` (results are
    /// bit-identical either way; oversubscription only adds barrier
    /// thrash). Setting `DIREXT_SIM_THREADS_UNCLAMPED=1` disables the
    /// clamp — for measuring oversubscription or pinning a thread count on
    /// a CI host whose reported core count is unreliable.
    fn sim_threads(&self) -> usize {
        if std::env::var_os("DIREXT_SIM_THREADS_UNCLAMPED").is_some_and(|v| v != "0") {
            return self.sim_threads;
        }
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let effective = self.sim_threads.min(host);
        if effective < self.sim_threads {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "note: --sim-threads {} exceeds the {host} available CPU(s); \
                     using --sim-threads {effective}",
                    self.sim_threads
                );
            });
        }
        effective
    }

    /// Effective lease duration: `--lease-ms` or the 5-second default.
    fn lease_ms(&self) -> u64 {
        self.lease_ms.unwrap_or(5000)
    }

    /// Effective heartbeat interval: `--heartbeat-ms`, or a fifth of the
    /// lease (well inside the 3-renewals-per-lifetime requirement).
    fn heartbeat_ms(&self) -> u64 {
        self.heartbeat_ms
            .unwrap_or_else(|| (self.lease_ms() / 5).max(experiments::fleet::MIN_HEARTBEAT_MS))
    }

    /// This worker's fleet id: `--worker-id`, or a pid-derived default
    /// (unique per live worker, which is all the lease protocol needs).
    fn fleet_worker_id(&self) -> String {
        self.worker_id
            .clone()
            .unwrap_or_else(|| format!("w{}", std::process::id()))
    }

    /// The fleet config implied by the flags (valid whenever
    /// `parse_args` accepted them).
    fn fleet_config(&self, dir: &str) -> experiments::FleetConfig {
        experiments::FleetConfig::new(dir, self.fleet_worker_id())
            .intervals(self.lease_ms(), self.heartbeat_ms())
    }

    /// The sweep options (worker threads, fault overlay, journal or
    /// fleet membership, quarantine, SIGINT cancellation) for the
    /// experiment drivers.
    ///
    /// Opens the journal when `--journal`/`--resume` ask for one, joins
    /// the fleet when `--fleet` does, arms the SIGINT drain handler, and
    /// picks up the `DIREXT_CHAOS_PANIC` test hook from the environment.
    fn sweep_opts(&self) -> Result<SweepOpts, Box<dyn std::error::Error>> {
        let mut opts = SweepOpts::jobs(self.jobs()).with_sim_threads(self.sim_threads());
        if self.fault.is_active() {
            opts = opts.with_fault(self.fault);
        }
        if self.keep_going {
            opts = opts.keep_going();
        }
        if self.replay_only {
            opts = opts.replay_only();
        }
        if let Some(dir) = &self.fleet {
            let fleet = experiments::Fleet::new(self.fleet_config(dir))?;
            let journal = fleet.journal();
            register_journal(&journal);
            eprintln!(
                "fleet: worker `{}` joined {dir} (lease {} ms, heartbeat {} ms, {} cell(s) \
                 already in its journal)",
                fleet.worker_id(),
                self.lease_ms(),
                self.heartbeat_ms(),
                journal.completed_cells(),
            );
            opts = opts.with_fleet(Arc::new(fleet));
        } else {
            let path = self
                .journal
                .clone()
                .or_else(|| self.resume.then(|| DEFAULT_JOURNAL.to_owned()));
            if let Some(path) = path {
                let journal = if self.resume {
                    Journal::resume(&path)?
                } else {
                    Journal::create(&path)?
                };
                if journal.completed_cells() > 0
                    || journal.recovered_lines() > 0
                    || journal.corrupt_lines() > 0
                {
                    let mut dropped = Vec::new();
                    if journal.recovered_lines() > 0 {
                        dropped.push(format!("{} torn", journal.recovered_lines()));
                    }
                    if journal.corrupt_lines() > 0 {
                        dropped.push(format!("{} checksum-failed", journal.corrupt_lines()));
                    }
                    eprintln!(
                        "journal: resuming from {path} — {} completed cell(s) will be skipped{}",
                        journal.completed_cells(),
                        if dropped.is_empty() {
                            String::new()
                        } else {
                            format!(" ({} line(s) dropped, those cells re-run)", dropped.join(", "))
                        }
                    );
                }
                let journal = Arc::new(journal);
                register_journal(&journal);
                opts = opts.with_journal(journal);
            }
        }
        opts = opts.with_cancel(sigint::arm());
        if let Ok(needle) = std::env::var("DIREXT_CHAOS_PANIC") {
            if !needle.is_empty() {
                opts = opts.with_chaos_panic(needle);
            }
        }
        if std::env::var("DIREXT_CHAOS_JOURNAL_ERROR").as_deref() == Ok("early") {
            if let Some(j) = journals().lock().unwrap_or_else(|e| e.into_inner()).last() {
                j.inject_write_error("chaos: simulated journal write failure (early)");
            }
        }
        Ok(opts)
    }
}

/// Every journal this process opened, so `main` can refuse to exit clean
/// over a pending write error no code path happened to surface (a sweep
/// that "succeeded" into a broken journal is not a success — its on-disk
/// record is a lie for the next `--resume`).
fn journals() -> &'static Mutex<Vec<Arc<Journal>>> {
    static JOURNALS: OnceLock<Mutex<Vec<Arc<Journal>>>> = OnceLock::new();
    JOURNALS.get_or_init(|| Mutex::new(Vec::new()))
}

fn register_journal(journal: &Arc<Journal>) {
    journals()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(journal));
}

/// Drains the first pending write error across all registered journals.
fn pending_write_error() -> Option<String> {
    journals()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .find_map(|j| j.take_write_error())
}

/// Minimal std-only SIGINT hook: the first Ctrl-C sets the cooperative
/// cancellation flag (sweeps drain in-flight cells and flush the journal),
/// then restores the default disposition so a second Ctrl-C kills the
/// process immediately.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        // C `signal(2)` from the already-linked libc; enough for a single
        // set-a-flag handler without pulling in a signal crate.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    /// Installs the handler (idempotent) and returns the shared flag.
    pub fn arm() -> Arc<AtomicBool> {
        let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
        let handler: extern "C" fn(i32) = on_sigint;
        #[allow(clippy::fn_to_numeric_cast)]
        unsafe {
            signal(SIGINT, handler as usize);
        }
        flag
    }
}

#[cfg(not(unix))]
mod sigint {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// No signal plumbing off Unix; the flag still works programmatically.
    pub fn arm() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }
}

fn parse_app(s: &str) -> Option<App> {
    App::ALL
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(s))
}

fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    ProtocolKind::ALL
        .iter()
        .copied()
        .find(|k| k.name().eq_ignore_ascii_case(s))
}

/// Parses a `--node-fault-schedule` value: comma-separated
/// `NODE@CRASH-RECOVER` windows (e.g. `3@2000-9000,5@15000-22000`).
fn parse_node_fault_schedule(s: &str) -> Result<Vec<NodeFaultEvent>, String> {
    s.split(',')
        .map(|entry| {
            let bad = |why: &str| {
                format!(
                    "bad --node-fault-schedule entry '{entry}': {why} (expected \
                     NODE@CRASH-RECOVER, e.g. 3@2000-9000)"
                )
            };
            let (node, window) = entry
                .split_once('@')
                .ok_or_else(|| bad("missing the '@' between node and window"))?;
            let (crash, recover) = window
                .split_once('-')
                .ok_or_else(|| bad("missing the '-' between crash and recovery cycles"))?;
            let node: u16 = node
                .trim()
                .parse()
                .map_err(|_| bad("the node is not an index"))?;
            let crash_at: u64 = crash
                .trim()
                .parse()
                .map_err(|_| bad("the crash cycle is not a number"))?;
            let recover_at: u64 = recover
                .trim()
                .parse()
                .map_err(|_| bad("the recovery cycle is not a number"))?;
            if recover_at <= crash_at {
                return Err(format!(
                    "bad --node-fault-schedule entry '{entry}': recovery at cycle {recover_at} \
                     must come after the crash at cycle {crash_at}"
                ));
            }
            Ok(NodeFaultEvent {
                node: dirext_trace::NodeId(node),
                crash_at,
                recover_at,
            })
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "help".to_owned());
    let mut parsed = Args {
        command,
        scale: Scale::Paper,
        procs: 16,
        app: None,
        protocol: ProtocolKind::Basic,
        consistency: Consistency::Rc,
        json: false,
        csv: false,
        trace: None,
        seeds: 50,
        network: dirext_sim::NetworkKind::Uniform,
        dir: DirOrg::FullMap,
        out: None,
        svg: None,
        fault: FaultPlan::default(),
        node_fault_crashes: None,
        node_fault_seed: None,
        node_fault_detect: None,
        node_fault_schedule: None,
        watchdog: None,
        audit_every: 0,
        jobs: 1,
        sim_threads: 1,
        last: 32,
        ring: 65536,
        journal: None,
        resume: false,
        keep_going: false,
        fleet: None,
        worker_id: None,
        lease_ms: None,
        heartbeat_ms: None,
        socket: None,
        max_inflight: 4,
        request_timeout_ms: 30_000,
        idle_timeout_ms: 30_000,
        stats: false,
        assemble_target: None,
        replay_only: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scale" => {
                parsed.scale = match value("--scale")?.as_str() {
                    "paper" => Scale::Paper,
                    "small" => Scale::Small,
                    "tiny" => Scale::Tiny,
                    other => return Err(format!("unknown scale '{other}'")),
                }
            }
            "--procs" => {
                parsed.procs = value("--procs")?
                    .parse()
                    .map_err(|e| format!("bad --procs: {e}"))?;
                if parsed.procs == 0 || parsed.procs > 1024 {
                    return Err(format!(
                        "--procs must be between 1 and 1024, got {}",
                        parsed.procs
                    ));
                }
            }
            "--app" => {
                let v = value("--app")?;
                parsed.app = Some(parse_app(&v).ok_or_else(|| format!("unknown app '{v}'"))?);
            }
            "--protocol" => {
                let v = value("--protocol")?;
                parsed.protocol =
                    parse_protocol(&v).ok_or_else(|| format!("unknown protocol '{v}'"))?;
            }
            "--consistency" => {
                parsed.consistency = match value("--consistency")?.as_str() {
                    "rc" => Consistency::Rc,
                    "sc" => Consistency::Sc,
                    other => return Err(format!("unknown consistency '{other}'")),
                }
            }
            "--json" => parsed.json = true,
            "--csv" => parsed.csv = true,
            "--trace" => parsed.trace = Some(value("--trace")?),
            "--seeds" => {
                parsed.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--fault-drop" => {
                let v: u32 = value("--fault-drop")?
                    .parse()
                    .map_err(|e| format!("bad --fault-drop: {e}"))?;
                if v > 1000 {
                    return Err(format!("--fault-drop is permille (0-1000), got {v}"));
                }
                parsed.fault.drop_permille = v;
            }
            "--fault-dup" => {
                let v: u32 = value("--fault-dup")?
                    .parse()
                    .map_err(|e| format!("bad --fault-dup: {e}"))?;
                if v > 1000 {
                    return Err(format!("--fault-dup is permille (0-1000), got {v}"));
                }
                parsed.fault.dup_permille = v;
            }
            "--fault-jitter" => {
                parsed.fault.jitter_cycles = value("--fault-jitter")?
                    .parse()
                    .map_err(|e| format!("bad --fault-jitter: {e}"))?;
            }
            "--fault-seed" => {
                parsed.fault.seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?;
            }
            "--fault-retries" => {
                parsed.fault.retry_budget = value("--fault-retries")?
                    .parse()
                    .map_err(|e| format!("bad --fault-retries: {e}"))?;
            }
            "--node-fault-crashes" => {
                let v: usize = value("--node-fault-crashes")?
                    .parse()
                    .map_err(|e| format!("bad --node-fault-crashes: {e}"))?;
                if v == 0 {
                    return Err(
                        "--node-fault-crashes must be at least 1 (omit the flag for a \
                         fault-free run)"
                            .to_owned(),
                    );
                }
                parsed.node_fault_crashes = Some(v);
            }
            "--node-fault-seed" => {
                parsed.node_fault_seed = Some(
                    value("--node-fault-seed")?
                        .parse()
                        .map_err(|e| format!("bad --node-fault-seed: {e}"))?,
                );
            }
            "--node-fault-detect" => {
                parsed.node_fault_detect = Some(
                    value("--node-fault-detect")?
                        .parse()
                        .map_err(|e| format!("bad --node-fault-detect: {e}"))?,
                );
            }
            "--node-fault-schedule" => {
                parsed.node_fault_schedule =
                    Some(parse_node_fault_schedule(&value("--node-fault-schedule")?)?);
            }
            "--watchdog" => {
                parsed.watchdog = Some(
                    value("--watchdog")?
                        .parse()
                        .map_err(|e| format!("bad --watchdog: {e}"))?,
                );
            }
            "--audit-every" => {
                parsed.audit_every = value("--audit-every")?
                    .parse()
                    .map_err(|e| format!("bad --audit-every: {e}"))?;
            }
            "--jobs" => {
                parsed.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
            }
            "--sim-threads" => {
                parsed.sim_threads = value("--sim-threads")?
                    .parse()
                    .map_err(|e| format!("bad --sim-threads: {e}"))?;
                if parsed.sim_threads == 0 {
                    return Err(
                        "--sim-threads must be at least 1 (1 = serial; unlike --jobs, \
                         0 does not mean \"all cores\")"
                            .to_owned(),
                    );
                }
            }
            "--last" => {
                parsed.last = value("--last")?
                    .parse()
                    .map_err(|e| format!("bad --last: {e}"))?;
            }
            "--ring" => {
                parsed.ring = value("--ring")?
                    .parse()
                    .map_err(|e| format!("bad --ring: {e}"))?;
                if parsed.ring == 0 {
                    return Err("--ring must be at least 1".to_owned());
                }
            }
            "--dir" => {
                let v = value("--dir")?;
                parsed.dir = DirOrg::parse(&v).ok_or_else(|| {
                    format!(
                        "unknown directory organization '{v}' (expected full, none, \
                         ptrNb, ptrNnb or coarseN — e.g. ptr4b, coarse8)"
                    )
                })?;
            }
            "--journal" => parsed.journal = Some(value("--journal")?),
            "--resume" => parsed.resume = true,
            "--keep-going" => parsed.keep_going = true,
            "--fleet" => parsed.fleet = Some(value("--fleet")?),
            "--worker-id" => parsed.worker_id = Some(value("--worker-id")?),
            "--lease-ms" => {
                parsed.lease_ms = Some(
                    value("--lease-ms")?
                        .parse()
                        .map_err(|e| format!("bad --lease-ms: {e}"))?,
                );
            }
            "--heartbeat-ms" => {
                parsed.heartbeat_ms = Some(
                    value("--heartbeat-ms")?
                        .parse()
                        .map_err(|e| format!("bad --heartbeat-ms: {e}"))?,
                );
            }
            "--socket" => parsed.socket = Some(value("--socket")?),
            "--max-inflight" => {
                parsed.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?;
                if !(1..=1024).contains(&parsed.max_inflight) {
                    return Err(format!(
                        "--max-inflight must be between 1 and 1024, got {} (0 would shed every \
                         miss; more than 1024 compute threads just thrash)",
                        parsed.max_inflight
                    ));
                }
            }
            "--request-timeout-ms" => {
                parsed.request_timeout_ms = value("--request-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --request-timeout-ms: {e}"))?;
                if !(50..=600_000).contains(&parsed.request_timeout_ms) {
                    return Err(format!(
                        "--request-timeout-ms must be between 50 and 600000, got {} (shorter \
                         times out every real compute; longer is a hung client)",
                        parsed.request_timeout_ms
                    ));
                }
            }
            "--idle-timeout-ms" => {
                parsed.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --idle-timeout-ms: {e}"))?;
                if !(100..=3_600_000).contains(&parsed.idle_timeout_ms) {
                    return Err(format!(
                        "--idle-timeout-ms must be between 100 and 3600000, got {} (shorter \
                         closes connections mid-typing; longer pins slots for over an hour)",
                        parsed.idle_timeout_ms
                    ));
                }
            }
            "--stats" => parsed.stats = true,
            "--out" => parsed.out = Some(value("--out")?),
            "--svg" => parsed.svg = Some(value("--svg")?),
            "--network" => {
                use dirext_sim::NetworkKind as Nk;
                parsed.network = match value("--network")?.as_str() {
                    "uniform" => Nk::Uniform,
                    "mesh64" => Nk::Mesh { link_bits: 64 },
                    "mesh32" => Nk::Mesh { link_bits: 32 },
                    "mesh16" => Nk::Mesh { link_bits: 16 },
                    "ring64" => Nk::Ring { link_bits: 64 },
                    "ring32" => Nk::Ring { link_bits: 32 },
                    "ring16" => Nk::Ring { link_bits: 16 },
                    "hmesh64" => Nk::HierMesh { link_bits: 64 },
                    "hmesh32" => Nk::HierMesh { link_bits: 32 },
                    "hmesh16" => Nk::HierMesh { link_bits: 16 },
                    other => return Err(format!("unknown network '{other}'")),
                };
            }
            other
                if parsed.command == "assemble"
                    && parsed.assemble_target.is_none()
                    && !other.starts_with('-') =>
            {
                parsed.assemble_target = Some(other.to_owned());
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    // Fleet flags are validated here, at parse time, so a mistyped
    // interval fails before the worker touches the shared directory.
    if let Some(dir) = &parsed.fleet {
        if parsed.journal.is_some() {
            return Err(
                "--journal conflicts with --fleet: each fleet worker journals to \
                 DIR/worker-<id>.jsonl automatically"
                    .to_owned(),
            );
        }
        if parsed.resume && parsed.command != "assemble" {
            return Err(
                "--resume is implicit in fleet mode (a worker always resumes its own journal \
                 and the shared lease log); drop the flag"
                    .to_owned(),
            );
        }
        parsed.fleet_config(dir).validate()?;
    } else {
        for (flag, given) in [
            ("--worker-id", parsed.worker_id.is_some()),
            ("--lease-ms", parsed.lease_ms.is_some()),
            ("--heartbeat-ms", parsed.heartbeat_ms.is_some()),
        ] {
            if given {
                return Err(format!(
                    "{flag} only applies to fleet workers; add --fleet DIR"
                ));
            }
        }
    }
    // Node-fault flags are validated here, at parse time, so a
    // contradictory or out-of-range crash schedule fails before any
    // machine is built.
    if parsed.node_fault_crashes.is_some() && parsed.node_fault_schedule.is_some() {
        return Err(
            "--node-fault-crashes conflicts with --node-fault-schedule: the schedule \
             already fixes how many nodes crash and when"
                .to_owned(),
        );
    }
    let node_faults_on = parsed.node_fault_crashes.is_some() || parsed.node_fault_schedule.is_some();
    if node_faults_on {
        match parsed.command.as_str() {
            "run" | "trace" | "stress" => {}
            "degrade" => {
                return Err(
                    "degrade sweeps the crash-count axis itself; shape its schedules with \
                     --node-fault-seed and --node-fault-detect instead"
                        .to_owned(),
                );
            }
            other => {
                return Err(format!(
                    "node-fault injection applies to run, trace, stress and degrade, \
                     not '{other}'"
                ));
            }
        }
        // An explicit schedule can name nodes the machine doesn't have or
        // overlap windows on one node; check against the machine size now
        // (seeded plans are valid by construction). A trace file decides
        // its own processor count, so defer to the simulator there.
        if parsed.trace.is_none() {
            let procs = if parsed.command == "stress" {
                parsed.procs.min(32)
            } else {
                parsed.procs
            };
            if let Some(plan) = parsed.node_fault_plan(procs) {
                plan.validate(procs)
                    .map_err(|e| format!("bad node-fault plan: {e}"))?;
            }
        }
    } else if parsed.command != "degrade" {
        for (flag, given) in [
            ("--node-fault-seed", parsed.node_fault_seed.is_some()),
            ("--node-fault-detect", parsed.node_fault_detect.is_some()),
        ] {
            if given {
                return Err(format!(
                    "{flag} only applies with --node-fault-crashes N, \
                     --node-fault-schedule SPEC, or the degrade command"
                ));
            }
        }
    }
    Ok(parsed)
}

fn suite(args: &Args) -> Vec<Workload> {
    let apps: Vec<App> = match args.app {
        Some(a) => vec![a],
        None => App::ALL.to_vec(),
    };
    apps.into_iter()
        .map(|a| a.workload(args.procs, args.scale))
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = dispatch(&args);
    // Test hook: fault the journal after the sweep so the exit-time
    // write-error guard below is exercised end to end.
    if std::env::var("DIREXT_CHAOS_JOURNAL_ERROR").as_deref() == Ok("late") {
        if let Some(j) = journals().lock().unwrap_or_else(|e| e.into_inner()).first() {
            j.inject_write_error("chaos: simulated journal write failure (late)");
        }
    }
    let code = match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            match e.downcast_ref::<SweepError>() {
                // Quarantine: the sweep *completed* but some cells failed;
                // distinguish from a hard error so harnesses can tell "all
                // results usable except the listed cells" from "no result".
                Some(SweepError::Quarantined(_)) => ExitCode::from(2),
                // Conventional 128+SIGINT code for a cooperative drain.
                Some(SweepError::Interrupted { .. }) => {
                    eprintln!(
                        "note: completed cells are journaled; re-run with --resume to continue"
                    );
                    ExitCode::from(130)
                }
                _ => ExitCode::FAILURE,
            }
        }
    };
    // A pending journal write error means the on-disk record is missing
    // cells that the process believes are done: exiting clean (or with a
    // mere quarantine code) would hand the next --resume a lying journal.
    if let Some(detail) = pending_write_error() {
        eprintln!(
            "error: journal write failure: {detail} (results on disk are incomplete; do not \
             trust this journal for --resume)"
        );
        return ExitCode::FAILURE;
    }
    code
}

/// Starts an empty quarantine accumulator for a multi-sweep command.
fn quarantine_acc() -> experiments::Quarantine {
    experiments::Quarantine {
        failures: Vec::new(),
        completed: 0,
        total: 0,
    }
}

/// Runs one step of a multi-sweep command (`run-all`, `report`): under
/// `--keep-going`, a quarantined sweep is reported and accumulated so the
/// remaining sweeps still run; every other failure aborts.
fn quarantine_step<T>(
    r: Result<T, SweepError>,
    acc: &mut experiments::Quarantine,
) -> Result<Option<T>, Box<dyn std::error::Error>> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(SweepError::Quarantined(q)) => {
            eprintln!("{}", SweepError::Quarantined(q.clone()));
            acc.failures.extend(q.failures);
            acc.completed += q.completed;
            acc.total += q.total;
            Ok(None)
        }
        Err(e) => Err(e.into()),
    }
}

/// Folds the quarantines accumulated across a multi-sweep command into
/// the single exit-code-2 error, or succeeds if every sweep was clean.
fn quarantine_verdict(acc: experiments::Quarantine) -> Result<(), Box<dyn std::error::Error>> {
    if acc.failures.is_empty() {
        Ok(())
    } else {
        Err(SweepError::Quarantined(acc).into())
    }
}

fn dispatch(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match args.command.as_str() {
        "fig2" => {
            let r = experiments::fig2_with(&suite(args), &args.sweep_opts()?)?;
            if let Some(path) = &args.svg {
                let groups: Vec<String> = r.rows.iter().map(|row| row.app.clone()).collect();
                let series: Vec<String> = experiments::fig2::FIG2_PROTOCOLS
                    .iter()
                    .map(|k| k.name().to_owned())
                    .collect();
                let values: Vec<Vec<f64>> = r.rows.iter().map(|row| row.relative_times()).collect();
                let chart = svg::grouped_bars(
                    "Figure 2: execution time relative to BASIC (RC)",
                    &groups,
                    &series,
                    &values,
                    1.0,
                );
                std::fs::write(path, chart)?;
                eprintln!("figure written to {path}");
            }
            if args.csv {
                print!("{}", r.csv())
            } else {
                println!("{r}")
            }
        }
        "table2" => {
            let r = experiments::table2_with(&suite(args), &args.sweep_opts()?)?;
            if args.csv {
                print!("{}", r.csv())
            } else {
                println!("{r}")
            }
        }
        "fig3" => {
            let r = experiments::fig3_with(&suite(args), &args.sweep_opts()?)?;
            if let Some(path) = &args.svg {
                let groups: Vec<String> = r.rows.iter().map(|row| row.app.clone()).collect();
                let series: Vec<String> = experiments::fig3::FIG3_PROTOCOLS
                    .iter()
                    .map(|k| format!("{}-SC", k.name()))
                    .collect();
                let values: Vec<Vec<f64>> = r.rows.iter().map(|row| row.relative_times()).collect();
                let chart = svg::grouped_bars(
                    "Figure 3: execution time under SC relative to B-SC",
                    &groups,
                    &series,
                    &values,
                    1.0,
                );
                std::fs::write(path, chart)?;
                eprintln!("figure written to {path}");
            }
            if args.csv {
                print!("{}", r.csv())
            } else {
                println!("{r}")
            }
        }
        "table3" => {
            let r = experiments::table3_with(&suite(args), &args.sweep_opts()?)?;
            if args.csv {
                print!("{}", r.csv())
            } else {
                println!("{r}")
            }
        }
        "fig4" => {
            let r = experiments::fig4_with(&suite(args), &args.sweep_opts()?)?;
            if let Some(path) = &args.svg {
                let groups: Vec<String> = r.rows.iter().map(|row| row.app.clone()).collect();
                let series: Vec<String> = experiments::fig4::FIG4_PROTOCOLS
                    .iter()
                    .map(|k| k.name().to_owned())
                    .collect();
                let values: Vec<Vec<f64>> =
                    r.rows.iter().map(|row| row.relative_traffic()).collect();
                let chart = svg::grouped_bars(
                    "Figure 4: network traffic normalized to BASIC (RC)",
                    &groups,
                    &series,
                    &values,
                    1.0,
                );
                std::fs::write(path, chart)?;
                eprintln!("figure written to {path}");
            }
            if args.csv {
                print!("{}", r.csv())
            } else {
                println!("{r}")
            }
        }
        "table1" => println!("{}", experiments::table1(args.procs)),
        "sens-buffers" => {
            println!(
                "{}",
                experiments::sensitivity_with(
                    &suite(args),
                    sens::Constraint::SmallBuffers,
                    &args.sweep_opts()?
                )?
            )
        }
        "sens-cache" => {
            println!(
                "{}",
                experiments::sensitivity_with(
                    &suite(args),
                    sens::Constraint::SmallSlc,
                    &args.sweep_opts()?
                )?
            )
        }
        "miss-latency" => println!(
            "{}",
            experiments::miss_latency_with(&suite(args), &args.sweep_opts()?)?
        ),
        "topology" => println!(
            "{}",
            experiments::topology_with(&suite(args), &args.sweep_opts()?)?
        ),
        "stress" => {
            use dirext_sim::NetworkKind;
            use dirext_workloads::random::{random_workload, RandomParams};
            use experiments::pool::run_ordered;
            let params = RandomParams {
                procs: args.procs.min(32),
                ..RandomParams::default()
            };
            // The per-seed configuration matrix: every feasible protocol ×
            // consistency on the uniform network, plus P+CW+M on the two
            // contended networks (different delivery timing exposes
            // different interleavings).
            let mut combos: Vec<(ProtocolKind, Consistency, NetworkKind)> = Vec::new();
            for kind in ProtocolKind::ALL {
                for consistency in [Consistency::Rc, Consistency::Sc] {
                    if kind.config(consistency).is_feasible() {
                        combos.push((kind, consistency, NetworkKind::Uniform));
                    }
                }
            }
            for net in [
                NetworkKind::Mesh { link_bits: 16 },
                NetworkKind::Ring { link_bits: 16 },
            ] {
                combos.push((ProtocolKind::PCwM, Consistency::Rc, net));
            }
            let workloads: Vec<Workload> = (0..args.seeds)
                .map(|seed| random_workload(seed, params))
                .collect();
            // Fan the whole seed × combo matrix over the worker pool. A
            // failing configuration is recorded and the sweep continues:
            // one broken protocol/seed pair must not mask failures in the
            // rest of the matrix. Slots come back in index order, so the
            // failure list is deterministic for any --jobs value.
            let runs = workloads.len() * combos.len();
            let results = run_ordered::<_, dirext_sim::SimError, _>(args.jobs(), runs, |i| {
                let (seed, c) = (i / combos.len(), i % combos.len());
                let (kind, consistency, net) = combos[c];
                let cfg = args.harden(
                    MachineConfig::new(params.procs, kind.config(consistency)).with_network(net),
                );
                let t0 = std::time::Instant::now();
                let outcome = Machine::new(cfg).run(&workloads[seed]);
                let secs = t0.elapsed().as_secs_f64();
                Ok((
                    secs,
                    outcome.err().map(|e| {
                        let label = match net {
                            NetworkKind::Uniform => format!("seed={seed} {kind} {consistency:?}"),
                            _ => format!("seed={seed} {kind} {net:?}"),
                        };
                        eprintln!("FAIL {label}: {e}");
                        format!("{label}: {e}")
                    }),
                ))
            })?;
            let mut per_seed = vec![0.0f64; workloads.len()];
            let mut failures: Vec<String> = Vec::new();
            for (i, (secs, fail)) in results.into_iter().enumerate() {
                per_seed[i / combos.len()] += secs;
                failures.extend(fail);
            }
            for (seed, secs) in per_seed.iter().enumerate() {
                eprintln!(
                    "  seed {seed}: {} runs in {secs:.3}s wall-clock",
                    combos.len()
                );
            }
            let mut sorted = per_seed.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let (min, med, max) = (
                sorted.first().copied().unwrap_or(0.0),
                sorted.get(sorted.len() / 2).copied().unwrap_or(0.0),
                sorted.last().copied().unwrap_or(0.0),
            );
            if failures.is_empty() {
                println!(
                    "stress: {runs} runs across {} seeds — all coherence audits passed \
                     (per-seed wall-clock min/median/max {min:.3}/{med:.3}/{max:.3}s, \
                     total {:.3}s, --jobs {})",
                    args.seeds,
                    per_seed.iter().sum::<f64>(),
                    args.jobs()
                );
            } else {
                for f in &failures {
                    println!("FAIL {f}");
                }
                return Err(format!(
                    "stress: {} of {runs} runs failed across {} seeds",
                    failures.len(),
                    args.seeds
                )
                .into());
            }
        }
        "run-all" => {
            let t0 = std::time::Instant::now();
            let s = suite(args);
            let opts = args.sweep_opts()?;
            let mut acc = quarantine_acc();
            println!("{}", experiments::table1(args.procs));
            eprintln!("run-all: figure 2...");
            if let Some(r) = quarantine_step(experiments::fig2_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: table 2...");
            if let Some(r) = quarantine_step(experiments::table2_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: figure 3...");
            if let Some(r) = quarantine_step(experiments::fig3_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: table 3...");
            if let Some(r) = quarantine_step(experiments::table3_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: figure 4...");
            if let Some(r) = quarantine_step(experiments::fig4_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: sensitivity...");
            if let Some(r) = quarantine_step(
                experiments::sensitivity_with(&s, sens::Constraint::SmallBuffers, &opts),
                &mut acc,
            )? {
                println!("{r}");
            }
            if let Some(r) = quarantine_step(
                experiments::sensitivity_with(&s, sens::Constraint::SmallSlc, &opts),
                &mut acc,
            )? {
                println!("{r}");
            }
            eprintln!("run-all: miss latency...");
            if let Some(r) = quarantine_step(experiments::miss_latency_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: topology...");
            if let Some(r) = quarantine_step(experiments::topology_with(&s, &opts), &mut acc)? {
                println!("{r}");
            }
            eprintln!("run-all: scaling...");
            let app = args.app.unwrap_or(App::Mp3d);
            if let Some(r) = quarantine_step(
                experiments::scaling_with(
                    app.name(),
                    |procs| app.workload(procs, args.scale),
                    &opts,
                ),
                &mut acc,
            )? {
                println!("{r}");
            }
            eprintln!(
                "run-all: completed in {:.2}s wall-clock with --jobs {}",
                t0.elapsed().as_secs_f64(),
                args.jobs()
            );
            quarantine_verdict(acc)?;
        }
        "scaling" => {
            let app = args.app.unwrap_or(App::Mp3d);
            let result = experiments::scaling_with(
                app.name(),
                |procs| app.workload(procs, args.scale),
                &args.sweep_opts()?,
            )?;
            println!("{result}");
        }
        "dirscale" => {
            let app = args.app.unwrap_or(App::Mp3d);
            let result = experiments::dirscale_with(
                app.name(),
                |procs| app.workload(procs, args.scale),
                &args.sweep_opts()?,
            )?;
            println!("{result}");
        }
        "degrade" => {
            let app = args.app.unwrap_or(App::Mp3d);
            let w = app.workload(args.procs, args.scale);
            let params = dirext_sim::experiments::DegradeParams {
                seed: args.node_fault_seed.unwrap_or(1),
                detect_delay: args.node_fault_detect.unwrap_or(500),
            };
            let result = experiments::degrade_with(app.name(), &w, params, &args.sweep_opts()?)?;
            println!("{result}");
        }
        "run" => {
            let w = match &args.trace {
                Some(path) => {
                    let file = std::fs::File::open(path)
                        .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
                    dirext_trace::io::read_text(std::io::BufReader::new(file))?
                }
                None => args
                    .app
                    .unwrap_or(App::Mp3d)
                    .workload(args.procs, args.scale),
            };
            let proto = args.protocol.config(args.consistency);
            if !proto.is_feasible() {
                return Err(format!(
                    "{} is not implementable under {}: the competitive-update \
                     mechanism needs relaxed consistency",
                    args.protocol, args.consistency
                )
                .into());
            }
            let cfg = args.harden(MachineConfig::new(w.procs(), proto).with_network(args.network));
            let m = Machine::new(cfg).run(&w)?;
            if args.json {
                println!("{}", serde_json::to_string_pretty(&m)?);
            } else {
                println!("{m}");
            }
        }
        "trace" => {
            let w = match &args.trace {
                Some(path) => {
                    let file = std::fs::File::open(path)
                        .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
                    dirext_trace::io::read_text(std::io::BufReader::new(file))?
                }
                None => args
                    .app
                    .unwrap_or(App::Mp3d)
                    .workload(args.procs, args.scale),
            };
            let proto = args.protocol.config(args.consistency);
            if !proto.is_feasible() {
                return Err(format!(
                    "{} is not implementable under {}: the competitive-update \
                     mechanism needs relaxed consistency",
                    args.protocol, args.consistency
                )
                .into());
            }
            let cfg = args
                .harden(MachineConfig::new(w.procs(), proto).with_network(args.network))
                .with_trace(args.ring);
            // A conformance violation surfaces as a run error (the machine
            // replays its own trace at quiescence), so reaching this point
            // means every retained record is derivable from the tables.
            let (m, records, layers) = Machine::new(cfg).run_traced(&w)?;
            let names: Vec<&str> = layers
                .kinds()
                .iter()
                .map(|k| k.label())
                .filter(|l| *l != "BASIC")
                .collect();
            let tail = records.len().saturating_sub(args.last);
            for r in &records[tail..] {
                println!("{}", r.render());
            }
            if tail > 0 && args.last > 0 {
                println!("  ... ({tail} earlier records not shown; --last to adjust)");
            }
            println!(
                "conformance: ok — {} transitions checked against {}",
                records.len(),
                if names.is_empty() {
                    "BASIC".to_owned()
                } else {
                    format!("BASIC+[{}]", names.join(", "))
                }
            );
            if args.json {
                println!("{}", serde_json::to_string_pretty(&m)?);
            } else {
                println!("{m}");
            }
        }
        "validate" => {
            let Some(path) = &args.trace else {
                return Err("validate needs --trace FILE".into());
            };
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
            let w = dirext_trace::io::read_text(std::io::BufReader::new(file))?;
            w.validate()?;
            println!(
                "{path}: ok — workload '{}', {} processors, {} events, {} shared references",
                w.name(),
                w.procs(),
                w.total_events(),
                w.total_data_refs()
            );
        }
        "dump-trace" => {
            let app = args.app.unwrap_or(App::Mp3d);
            let w = app.workload(args.procs, args.scale);
            let stdout = std::io::stdout();
            dirext_trace::io::write_text(&w, &mut stdout.lock())?;
        }
        "report" => {
            let s = suite(args);
            let opts = args.sweep_opts()?;
            let mut acc = quarantine_acc();
            let mut doc = String::new();
            doc.push_str(&format!(
                "# dirext experiment report\n\nScale: {}, {} processors.\n\n",
                args.scale, args.procs
            ));
            let mut section = |title: &str, body: String| {
                doc.push_str(&format!("## {title}\n\n```text\n{body}\n```\n\n"));
            };
            // Under --keep-going a quarantined sweep still gets a section,
            // with the failure report as its body, so the document shape is
            // stable for downstream tooling.
            let render = |r: Result<String, SweepError>,
                          acc: &mut experiments::Quarantine|
             -> Result<String, Box<dyn std::error::Error>> {
                let failed_at = acc.failures.len();
                match quarantine_step(r, acc)? {
                    Some(body) => Ok(body),
                    None => Ok(format!(
                        "QUARANTINED — {} cell(s) failed; see the failure report",
                        acc.failures.len() - failed_at
                    )),
                }
            };
            section("Table 1 — hardware cost", experiments::table1(args.procs));
            eprintln!("report: figure 2...");
            section(
                "Figure 2 — relative execution times (RC)",
                render(
                    experiments::fig2_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: table 2...");
            section(
                "Table 2 — miss-rate components",
                render(
                    experiments::table2_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: figure 3...");
            section(
                "Figure 3 — sequential consistency",
                render(
                    experiments::fig3_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: table 3...");
            section(
                "Table 3 — mesh link widths",
                render(
                    experiments::table3_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: figure 4...");
            section(
                "Figure 4 — network traffic",
                render(
                    experiments::fig4_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: sensitivity...");
            section(
                "Sensitivity — small buffers (5.4)",
                render(
                    experiments::sensitivity_with(&s, sens::Constraint::SmallBuffers, &opts)
                        .map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            section(
                "Sensitivity — 16-KB SLC (5.4)",
                render(
                    experiments::sensitivity_with(&s, sens::Constraint::SmallSlc, &opts)
                        .map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: miss latency...");
            section(
                "Read-miss latency — BASIC vs CW (5.1)",
                render(
                    experiments::miss_latency_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            eprintln!("report: topology (extension)...");
            section(
                "Topology sweep (extension)",
                render(
                    experiments::topology_with(&s, &opts).map(|r| r.to_string()),
                    &mut acc,
                )?,
            );
            match &args.out {
                Some(path) => {
                    std::fs::write(path, &doc)
                        .map_err(|e| format!("cannot write report to '{path}': {e}"))?;
                    println!("report written to {path}");
                }
                None => print!("{doc}"),
            }
            quarantine_verdict(acc)?;
        }
        "assemble" => {
            const TARGETS: &[&str] = &[
                "fig2",
                "table2",
                "fig3",
                "table3",
                "fig4",
                "sens-buffers",
                "sens-cache",
                "miss-latency",
                "topology",
                "scaling",
                "dirscale",
                "run-all",
                "report",
            ];
            let Some(target) = &args.assemble_target else {
                return Err(format!(
                    "assemble needs the sweep command to replay, e.g. `dirext assemble fig2 \
                     --fleet DIR` (one of: {})",
                    TARGETS.join(", ")
                )
                .into());
            };
            if !TARGETS.contains(&target.as_str()) {
                return Err(format!(
                    "assemble cannot replay '{target}' (one of: {})",
                    TARGETS.join(", ")
                )
                .into());
            }
            let Some(dir) = &args.fleet else {
                return Err(
                    "assemble needs --fleet DIR (the directory holding worker-*.jsonl journals)"
                        .into(),
                );
            };
            let dir = std::path::Path::new(dir);
            let workers = experiments::worker_journals(dir)?;
            if workers.is_empty() {
                return Err(format!(
                    "no worker journals (worker-*.jsonl) in {}; did the fleet run here?",
                    dir.display()
                )
                .into());
            }
            let out = experiments::assembled_path(dir);
            let summary = experiments::journal::assemble(&workers, &out)?;
            eprintln!(
                "assemble: folded {} worker journal(s) into {} — {} completed cell(s), {} \
                 quarantined{}",
                summary.workers,
                out.display(),
                summary.cells,
                summary.failed,
                match (summary.recovered, summary.corrupt) {
                    (0, 0) => String::new(),
                    (t, 0) => format!(", {t} torn line(s) dropped"),
                    (0, c) => format!(", {c} checksum-failed line(s) dropped"),
                    (t, c) => {
                        format!(", {t} torn + {c} checksum-failed line(s) dropped")
                    }
                }
            );
            // Replay the merged journal through the target command: same
            // artifacts, byte for byte, as a serial run — or a clear
            // incomplete/quarantined error unless --keep-going (which
            // recomputes the gaps locally and quarantines repeat
            // offenders).
            let inner = Args {
                command: target.clone(),
                fleet: None,
                worker_id: None,
                lease_ms: None,
                heartbeat_ms: None,
                journal: Some(out.display().to_string()),
                resume: true,
                replay_only: !args.keep_going,
                assemble_target: None,
                ..args.clone()
            };
            return dispatch(&inner);
        }
        "serve" => serve::run_serve(args)?,
        "query" => serve::run_query(args)?,
        "suite" => {
            for w in suite(args) {
                println!(
                    "{:10} procs={} events={} shared-refs={}",
                    w.name(),
                    w.procs(),
                    w.total_events(),
                    w.total_data_refs()
                );
            }
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => return Err(format!("unknown command '{other}'\n\n{USAGE}").into()),
    }
    Ok(())
}
