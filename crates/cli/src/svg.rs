//! Minimal dependency-free SVG grouped-bar charts, so `fig2`/`fig3`/`fig4`
//! can be emitted as actual figures.

/// Renders a grouped bar chart as an SVG document.
///
/// `groups` labels the x-axis clusters (applications), `series` labels the
/// bars within each cluster (protocols), and `values[g][s]` is the bar
/// height for group `g`, series `s`. A horizontal reference line is drawn
/// at `reference` (the BASIC = 1.0 normalization of the paper's figures).
///
/// # Panics
///
/// Panics if the value matrix does not match the label dimensions.
pub fn grouped_bars(
    title: &str,
    groups: &[String],
    series: &[String],
    values: &[Vec<f64>],
    reference: f64,
) -> String {
    assert_eq!(values.len(), groups.len(), "one row per group");
    for row in values {
        assert_eq!(row.len(), series.len(), "one value per series");
    }
    // Muted, print-friendly palette (cycled if there are more series).
    const PALETTE: [&str; 8] = [
        "#4878a8", "#d1605e", "#6aa56e", "#e8b04c", "#8b6cab", "#5ab4c4", "#a87858", "#777777",
    ];
    let bar_w = 16.0;
    let bar_gap = 2.0;
    let group_gap = 28.0;
    let chart_h = 260.0;
    let margin_l = 52.0;
    let margin_t = 46.0;
    let margin_b = 46.0;
    let legend_h = 22.0;

    let group_w = series.len() as f64 * (bar_w + bar_gap) + group_gap;
    let chart_w = groups.len() as f64 * group_w;
    let width = margin_l + chart_w + 20.0;
    let height = margin_t + chart_h + margin_b + legend_h;

    let max_v = values
        .iter()
        .flatten()
        .copied()
        .fold(reference, f64::max)
        .max(1e-9);
    let scale = chart_h / (max_v * 1.1);
    let y_of = |v: f64| margin_t + chart_h - v * scale;

    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    s.push_str(&format!(
        "  <text x=\"{:.0}\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        margin_l,
        xml_escape(title)
    ));
    // Axes.
    s.push_str(&format!(
        "  <line x1=\"{margin_l:.0}\" y1=\"{:.0}\" x2=\"{margin_l:.0}\" y2=\"{:.0}\" stroke=\"#333\"/>\n",
        margin_t,
        margin_t + chart_h
    ));
    s.push_str(&format!(
        "  <line x1=\"{margin_l:.0}\" y1=\"{0:.0}\" x2=\"{1:.0}\" y2=\"{0:.0}\" stroke=\"#333\"/>\n",
        margin_t + chart_h,
        margin_l + chart_w
    ));
    // Y ticks at 0, ½·max, max (rounded), plus the reference line.
    for tick in [0.0, max_v * 0.55, max_v * 1.1] {
        let y = y_of(tick);
        s.push_str(&format!(
            "  <text x=\"{:.0}\" y=\"{:.0}\" text-anchor=\"end\">{:.2}</text>\n",
            margin_l - 6.0,
            y + 4.0,
            tick
        ));
        s.push_str(&format!(
            "  <line x1=\"{margin_l:.0}\" y1=\"{y:.0}\" x2=\"{:.0}\" y2=\"{y:.0}\" stroke=\"#ddd\"/>\n",
            margin_l + chart_w
        ));
    }
    let ref_y = y_of(reference);
    s.push_str(&format!(
        "  <line x1=\"{margin_l:.0}\" y1=\"{ref_y:.0}\" x2=\"{:.0}\" y2=\"{ref_y:.0}\" \
         stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n",
        margin_l + chart_w
    ));
    // Bars.
    for (g, row) in values.iter().enumerate() {
        let gx = margin_l + g as f64 * group_w + group_gap / 2.0;
        for (i, &v) in row.iter().enumerate() {
            let x = gx + i as f64 * (bar_w + bar_gap);
            let y = y_of(v);
            let h = (margin_t + chart_h - y).max(0.0);
            s.push_str(&format!(
                "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{h:.1}\" \
                 fill=\"{}\"><title>{}: {} = {v:.3}</title></rect>\n",
                PALETTE[i % PALETTE.len()],
                xml_escape(&groups[g]),
                xml_escape(&series[i]),
            ));
        }
        s.push_str(&format!(
            "  <text x=\"{:.0}\" y=\"{:.0}\" text-anchor=\"middle\">{}</text>\n",
            gx + (series.len() as f64 * (bar_w + bar_gap)) / 2.0,
            margin_t + chart_h + 16.0,
            xml_escape(&groups[g])
        ));
    }
    // Legend.
    let mut lx = margin_l;
    let ly = margin_t + chart_h + 34.0;
    for (i, label) in series.iter().enumerate() {
        s.push_str(&format!(
            "  <rect x=\"{lx:.0}\" y=\"{:.0}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
            ly - 9.0,
            PALETTE[i % PALETTE.len()]
        ));
        s.push_str(&format!(
            "  <text x=\"{:.0}\" y=\"{ly:.0}\">{}</text>\n",
            lx + 14.0,
            xml_escape(label)
        ));
        lx += 14.0 + 8.0 * label.len() as f64 + 18.0;
    }
    s.push_str("</svg>\n");
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn renders_one_rect_per_bar_plus_legend() {
        let svg = grouped_bars(
            "demo",
            &labels(&["A", "B"]),
            &labels(&["x", "y", "z"]),
            &[vec![1.0, 0.5, 0.8], vec![1.0, 0.6, 0.7]],
            1.0,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 6 bars + 3 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 9);
        assert!(svg.contains("demo"));
        assert!(svg.contains("stroke-dasharray"), "reference line present");
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = grouped_bars(
            "a<b & c",
            &labels(&["<app>"]),
            &labels(&["P&M"]),
            &[vec![0.5]],
            1.0,
        );
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("<app>"));
        assert!(svg.contains("&lt;app&gt;"));
    }

    #[test]
    #[should_panic(expected = "one value per series")]
    fn dimension_mismatch_panics() {
        let _ = grouped_bars(
            "t",
            &labels(&["A"]),
            &labels(&["x", "y"]),
            &[vec![1.0]],
            1.0,
        );
    }
}
