//! End-to-end tests of the `dirext` binary.

use std::process::{Command, Output};

fn dirext(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dirext"))
        .args(args)
        .output()
        .expect("failed to launch dirext")
}

fn stdout(args: &[&str]) -> String {
    let out = dirext(args);
    assert!(
        out.status.success(),
        "dirext {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn help_lists_every_command() {
    let help = stdout(&["help"]);
    for cmd in [
        "fig2",
        "table2",
        "fig3",
        "table3",
        "fig4",
        "table1",
        "sens-buffers",
        "sens-cache",
        "miss-latency",
        "scaling",
        "stress",
        "run",
        "dump-trace",
        "suite",
    ] {
        assert!(help.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dirext(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_flag_fails() {
    let out = dirext(&["fig2", "--bogus"]);
    assert!(!out.status.success());
}

#[test]
fn table1_matches_paper_budget() {
    let t = stdout(&["table1"]);
    assert!(t.contains("SLC bits/line:    2"));
    assert!(t.contains("memory bits/line: 19"));
}

#[test]
fn fig2_tiny_produces_the_table() {
    let t = stdout(&["fig2", "--scale", "tiny", "--app", "water"]);
    assert!(t.contains("Figure 2"));
    assert!(t.contains("Water"));
    assert!(t.contains("P+CW+M"));
}

#[test]
fn fig2_csv_is_machine_readable() {
    let t = stdout(&["fig2", "--scale", "tiny", "--app", "lu", "--csv"]);
    let mut lines = t.lines();
    assert_eq!(lines.next(), Some("app,protocol,relative_time,exec_cycles"));
    // 8 protocols for one app.
    assert_eq!(lines.count(), 8);
    assert!(t.contains("LU,BASIC,1.0000"));
}

#[test]
fn run_emits_json_metrics() {
    let t = stdout(&[
        "run",
        "--app",
        "mp3d",
        "--scale",
        "tiny",
        "--protocol",
        "P+CW",
        "--json",
    ]);
    let v: serde_json::Value = serde_json::from_str(&t).expect("valid JSON");
    assert_eq!(v["protocol"], "P+CW");
    assert!(v["exec_cycles"].as_u64().unwrap() > 0);
}

#[test]
fn trace_round_trip_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("dirext-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("water.trace");
    let trace = stdout(&["dump-trace", "--app", "water", "--scale", "tiny"]);
    assert!(trace.starts_with("# dirext trace v1"));
    std::fs::write(&path, &trace).unwrap();
    let out = stdout(&["run", "--trace", path.to_str().unwrap(), "--protocol", "M"]);
    assert!(out.contains("Water / M"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_on_mesh_and_ring_networks() {
    for net in ["mesh16", "ring32"] {
        let out = stdout(&[
            "run",
            "--app",
            "water",
            "--scale",
            "tiny",
            "--protocol",
            "BASIC",
            "--network",
            net,
        ]);
        assert!(out.contains("Water / BASIC"), "{net}: {out}");
    }
}

#[test]
fn stress_sweeps_cleanly() {
    let out = stdout(&["stress", "--seeds", "3", "--procs", "4"]);
    assert!(out.contains("all coherence audits passed"));
}

#[test]
fn suite_lists_five_apps() {
    let out = stdout(&["suite", "--scale", "tiny"]);
    for app in ["MP3D", "Cholesky", "Water", "LU", "Ocean"] {
        assert!(out.contains(app));
    }
}

#[test]
fn report_writes_a_complete_markdown_document() {
    let dir = std::env::temp_dir().join(format!("dirext-report-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.md");
    let _ = stdout(&["report", "--scale", "tiny", "--out", path.to_str().unwrap()]);
    let doc = std::fs::read_to_string(&path).unwrap();
    for section in [
        "Table 1",
        "Figure 2",
        "Table 2",
        "Figure 3",
        "Table 3",
        "Figure 4",
        "Sensitivity",
        "Read-miss latency",
        "Topology",
    ] {
        assert!(doc.contains(section), "report must contain {section}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn topology_command_prints_all_three_networks() {
    let out = stdout(&["topology", "--scale", "tiny", "--app", "water"]);
    for col in ["unif", "mesh", "ring"] {
        assert!(out.contains(col), "{out}");
    }
}

#[test]
fn validate_accepts_good_and_rejects_bad_traces() {
    let dir = std::env::temp_dir().join(format!("dirext-validate-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.trace");
    std::fs::write(
        &good,
        stdout(&["dump-trace", "--app", "lu", "--scale", "tiny"]),
    )
    .unwrap();
    let out = stdout(&["validate", "--trace", good.to_str().unwrap()]);
    assert!(out.contains("ok"));

    // A barrier inside a critical section must be rejected.
    let bad = dir.join("bad.trace");
    std::fs::write(
        &bad,
        "# dirext trace v1\nworkload bad procs 2\nproc 0\na 0x100000\nb 0\nl 0x100000\nproc 1\nb 0\n",
    )
    .unwrap();
    let out = dirext(&["validate", "--trace", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("barrier"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figures_render_as_svg() {
    let dir = std::env::temp_dir().join(format!("dirext-svg-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (cmd, bars_per_app) in [("fig2", 8), ("fig3", 4), ("fig4", 6)] {
        let path = dir.join(format!("{cmd}.svg"));
        let _ = stdout(&[
            cmd,
            "--scale",
            "tiny",
            "--app",
            "lu",
            "--svg",
            path.to_str().unwrap(),
        ]);
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"), "{cmd}");
        // One rect per bar plus one legend swatch per series.
        assert_eq!(
            svg.matches("<rect").count(),
            2 * bars_per_app,
            "{cmd}: bars + legend"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn procs_out_of_range_is_a_clean_error() {
    for bad in ["0", "1025"] {
        let out = dirext(&["run", "--app", "water", "--scale", "tiny", "--procs", bad]);
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("between 1 and 1024"), "{bad}: {err}");
        assert!(!err.contains("panicked"), "{bad}: must not panic");
    }
}

#[test]
fn full_map_past_64_nodes_is_a_clean_config_error() {
    // 65 nodes is parseable now, but the default full-map directory
    // cannot serve it: the error must name the organization and the
    // limit, and suggest nothing panicked.
    let out = dirext(&["run", "--app", "water", "--scale", "tiny", "--procs", "65"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("full"), "names the organization: {err}");
    assert!(err.contains("64"), "names the node limit: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn scalable_directory_runs_past_64_nodes() {
    let json = stdout(&[
        "run",
        "--app",
        "water",
        "--scale",
        "tiny",
        "--procs",
        "96",
        "--dir",
        "ptr4b",
        "--network",
        "hmesh64",
        "--json",
    ]);
    assert!(json.contains("\"exec_cycles\""), "{json}");
}

#[test]
fn unknown_dir_organization_is_a_clean_error() {
    let out = dirext(&["run", "--app", "water", "--dir", "ptrXb"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("directory organization"), "{err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn missing_trace_file_error_names_the_path() {
    let out = dirext(&["run", "--trace", "/nonexistent-trace-file"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent-trace-file"));
}

#[test]
fn help_documents_crash_safe_sweep_flags() {
    let help = stdout(&["help"]);
    for flag in ["--journal", "--resume", "--keep-going"] {
        assert!(help.contains(flag), "help must mention {flag}");
    }
    assert!(
        help.contains("130"),
        "help documents the interrupt exit code"
    );
}

#[test]
fn journaled_sweep_resumes_with_identical_output() {
    let dir = std::env::temp_dir().join(format!("dirext-journal-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("fig2.jsonl");
    let args = [
        "fig2",
        "--scale",
        "tiny",
        "--app",
        "water",
        "--csv",
        "--journal",
        journal.to_str().unwrap(),
    ];
    let first = stdout(&args);
    let recorded = std::fs::read_to_string(&journal).unwrap();
    assert!(
        recorded.lines().count() > 8,
        "header plus one line per cell"
    );

    // Resuming over the complete journal replays every cell from the log
    // and reproduces the artifact byte for byte.
    let mut resume_args = args.to_vec();
    resume_args.push("--resume");
    let out = dirext(&resume_args);
    assert!(out.status.success());
    assert_eq!(first, String::from_utf8_lossy(&out.stdout));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resuming"),
        "resume notice goes to stderr"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_to_overwrite_without_the_flag() {
    let dir = std::env::temp_dir().join(format!("dirext-overwrite-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("fig2.jsonl");
    let args = [
        "fig2",
        "--scale",
        "tiny",
        "--app",
        "lu",
        "--journal",
        journal.to_str().unwrap(),
    ];
    let _ = stdout(&args);
    // A second run against the same journal without --resume must refuse
    // rather than clobber the log.
    let out = dirext(&args);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_panic_quarantines_with_exit_code_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_dirext"))
        .args(["fig2", "--scale", "tiny", "--keep-going", "--jobs", "2"])
        .env("DIREXT_CHAOS_PANIC", "Water")
        .output()
        .expect("failed to launch dirext");
    assert_eq!(out.status.code(), Some(2), "quarantine exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quarantined"), "{err}");
    assert!(err.contains("Water"), "{err}");
}

#[test]
fn chaos_panic_without_keep_going_fails_fast() {
    let out = Command::new(env!("CARGO_BIN_EXE_dirext"))
        .args(["fig2", "--scale", "tiny", "--app", "water"])
        .env("DIREXT_CHAOS_PANIC", "Water")
        .output()
        .expect("failed to launch dirext");
    assert_eq!(out.status.code(), Some(1), "plain failure exit code");
    assert!(String::from_utf8_lossy(&out.stderr).contains("panicked"));
}

#[test]
fn cw_under_sc_is_a_clean_error() {
    let out = dirext(&[
        "run",
        "--app",
        "water",
        "--scale",
        "tiny",
        "--protocol",
        "CW",
        "--consistency",
        "sc",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("relaxed consistency"), "{err}");
    assert!(!err.contains("panicked"));
}

#[test]
fn sim_threads_zero_is_a_clean_error() {
    let out = dirext(&["run", "--app", "water", "--scale", "tiny", "--sim-threads", "0"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sim-threads must be at least 1"), "{err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn sim_threads_past_host_clamps_with_a_note_and_identical_output() {
    let serial = stdout(&[
        "run",
        "--app",
        "mp3d",
        "--scale",
        "tiny",
        "--network",
        "hmesh64",
        "--json",
    ]);
    let out = dirext(&[
        "run",
        "--app",
        "mp3d",
        "--scale",
        "tiny",
        "--network",
        "hmesh64",
        "--json",
        "--sim-threads",
        "9999",
    ]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--sim-threads 9999 exceeds") && err.contains("available CPU"),
        "clamp note missing: {err}"
    );
    // The windowed engine's contract: thread count changes wall-clock only.
    assert_eq!(serial, String::from_utf8_lossy(&out.stdout));
}

#[test]
fn sim_threads_unclamped_env_hook_suppresses_the_note() {
    // procs caps the shard count, so "64 threads" on a 16-node machine
    // spawns at most 16 workers even with the clamp disabled.
    let out = Command::new(env!("CARGO_BIN_EXE_dirext"))
        .args([
            "run",
            "--app",
            "water",
            "--scale",
            "tiny",
            "--network",
            "hmesh64",
            "--sim-threads",
            "64",
        ])
        .env("DIREXT_SIM_THREADS_UNCLAMPED", "1")
        .output()
        .expect("failed to launch dirext");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("exceeds"), "clamp note must be suppressed: {err}");
}

#[test]
fn help_documents_sim_threads() {
    let help = stdout(&["help"]);
    assert!(help.contains("--sim-threads"), "help must mention --sim-threads");
    assert!(help.contains("windowed-parallel"), "{help}");
}

#[test]
fn sweep_with_sim_threads_matches_serial_csv() {
    let serial = stdout(&["fig2", "--scale", "tiny", "--app", "lu", "--csv"]);
    let windowed = stdout(&[
        "fig2",
        "--scale",
        "tiny",
        "--app",
        "lu",
        "--csv",
        "--sim-threads",
        "2",
    ]);
    assert_eq!(serial, windowed);
}

#[test]
fn node_fault_run_reports_crash_telemetry() {
    let t = stdout(&[
        "run",
        "--app",
        "water",
        "--scale",
        "tiny",
        "--procs",
        "8",
        "--protocol",
        "P+CW+M",
        "--node-fault-crashes",
        "2",
        "--json",
    ]);
    let v: serde_json::Value = serde_json::from_str(&t).expect("valid JSON");
    assert_eq!(v["node_crashes"].as_u64(), Some(2), "{t}");
    assert_eq!(v["node_recoveries"].as_u64(), Some(2), "{t}");
    assert!(v["crash_drops"].as_u64().unwrap() > 0, "{t}");
}

#[test]
fn node_fault_explicit_schedule_runs_and_is_seed_independent() {
    // An explicit schedule fixes the windows, so the seed flag is
    // rejected alongside it only via --node-fault-crashes; the schedule
    // itself must parse and drive the run.
    let t = stdout(&[
        "run",
        "--app",
        "water",
        "--scale",
        "tiny",
        "--procs",
        "8",
        "--node-fault-schedule",
        "3@2000-6000",
        "--node-fault-detect",
        "300",
        "--json",
    ]);
    let v: serde_json::Value = serde_json::from_str(&t).expect("valid JSON");
    assert_eq!(v["node_crashes"].as_u64(), Some(1), "{t}");
    assert_eq!(v["node_recoveries"].as_u64(), Some(1), "{t}");
}

#[test]
fn node_fault_run_is_identical_across_sim_threads() {
    // Acceptance criterion: a seeded crash schedule is bit-identical
    // between the serial and windowed-parallel engines.
    let base = &[
        "run",
        "--app",
        "mp3d",
        "--scale",
        "tiny",
        "--procs",
        "8",
        "--network",
        "hmesh64",
        "--protocol",
        "P+CW+M",
        "--node-fault-crashes",
        "3",
        "--json",
    ][..];
    let serial = stdout(base);
    let windowed = stdout(&[base, &["--sim-threads", "4"]].concat());
    assert_eq!(serial, windowed);
    let v: serde_json::Value = serde_json::from_str(&serial).expect("valid JSON");
    assert!(v["node_crashes"].as_u64().unwrap() >= 1, "{serial}");
}

#[test]
fn node_fault_flag_misuse_is_a_clean_parse_error() {
    for (args, needle) in [
        (
            &["run", "--node-fault-crashes", "0"][..],
            "must be at least 1",
        ),
        (
            &[
                "run",
                "--node-fault-crashes",
                "2",
                "--node-fault-schedule",
                "1@100-900",
            ][..],
            "conflicts",
        ),
        (
            &["run", "--node-fault-seed", "7"][..],
            "only applies with --node-fault-crashes",
        ),
        (
            &["fig2", "--node-fault-crashes", "2"][..],
            "applies to run, trace, stress and degrade",
        ),
        (
            &["degrade", "--node-fault-crashes", "2"][..],
            "sweeps the crash-count axis itself",
        ),
        (
            &["run", "--node-fault-schedule", "3@2000"][..],
            "expected NODE@CRASH-RECOVER",
        ),
        (
            &["run", "--node-fault-schedule", "3@9000-2000"][..],
            "must come after the crash",
        ),
        (
            &["run", "--procs", "4", "--node-fault-schedule", "9@2000-9000"][..],
            "4 processors",
        ),
    ] {
        let out = dirext(args);
        assert!(!out.status.success(), "dirext {args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "dirext {args:?}: {err}");
        assert!(!err.contains("panicked"), "must not panic: {err}");
    }
}

#[test]
fn degrade_command_prints_the_crash_axis() {
    let t = stdout(&[
        "degrade",
        "--app",
        "water",
        "--scale",
        "tiny",
        "--procs",
        "8",
    ]);
    assert!(t.contains("Graceful degradation"), "{t}");
    for col in ["crashes", "recovered", "purged", "lost-blocks"] {
        assert!(t.contains(col), "missing column {col}: {t}");
    }
    // The axis rows: the crash-free baseline plus the faulted levels.
    for level in ["0", "1", "2", "4"] {
        assert!(
            t.lines().any(|l| l.trim_start().starts_with(level)),
            "missing crash level {level}: {t}"
        );
    }
}

#[test]
fn help_documents_node_fault_injection() {
    let help = stdout(&["help"]);
    for flag in [
        "--node-fault-crashes",
        "--node-fault-schedule",
        "--node-fault-seed",
        "--node-fault-detect",
        "degrade",
    ] {
        assert!(help.contains(flag), "help must mention {flag}");
    }
}
