//! End-to-end tests of fleet mode, `assemble`, and the result server —
//! the multi-process half of the fault-tolerance story, driven through
//! the real binary so process death (kill -9) and socket behavior are
//! tested for real.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dirext"))
}

fn dirext(args: &[&str]) -> Output {
    bin().args(args).output().expect("failed to launch dirext")
}

fn stdout_ok(args: &[&str]) -> String {
    let out = dirext(args);
    assert!(
        out.status.success(),
        "dirext {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dirext-fleet-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

/// Polls `cond` every 50 ms for up to `secs` seconds.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

// ---------------------------------------------------------------------
// Fleet mode: kill -9 failover and assemble
// ---------------------------------------------------------------------

#[test]
fn fleet_survives_kill9_and_assemble_matches_serial() {
    let serial = stdout_ok(&["fig2", "--scale", "tiny", "--jobs", "1"]);
    let dir = tmp("kill9");
    let dir_s = dir.to_str().expect("utf8 dir");

    // A victim worker that claims a cell, then stalls 30 s inside it (the
    // DIREXT_FLEET_SLOW_MS hook) — plenty of window to SIGKILL it while
    // it holds a lease.
    let mut victim: Child = bin()
        .args([
            "fig2",
            "--scale",
            "tiny",
            "--fleet",
            dir_s,
            "--worker-id",
            "victim",
            "--lease-ms",
            "600",
            "--heartbeat-ms",
            "100",
        ])
        .env("DIREXT_FLEET_SLOW_MS", "30000")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    let claimed = wait_for(10, || {
        std::fs::read_to_string(dir.join("leases.jsonl"))
            .is_ok_and(|t| t.contains("\"op\":\"claim\"") && t.contains("\"worker\":\"victim\""))
    });
    assert!(claimed, "victim must claim a cell before the kill");
    victim.kill().expect("kill -9 victim"); // SIGKILL: no cleanup, no release
    victim.wait().expect("reap victim");

    // Two survivors finish the sweep: the victim's cell comes back via
    // lease expiry (600 ms after its last heartbeat) with a higher fence.
    let survivors: Vec<Child> = ["s1", "s2"]
        .iter()
        .map(|id| {
            bin()
                .args([
                    "fig2",
                    "--scale",
                    "tiny",
                    "--fleet",
                    dir_s,
                    "--worker-id",
                    id,
                    "--lease-ms",
                    "600",
                    "--heartbeat-ms",
                    "100",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn survivor")
        })
        .collect();
    for s in survivors {
        let out = s.wait_with_output().expect("survivor output");
        assert!(out.status.success(), "survivor exits 0");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            serial,
            "survivor renders the serial bytes"
        );
    }

    // The lease log shows the failover: a claim on the victim's cell with
    // a fence above the victim's.
    let leases = std::fs::read_to_string(dir.join("leases.jsonl")).expect("lease log");
    let victim_key = leases
        .lines()
        .find(|l| l.contains("\"op\":\"claim\"") && l.contains("\"worker\":\"victim\""))
        .and_then(|l| l.split("\"key\":\"").nth(1))
        .and_then(|r| r.split('"').next())
        .expect("victim's claimed key")
        .to_owned();
    assert!(
        leases.lines().any(|l| {
            l.contains("\"op\":\"claim\"")
                && l.contains(&victim_key)
                && !l.contains("\"worker\":\"victim\"")
                && !l.contains("\"fence\":1,")
        }),
        "a survivor reclaimed {victim_key} with a higher fence"
    );

    // assemble folds the worker journals and replays byte-identically.
    let assembled = stdout_ok(&["assemble", "fig2", "--scale", "tiny", "--fleet", dir_s]);
    assert_eq!(
        assembled, serial,
        "assemble output is byte-identical to the serial run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn assemble_refuses_incomplete_journals_unless_keep_going() {
    let dir = tmp("incomplete");
    let dir_s = dir.to_str().expect("utf8 dir");
    // One worker sweeps only Water: 8 of the 40 fig2 cells.
    let partial = dirext(&[
        "fig2",
        "--scale",
        "tiny",
        "--app",
        "water",
        "--fleet",
        dir_s,
        "--worker-id",
        "w0",
    ]);
    assert!(partial.status.success());

    let refused = dirext(&["assemble", "fig2", "--scale", "tiny", "--fleet", dir_s]);
    assert!(!refused.status.success(), "incomplete journal must refuse");
    assert_eq!(refused.status.code(), Some(1));
    let err = String::from_utf8_lossy(&refused.stderr);
    assert!(err.contains("cell(s) missing"), "names the gap: {err}");
    assert!(
        err.contains("--keep-going"),
        "points at the escape hatch: {err}"
    );

    // Restricted to the swept app, the same journal is complete.
    let water = stdout_ok(&[
        "assemble", "fig2", "--scale", "tiny", "--app", "water", "--fleet", dir_s,
    ]);
    let serial_water = stdout_ok(&["fig2", "--scale", "tiny", "--app", "water", "--jobs", "1"]);
    assert_eq!(water, serial_water);

    // --keep-going computes the 32 gaps locally instead of refusing.
    let kept = dirext(&[
        "assemble",
        "fig2",
        "--scale",
        "tiny",
        "--fleet",
        dir_s,
        "--keep-going",
    ]);
    assert!(
        kept.status.success(),
        "{}",
        String::from_utf8_lossy(&kept.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&kept.stdout),
        stdout_ok(&["fig2", "--scale", "tiny", "--jobs", "1"])
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_flag_validation_is_actionable_at_parse_time() {
    let dir = tmp("validation");
    let dir_s = dir.to_str().expect("utf8 dir");
    for (args, needle) in [
        (
            vec!["fig2", "--fleet", dir_s, "--lease-ms", "50"],
            "outside [200, 600000]",
        ),
        (
            vec![
                "fig2",
                "--fleet",
                dir_s,
                "--heartbeat-ms",
                "10",
                "--lease-ms",
                "500",
            ],
            "below the 20 ms minimum",
        ),
        (
            vec![
                "fig2",
                "--fleet",
                dir_s,
                "--lease-ms",
                "600",
                "--heartbeat-ms",
                "400",
            ],
            "at least 3x per lifetime",
        ),
        (
            vec!["fig2", "--fleet", dir_s, "--worker-id", "bad/id"],
            "path separators",
        ),
        (vec!["fig2", "--lease-ms", "500"], "add --fleet DIR"),
        (
            vec!["fig2", "--fleet", dir_s, "--journal", "j.jsonl"],
            "--journal conflicts with --fleet",
        ),
    ] {
        let out = dirext(&args);
        assert!(!out.status.success(), "{args:?} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(needle),
            "{args:?}: expected {needle:?} in: {err}"
        );
    }
    // Parse-time means the fleet directory was never touched.
    assert!(
        !dir.exists(),
        "rejected flags must not create {}",
        dir.display()
    );
}

#[test]
fn pending_journal_write_error_fails_the_exit_code() {
    // "early": the error is pending when the sweep starts; run_cells
    // surfaces it as a journal failure.
    let j1 = tmp("chaos-early.jsonl");
    let early = bin()
        .args(["fig2", "--scale", "tiny", "--app", "water"])
        .arg("--journal")
        .arg(&j1)
        .env("DIREXT_CHAOS_JOURNAL_ERROR", "early")
        .output()
        .expect("run early");
    assert_eq!(early.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&early.stderr).contains("journal"),
        "early write error surfaces"
    );

    // "late": the sweep itself succeeds, but a write error is pending at
    // exit — the run must still fail rather than hand --resume a journal
    // that silently lost cells.
    let j2 = tmp("chaos-late.jsonl");
    let late = bin()
        .args(["fig2", "--scale", "tiny", "--app", "water"])
        .arg("--journal")
        .arg(&j2)
        .env("DIREXT_CHAOS_JOURNAL_ERROR", "late")
        .output()
        .expect("run late");
    assert_eq!(
        late.status.code(),
        Some(1),
        "clean sweep + pending write error = exit 1"
    );
    let err = String::from_utf8_lossy(&late.stderr);
    assert!(err.contains("journal write failure"), "{err}");
    assert!(err.contains("do not trust this journal"), "{err}");

    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j2);
}

// ---------------------------------------------------------------------
// Result server: overload shedding and timeouts
// ---------------------------------------------------------------------

#[cfg(unix)]
mod serve {
    use super::*;

    struct Daemon {
        child: Child,
        socket: PathBuf,
    }

    impl Daemon {
        /// Starts `dirext serve` and waits until it answers a stats query.
        fn start(name: &str, journal: &PathBuf, extra: &[&str], slow_ms: u64) -> Daemon {
            let socket = tmp(&format!("{name}.sock"));
            let mut cmd = bin();
            cmd.args(["serve", "--socket"])
                .arg(&socket)
                .arg("--journal")
                .arg(journal)
                .args(extra)
                .stdout(Stdio::null())
                .stderr(Stdio::null());
            if slow_ms > 0 {
                cmd.env("DIREXT_SERVE_SLOW_MS", slow_ms.to_string());
            }
            let child = cmd.spawn().expect("spawn serve");
            let d = Daemon { child, socket };
            assert!(
                wait_for(10, || d.query(&["--stats"]).status.success()),
                "serve must come up within 10 s"
            );
            d
        }

        fn query(&self, args: &[&str]) -> Output {
            let mut cmd = bin();
            cmd.args(["query", "--socket"]).arg(&self.socket).args(args);
            cmd.output().expect("run query")
        }

        /// Graceful SIGINT shutdown; asserts exit 0 and socket cleanup.
        fn stop(mut self) {
            let ok = Command::new("kill")
                .args(["-INT", &self.child.id().to_string()])
                .status()
                .map(|s| s.success())
                .unwrap_or(false);
            if !ok {
                self.child.kill().expect("fallback kill");
            }
            let status = self.child.wait().expect("reap serve");
            if ok {
                assert!(status.success(), "serve exits 0 on SIGINT");
                assert!(!self.socket.exists(), "socket removed on shutdown");
            }
        }
    }

    fn status_of(out: &Output) -> String {
        let text = String::from_utf8_lossy(&out.stdout);
        text.split("\"status\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or("")
            .to_owned()
    }

    #[test]
    fn serve_sheds_load_with_busy_but_keeps_serving_hits() {
        let journal = tmp("serve-shed.jsonl");
        // One compute slot, each compute artificially slowed to 1.2 s.
        let d = Daemon::start("shed", &journal, &["--max-inflight", "1"], 1200);

        // Prime the cache (slow compute, but within the default timeout).
        let primed = d.query(&["--app", "water", "--procs", "4", "--scale", "tiny"]);
        assert!(primed.status.success());
        assert_eq!(status_of(&primed), "computed");

        // Saturate the single slot with a long-running miss...
        let slot_hog = {
            let mut cmd = bin();
            cmd.args(["query", "--socket"])
                .arg(&d.socket)
                .args(["--app", "lu", "--procs", "4", "--scale", "tiny"])
                .stdout(Stdio::piped())
                .stderr(Stdio::null());
            cmd.spawn().expect("spawn hog query")
        };
        assert!(
            wait_for(5, || status_of(&d.query(&["--stats"])) == "stats"
                && String::from_utf8_lossy(&d.query(&["--stats"]).stdout)
                    .contains("\"inflight\":1")),
            "the hog request must occupy the compute slot"
        );

        // ...a second miss is shed with an explicit busy response and the
        // documented retry exit code...
        let shed = d.query(&["--app", "mp3d", "--procs", "4", "--scale", "tiny"]);
        assert_eq!(status_of(&shed), "busy");
        assert_eq!(
            shed.status.code(),
            Some(3),
            "busy means exit 3 (retry later)"
        );

        // ...while the primed cell is still served from cache.
        let hit = d.query(&["--app", "water", "--procs", "4", "--scale", "tiny"]);
        assert!(hit.status.success());
        assert_eq!(status_of(&hit), "hit");

        // The hog completes normally once its compute finishes.
        let hog_out = slot_hog.wait_with_output().expect("hog output");
        assert!(hog_out.status.success());

        // Stats reflect the whole story.
        let stats = String::from_utf8_lossy(&d.query(&["--stats"]).stdout).into_owned();
        assert!(stats.contains("\"busy\":1"), "{stats}");
        assert!(stats.contains("\"hits\":1"), "{stats}");

        d.stop();
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn serve_timeout_frees_the_client_and_retry_hits() {
        let journal = tmp("serve-timeout.jsonl");
        let d = Daemon::start("timeout", &journal, &["--request-timeout-ms", "200"], 900);

        let timed_out = d.query(&["--app", "cholesky", "--procs", "4", "--scale", "tiny"]);
        assert_eq!(status_of(&timed_out), "timeout");
        assert_eq!(timed_out.status.code(), Some(3));

        // The compute finished in the background and was journaled: the
        // retry is a cache hit (which never sleeps, so it beats the
        // 200 ms timeout despite the 900 ms slow hook).
        assert!(
            wait_for(10, || {
                let retry = d.query(&["--app", "cholesky", "--procs", "4", "--scale", "tiny"]);
                status_of(&retry) == "hit" && retry.status.success()
            }),
            "the timed-out compute must land in the cache"
        );

        d.stop();
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn serve_answers_from_an_assembled_fleet_journal() {
        // A fleet sweep doubles as a pre-warmed cache: fig2 cells answer
        // matching serve queries via the config-suffix lookup.
        let dir = tmp("serve-fleet");
        let dir_s = dir.to_str().expect("utf8 dir");
        assert!(dirext(&[
            "fig2",
            "--scale",
            "tiny",
            "--app",
            "water",
            "--fleet",
            dir_s,
            "--worker-id",
            "w0",
        ])
        .status
        .success());

        let socket = tmp("serve-fleet.sock");
        let child = bin()
            .args(["serve", "--socket"])
            .arg(&socket)
            .args(["--fleet", dir_s])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve");
        let d = Daemon { child, socket };
        assert!(wait_for(10, || d.query(&["--stats"]).status.success()));

        // fig2 runs at 16 procs by default; the matching query is a hit
        // without any compute.
        let hit = d.query(&[
            "--app",
            "water",
            "--procs",
            "16",
            "--scale",
            "tiny",
            "--protocol",
            "P+CW+M",
        ]);
        assert!(
            hit.status.success(),
            "{}",
            String::from_utf8_lossy(&hit.stderr)
        );
        assert_eq!(status_of(&hit), "hit");
        assert!(
            String::from_utf8_lossy(&hit.stdout).contains("\"served_from\":\"fig2/"),
            "cross-driver hits name their source cell"
        );

        d.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_without_daemon_is_an_actionable_error() {
        let socket = tmp("no-daemon.sock");
        let mut cmd = bin();
        cmd.args(["query", "--socket"])
            .arg(&socket)
            .args(["--app", "water"]);
        let out = cmd.output().expect("run query");
        assert_eq!(out.status.code(), Some(1));
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("is `dirext serve"),
            "hints at starting the daemon"
        );
    }
}
