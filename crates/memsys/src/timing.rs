//! The paper's latency and capacity parameters.

use dirext_kernel::Time;

/// Latency and sizing parameters of one processing node (paper Section 4).
///
/// All latencies are in pclocks (10 ns at the paper's 100 MHz):
///
/// * FLC access 1 pclock, FLC block fill 3 pclocks;
/// * SLC access 6 pclocks (30 ns SRAM);
/// * memory module 24 pclocks, local bus 3 pclocks per transfer — a local
///   memory access is therefore bus + memory + bus = 30 pclocks end-to-end;
/// * FLWB of 8 entries and SLWB of 16 entries under release consistency
///   (single entries under sequential consistency — applied by the machine
///   builder, not here).
///
/// # Example
///
/// ```
/// use dirext_memsys::Timing;
///
/// let t = Timing::paper_default();
/// assert_eq!(t.local_mem_round_trip().cycles(), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    /// FLC hit latency.
    pub flc_hit: Time,
    /// FLC block fill after the SLC returns data.
    pub flc_fill: Time,
    /// SLC access (hit detection or line read/write occupancy).
    pub slc_access: Time,
    /// Memory-module access (fully interleaved, so no bank contention).
    pub mem_access: Time,
    /// One transfer over the local 256-bit split-transaction bus
    /// (a 32-byte block is one bus width).
    pub bus_transfer: Time,
    /// Directory state lookup/update at the home node (overlapped with the
    /// memory access in real designs; kept separate and small).
    pub dir_access: Time,
    /// FLWB capacity (entries).
    pub flwb_entries: usize,
    /// SLWB capacity (entries).
    pub slwb_entries: usize,
    /// FLC size in bytes.
    pub flc_bytes: u64,
    /// SLC size in bytes; `None` means infinite (the paper's default).
    pub slc_bytes: Option<u64>,
    /// Write-cache capacity in blocks (CW extension; 4 in the paper).
    pub write_cache_blocks: usize,
}

impl Timing {
    /// The paper's baseline parameters.
    pub fn paper_default() -> Self {
        Timing {
            flc_hit: Time::from_cycles(1),
            flc_fill: Time::from_cycles(3),
            slc_access: Time::from_cycles(6),
            mem_access: Time::from_cycles(24),
            bus_transfer: Time::from_cycles(3),
            dir_access: Time::from_cycles(0),
            flwb_entries: 8,
            slwb_entries: 16,
            flc_bytes: 4 * 1024,
            slc_bytes: None,
            write_cache_blocks: 4,
        }
    }

    /// End-to-end latency of a local memory access (bus + memory + bus):
    /// 30 pclocks with the paper's numbers.
    pub fn local_mem_round_trip(&self) -> Time {
        self.bus_transfer + self.mem_access + self.bus_transfer
    }

    /// The Section 5.4 sensitivity variant: 4-entry FLWB and SLWB.
    pub fn with_small_buffers(mut self) -> Self {
        self.flwb_entries = 4;
        self.slwb_entries = 4;
        self
    }

    /// The Section 5.4 sensitivity variant: 16-KB direct-mapped SLC.
    pub fn with_limited_slc(mut self) -> Self {
        self.slc_bytes = Some(16 * 1024);
        self
    }
}

impl Default for Timing {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let t = Timing::paper_default();
        assert_eq!(t.flc_hit.cycles(), 1);
        assert_eq!(t.slc_access.cycles(), 6);
        assert_eq!(t.local_mem_round_trip().cycles(), 30);
        assert_eq!(t.flwb_entries, 8);
        assert_eq!(t.slwb_entries, 16);
        assert_eq!(t.slc_bytes, None);
    }

    #[test]
    fn sensitivity_variants() {
        let t = Timing::paper_default().with_small_buffers();
        assert_eq!((t.flwb_entries, t.slwb_entries), (4, 4));
        let t = Timing::paper_default().with_limited_slc();
        assert_eq!(t.slc_bytes, Some(16 * 1024));
    }
}
