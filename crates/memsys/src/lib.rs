//! The per-node memory subsystem of the `dirext` machine.
//!
//! Each processing node in the paper's baseline architecture (its Figure 1)
//! contains:
//!
//! * a **first-level cache** (FLC): 4 KB, direct-mapped, write-through, no
//!   allocation on write misses, blocking on read misses ([`Flc`]);
//! * a **first-level write buffer** (FLWB) buffering writes and read-miss
//!   requests in FIFO order ([`Fifo`]);
//! * a **second-level cache** (SLC): direct-mapped, write-back, lockup-free,
//!   maintaining inclusion of the FLC ([`Slc`] — generic over the protocol
//!   line state, which lives in `dirext-core`);
//! * a **second-level write buffer** (SLWB) holding pending requests
//!   (ownership requests, prefetches, updates) — modelled in the protocol
//!   layer with capacity enforced by [`Fifo`]-style accounting;
//! * for the CW extension, a small **write cache** that combines writes to
//!   the same block before they are issued ([`WriteCache`]).
//!
//! [`Timing`] collects the paper's latency parameters (Section 4).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fifo;
mod flc;
mod slc;
mod timing;
mod write_cache;

pub use fifo::Fifo;
pub use flc::{Flc, FlcArray};
pub use slc::{Slc, SlcGeometry};
pub use timing::Timing;
pub use write_cache::{WcEntry, WriteCache};
