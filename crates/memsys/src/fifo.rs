//! Bounded FIFO buffers (FLWB/SLWB capacity model).

use std::collections::VecDeque;

/// A bounded first-in-first-out buffer.
///
/// The write buffers in each node are FIFO queues of fixed depth; when a
/// buffer fills, the producer (ultimately the processor) stalls. `push`
/// therefore reports rejection instead of growing.
///
/// # Example
///
/// ```
/// use dirext_memsys::Fifo;
///
/// let mut wb: Fifo<u32> = Fifo::new(2);
/// assert!(wb.push(1).is_ok());
/// assert!(wb.push(2).is_ok());
/// assert_eq!(wb.push(3), Err(3)); // full: the value comes back
/// assert_eq!(wb.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "a zero-capacity buffer would deadlock the machine"
        );
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends an item, or returns it back if the buffer is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when at capacity.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() == self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates oldest-first with mutable access.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Removes the first item matching `pred`, preserving order of the rest.
    pub fn remove_first<F: FnMut(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        let pos = self.items.iter().position(pred)?;
        self.items.remove(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = Fifo::new(3);
        f.push('a').unwrap();
        f.push('b').unwrap();
        f.push('c').unwrap();
        assert!(f.is_full());
        assert_eq!(f.pop(), Some('a'));
        f.push('d').unwrap();
        let rest: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(rest, vec!['b', 'c', 'd']);
    }

    #[test]
    fn rejects_when_full() {
        let mut f = Fifo::new(1);
        f.push(10).unwrap();
        assert_eq!(f.push(11), Err(11));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn front_access() {
        let mut f = Fifo::new(2);
        assert!(f.front().is_none());
        f.push(5).unwrap();
        f.push(6).unwrap();
        assert_eq!(f.front(), Some(&5));
        *f.front_mut().unwrap() = 50;
        assert_eq!(f.pop(), Some(50));
    }

    #[test]
    fn remove_first_preserves_order() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.remove_first(|&x| x == 2), Some(2));
        let rest: Vec<_> = f.iter().copied().collect();
        assert_eq!(rest, vec![0, 1, 3]);
        assert_eq!(f.remove_first(|&x| x == 9), None);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
