//! First-level cache: direct-mapped, write-through, no write allocation.

use dirext_trace::{BlockAddr, BLOCK_BYTES};

/// The first-level cache (FLC).
///
/// The paper's FLC is a 4-KB direct-mapped write-through cache with 32-byte
/// blocks, no allocation on write misses, and blocking read misses. It must
/// "respond to all processor accesses and be fast and simple", so it is a
/// pure tag array here — data correctness is carried by the SLC/protocol
/// layer, and SLC inclusion means every FLC-valid block is SLC-valid.
///
/// # Example
///
/// ```
/// use dirext_memsys::Flc;
/// use dirext_trace::BlockAddr;
///
/// let mut flc = Flc::new(4 * 1024);
/// let b = BlockAddr::from_index(5);
/// assert!(!flc.probe(b));
/// flc.fill(b);
/// assert!(flc.probe(b));
/// ```
#[derive(Debug, Clone)]
pub struct Flc {
    tags: Vec<Option<BlockAddr>>,
    hits: u64,
    misses: u64,
}

impl Flc {
    /// Creates an FLC of `bytes` capacity (32-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of the block size.
    pub fn new(bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(BLOCK_BYTES),
            "FLC size must be a multiple of 32 B"
        );
        let lines = (bytes / BLOCK_BYTES) as usize;
        Flc {
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.tags.len() as u64) as usize
    }

    /// Looks up `block`, recording a hit or miss.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        let hit = self.probe(block);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Whether `block` is present (no statistics side effects).
    pub fn probe(&self, block: BlockAddr) -> bool {
        self.tags[self.set_of(block)] == Some(block)
    }

    /// Installs `block` (after an SLC fill), returning any evicted block so
    /// the caller can maintain bookkeeping.
    pub fn fill(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let set = self.set_of(block);
        let evicted = match self.tags[set] {
            Some(old) if old != block => Some(old),
            _ => None,
        };
        self.tags[set] = Some(block);
        evicted
    }

    /// Invalidates `block` if present (SLC inclusion: called whenever the
    /// SLC loses or rewrites a block). Returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if self.tags[set] == Some(block) {
            self.tags[set] = None;
            true
        } else {
            false
        }
    }

    /// Hits recorded by [`Flc::access`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`Flc::access`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Iterates over the resident blocks (for the machine's inclusion
    /// audit: every FLC-valid block must be SLC-valid).
    pub fn resident(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.tags.iter().filter_map(|t| *t)
    }
}

/// All nodes' first-level caches as one structure-of-arrays.
///
/// Semantically `N` independent [`Flc`]s, laid out as flat node-major
/// parallel arrays: one contiguous tag column plus per-node hit/miss
/// counter columns. The simulator's dispatch loop probes a tag on every
/// FLC-hit read, so the column layout keeps the whole machine's tags in a
/// few cache lines per node and replaces the scalar version's `%` set
/// indexing with a mask when the line count is a power of two (it always
/// is for the paper's 4-KB / 32-B geometry). [`Flc`] stays as the
/// reference implementation and differential-test oracle.
#[derive(Debug, Clone)]
pub struct FlcArray {
    /// Node-major tags: `tags[node * lines + set]`.
    tags: Vec<Option<BlockAddr>>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    lines: usize,
    /// `lines - 1` when `lines` is a power of two, else 0 (modulo path).
    mask: u64,
}

impl FlcArray {
    /// Creates `nodes` FLCs of `bytes` capacity each (32-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of the block size.
    pub fn new(nodes: usize, bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(BLOCK_BYTES),
            "FLC size must be a multiple of 32 B"
        );
        let lines = (bytes / BLOCK_BYTES) as usize;
        FlcArray {
            tags: vec![None; nodes * lines],
            hits: vec![0; nodes],
            misses: vec![0; nodes],
            lines,
            mask: if lines.is_power_of_two() {
                lines as u64 - 1
            } else {
                0
            },
        }
    }

    #[inline]
    fn slot(&self, node: usize, block: BlockAddr) -> usize {
        let set = if self.mask != 0 {
            (block.index() & self.mask) as usize
        } else {
            (block.index() % self.lines as u64) as usize
        };
        node * self.lines + set
    }

    /// Looks up `block` in `node`'s FLC, recording a hit or miss.
    #[inline]
    pub fn access(&mut self, node: usize, block: BlockAddr) -> bool {
        let hit = self.probe(node, block);
        if hit {
            self.hits[node] += 1;
        } else {
            self.misses[node] += 1;
        }
        hit
    }

    /// Whether `block` is present in `node`'s FLC (no statistics effects).
    #[inline]
    pub fn probe(&self, node: usize, block: BlockAddr) -> bool {
        self.tags[self.slot(node, block)] == Some(block)
    }

    /// Installs `block` in `node`'s FLC, returning any evicted block.
    pub fn fill(&mut self, node: usize, block: BlockAddr) -> Option<BlockAddr> {
        let slot = self.slot(node, block);
        let evicted = match self.tags[slot] {
            Some(old) if old != block => Some(old),
            _ => None,
        };
        self.tags[slot] = Some(block);
        evicted
    }

    /// Invalidates `block` in `node`'s FLC if present (SLC inclusion).
    /// Returns whether it was present.
    pub fn invalidate(&mut self, node: usize, block: BlockAddr) -> bool {
        let slot = self.slot(node, block);
        if self.tags[slot] == Some(block) {
            self.tags[slot] = None;
            true
        } else {
            false
        }
    }

    /// Hits recorded by [`FlcArray::access`] for `node`.
    pub fn hits(&self, node: usize) -> u64 {
        self.hits[node]
    }

    /// Misses recorded by [`FlcArray::access`] for `node`.
    pub fn misses(&self, node: usize) -> u64 {
        self.misses[node]
    }

    /// Lines per node.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Iterates over `node`'s resident blocks (for the machine's inclusion
    /// audit: every FLC-valid block must be SLC-valid).
    pub fn resident(&self, node: usize) -> impl Iterator<Item = BlockAddr> + '_ {
        self.tags[node * self.lines..(node + 1) * self.lines]
            .iter()
            .filter_map(|t| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn paper_flc_has_128_lines() {
        assert_eq!(Flc::new(4 * 1024).lines(), 128);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut flc = Flc::new(4 * 1024);
        flc.fill(b(0));
        assert!(flc.probe(b(0)));
        // Block 128 maps to the same set and evicts block 0.
        assert_eq!(flc.fill(b(128)), Some(b(0)));
        assert!(!flc.probe(b(0)));
        assert!(flc.probe(b(128)));
    }

    #[test]
    fn refill_same_block_evicts_nothing() {
        let mut flc = Flc::new(4 * 1024);
        flc.fill(b(7));
        assert_eq!(flc.fill(b(7)), None);
    }

    #[test]
    fn invalidation_for_inclusion() {
        let mut flc = Flc::new(4 * 1024);
        flc.fill(b(42));
        assert!(flc.invalidate(b(42)));
        assert!(!flc.probe(b(42)));
        assert!(!flc.invalidate(b(42)));
        // Invalidating an aliasing block must not clobber a different tag.
        flc.fill(b(42));
        assert!(!flc.invalidate(b(42 + 128)));
        assert!(flc.probe(b(42)));
    }

    #[test]
    fn hit_miss_accounting() {
        let mut flc = Flc::new(4 * 1024);
        assert!(!flc.access(b(3)));
        flc.fill(b(3));
        assert!(flc.access(b(3)));
        assert_eq!((flc.hits(), flc.misses()), (1, 1));
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn bad_size_panics() {
        let _ = Flc::new(100);
    }

    mod differential {
        //! Pins [`FlcArray`]'s structure-of-arrays layout against the
        //! scalar [`Flc`] oracle: any interleaved op sequence over any node
        //! must produce identical results, statistics and resident sets —
        //! including non-power-of-two line counts, where the array takes
        //! the modulo (rather than mask) set-index path.

        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Op {
            Access(u64),
            Probe(u64),
            Fill(u64),
            Invalidate(u64),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            // Block indices cluster within a few multiples of the line
            // count so conflicts and aliasing actually happen.
            let block = 0u64..1024;
            prop_oneof![
                block.clone().prop_map(Op::Access),
                block.clone().prop_map(Op::Probe),
                block.clone().prop_map(Op::Fill),
                block.prop_map(Op::Invalidate),
            ]
        }

        proptest! {
            #[test]
            fn array_matches_scalar_oracle(
                nodes in 1usize..8,
                // 4 KB (the paper's 128 lines, power-of-two mask path) or
                // odd sizes like 3/5/7 blocks (modulo path).
                bytes in prop_oneof![
                    Just(4 * 1024u64),
                    (1u64..8).prop_map(|n| n * BLOCK_BYTES),
                ],
                ops in proptest::collection::vec((0usize..8, arb_op()), 1..200),
            ) {
                let mut array = FlcArray::new(nodes, bytes);
                let mut oracle: Vec<Flc> = (0..nodes).map(|_| Flc::new(bytes)).collect();
                prop_assert_eq!(array.lines(), oracle[0].lines());
                for (n, op) in ops {
                    let n = n % nodes;
                    match op {
                        Op::Access(i) => prop_assert_eq!(
                            array.access(n, b(i)),
                            oracle[n].access(b(i))
                        ),
                        Op::Probe(i) => prop_assert_eq!(
                            array.probe(n, b(i)),
                            oracle[n].probe(b(i))
                        ),
                        Op::Fill(i) => prop_assert_eq!(
                            array.fill(n, b(i)),
                            oracle[n].fill(b(i))
                        ),
                        Op::Invalidate(i) => prop_assert_eq!(
                            array.invalidate(n, b(i)),
                            oracle[n].invalidate(b(i))
                        ),
                    }
                }
                for (n, node_oracle) in oracle.iter().enumerate() {
                    prop_assert_eq!(array.hits(n), node_oracle.hits());
                    prop_assert_eq!(array.misses(n), node_oracle.misses());
                    let mut a: Vec<_> = array.resident(n).collect();
                    let mut o: Vec<_> = node_oracle.resident().collect();
                    a.sort_unstable();
                    o.sort_unstable();
                    prop_assert_eq!(a, o);
                }
            }
        }
    }
}
