//! First-level cache: direct-mapped, write-through, no write allocation.

use dirext_trace::{BlockAddr, BLOCK_BYTES};

/// The first-level cache (FLC).
///
/// The paper's FLC is a 4-KB direct-mapped write-through cache with 32-byte
/// blocks, no allocation on write misses, and blocking read misses. It must
/// "respond to all processor accesses and be fast and simple", so it is a
/// pure tag array here — data correctness is carried by the SLC/protocol
/// layer, and SLC inclusion means every FLC-valid block is SLC-valid.
///
/// # Example
///
/// ```
/// use dirext_memsys::Flc;
/// use dirext_trace::BlockAddr;
///
/// let mut flc = Flc::new(4 * 1024);
/// let b = BlockAddr::from_index(5);
/// assert!(!flc.probe(b));
/// flc.fill(b);
/// assert!(flc.probe(b));
/// ```
#[derive(Debug, Clone)]
pub struct Flc {
    tags: Vec<Option<BlockAddr>>,
    hits: u64,
    misses: u64,
}

impl Flc {
    /// Creates an FLC of `bytes` capacity (32-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of the block size.
    pub fn new(bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(BLOCK_BYTES),
            "FLC size must be a multiple of 32 B"
        );
        let lines = (bytes / BLOCK_BYTES) as usize;
        Flc {
            tags: vec![None; lines],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.tags.len() as u64) as usize
    }

    /// Looks up `block`, recording a hit or miss.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        let hit = self.probe(block);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Whether `block` is present (no statistics side effects).
    pub fn probe(&self, block: BlockAddr) -> bool {
        self.tags[self.set_of(block)] == Some(block)
    }

    /// Installs `block` (after an SLC fill), returning any evicted block so
    /// the caller can maintain bookkeeping.
    pub fn fill(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let set = self.set_of(block);
        let evicted = match self.tags[set] {
            Some(old) if old != block => Some(old),
            _ => None,
        };
        self.tags[set] = Some(block);
        evicted
    }

    /// Invalidates `block` if present (SLC inclusion: called whenever the
    /// SLC loses or rewrites a block). Returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if self.tags[set] == Some(block) {
            self.tags[set] = None;
            true
        } else {
            false
        }
    }

    /// Hits recorded by [`Flc::access`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`Flc::access`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Iterates over the resident blocks (for the machine's inclusion
    /// audit: every FLC-valid block must be SLC-valid).
    pub fn resident(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.tags.iter().filter_map(|t| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn paper_flc_has_128_lines() {
        assert_eq!(Flc::new(4 * 1024).lines(), 128);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut flc = Flc::new(4 * 1024);
        flc.fill(b(0));
        assert!(flc.probe(b(0)));
        // Block 128 maps to the same set and evicts block 0.
        assert_eq!(flc.fill(b(128)), Some(b(0)));
        assert!(!flc.probe(b(0)));
        assert!(flc.probe(b(128)));
    }

    #[test]
    fn refill_same_block_evicts_nothing() {
        let mut flc = Flc::new(4 * 1024);
        flc.fill(b(7));
        assert_eq!(flc.fill(b(7)), None);
    }

    #[test]
    fn invalidation_for_inclusion() {
        let mut flc = Flc::new(4 * 1024);
        flc.fill(b(42));
        assert!(flc.invalidate(b(42)));
        assert!(!flc.probe(b(42)));
        assert!(!flc.invalidate(b(42)));
        // Invalidating an aliasing block must not clobber a different tag.
        flc.fill(b(42));
        assert!(!flc.invalidate(b(42 + 128)));
        assert!(flc.probe(b(42)));
    }

    #[test]
    fn hit_miss_accounting() {
        let mut flc = Flc::new(4 * 1024);
        assert!(!flc.access(b(3)));
        flc.fill(b(3));
        assert!(flc.access(b(3)));
        assert_eq!((flc.hits(), flc.misses()), (1, 1));
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn bad_size_panics() {
        let _ = Flc::new(100);
    }
}
