//! Second-level cache storage, generic over the protocol's line state.

use dirext_core::blockmap::BlockMap;
use dirext_trace::{BlockAddr, BLOCK_BYTES};

/// Geometry of the second-level cache.
///
/// The paper's default SLC is *infinite* (to isolate protocol effects from
/// capacity effects); Section 5.4 re-runs the experiments with a 16-KB
/// direct-mapped SLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlcGeometry {
    /// No capacity limit; no replacements ever happen.
    Infinite,
    /// Direct-mapped with the given capacity in bytes (32-byte blocks).
    DirectMapped {
        /// Cache capacity in bytes.
        bytes: u64,
    },
}

impl SlcGeometry {
    /// Builds the geometry from an optional size (the [`crate::Timing`]
    /// convention: `None` = infinite).
    pub fn from_bytes(bytes: Option<u64>) -> Self {
        match bytes {
            None => SlcGeometry::Infinite,
            Some(b) => SlcGeometry::DirectMapped { bytes: b },
        }
    }
}

/// Second-level cache storage: a map from block address to a protocol line
/// state `L`, with direct-mapped replacement when finite.
///
/// The SLC "incorporates most of the mechanisms to support each protocol
/// extension", so the per-line state `L` is defined by the protocol crate
/// (state, version, prefetch bits, competitive counter, ...). This type owns
/// placement/replacement only.
///
/// # Example
///
/// ```
/// use dirext_memsys::{Slc, SlcGeometry};
/// use dirext_trace::BlockAddr;
///
/// let mut slc: Slc<&str> = Slc::new(SlcGeometry::Infinite);
/// let b = BlockAddr::from_index(9);
/// assert!(slc.insert(b, "shared").is_none());
/// assert_eq!(slc.get(b), Some(&"shared"));
/// ```
#[derive(Debug, Clone)]
pub struct Slc<L> {
    storage: Storage<L>,
}

#[derive(Debug, Clone)]
enum Storage<L> {
    /// Dense block-indexed arena: an infinite SLC holds every block the
    /// node ever touched, so lookups here are on the per-reference hot
    /// path and hashing would dominate.
    Infinite(BlockMap<L>),
    DirectMapped {
        sets: Vec<Option<(BlockAddr, L)>>,
    },
}

impl<L> Slc<L> {
    /// Creates an empty SLC.
    ///
    /// # Panics
    ///
    /// Panics if a direct-mapped geometry is not a positive multiple of the
    /// block size.
    pub fn new(geometry: SlcGeometry) -> Self {
        let storage = match geometry {
            SlcGeometry::Infinite => Storage::Infinite(BlockMap::new()),
            SlcGeometry::DirectMapped { bytes } => {
                assert!(
                    bytes > 0 && bytes % BLOCK_BYTES == 0,
                    "SLC size must be a multiple of 32 B"
                );
                let lines = (bytes / BLOCK_BYTES) as usize;
                Storage::DirectMapped {
                    sets: std::iter::repeat_with(|| None).take(lines).collect(),
                }
            }
        };
        Slc { storage }
    }

    fn set_of(sets_len: usize, block: BlockAddr) -> usize {
        (block.index() % sets_len as u64) as usize
    }

    /// The line for `block`, if cached.
    pub fn get(&self, block: BlockAddr) -> Option<&L> {
        match &self.storage {
            Storage::Infinite(map) => map.get(block),
            Storage::DirectMapped { sets } => match &sets[Self::set_of(sets.len(), block)] {
                Some((tag, line)) if *tag == block => Some(line),
                _ => None,
            },
        }
    }

    /// Mutable access to the line for `block`, if cached.
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut L> {
        match &mut self.storage {
            Storage::Infinite(map) => map.get_mut(block),
            Storage::DirectMapped { sets } => {
                let idx = Self::set_of(sets.len(), block);
                match &mut sets[idx] {
                    Some((tag, line)) if *tag == block => Some(line),
                    _ => None,
                }
            }
        }
    }

    /// Installs a line for `block`, returning the victim `(block, line)` if
    /// a different block had to be evicted (direct-mapped conflict).
    ///
    /// Inserting over the same block replaces its line without a victim.
    pub fn insert(&mut self, block: BlockAddr, line: L) -> Option<(BlockAddr, L)> {
        match &mut self.storage {
            Storage::Infinite(map) => {
                map.insert(block, line);
                None
            }
            Storage::DirectMapped { sets } => {
                let idx = Self::set_of(sets.len(), block);
                let old = sets[idx].take();
                sets[idx] = Some((block, line));
                match old {
                    Some((tag, l)) if tag != block => Some((tag, l)),
                    _ => None,
                }
            }
        }
    }

    /// Removes and returns the line for `block`.
    pub fn remove(&mut self, block: BlockAddr) -> Option<L> {
        match &mut self.storage {
            Storage::Infinite(map) => map.remove(block),
            Storage::DirectMapped { sets } => {
                let idx = Self::set_of(sets.len(), block);
                match &sets[idx] {
                    Some((tag, _)) if *tag == block => sets[idx].take().map(|(_, l)| l),
                    _ => None,
                }
            }
        }
    }

    /// Whether `block` is present.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.get(block).is_some()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Infinite(map) => map.len(),
            Storage::DirectMapped { sets } => sets.iter().filter(|s| s.is_some()).count(),
        }
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(block, line)` pairs. An infinite SLC iterates in
    /// ascending block order (deterministic for audits and diagnostics); a
    /// direct-mapped SLC iterates in set order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (BlockAddr, &L)> + '_> {
        match &self.storage {
            Storage::Infinite(map) => Box::new(map.iter()),
            Storage::DirectMapped { sets } => {
                Box::new(sets.iter().filter_map(|s| s.as_ref()).map(|(b, l)| (*b, l)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn infinite_never_evicts() {
        let mut slc: Slc<u32> = Slc::new(SlcGeometry::Infinite);
        for i in 0..10_000 {
            assert!(slc.insert(b(i), i as u32).is_none());
        }
        assert_eq!(slc.len(), 10_000);
        assert_eq!(slc.get(b(9_999)), Some(&9_999));
    }

    #[test]
    fn direct_mapped_evicts_conflicting_block() {
        // 16 KB = 512 lines.
        let mut slc: Slc<&str> = Slc::new(SlcGeometry::DirectMapped { bytes: 16 * 1024 });
        slc.insert(b(1), "one");
        let victim = slc.insert(b(1 + 512), "alias");
        assert_eq!(victim, Some((b(1), "one")));
        assert!(!slc.contains(b(1)));
        assert!(slc.contains(b(513)));
    }

    #[test]
    fn reinsert_same_block_is_replacement_not_eviction() {
        let mut slc: Slc<u8> = Slc::new(SlcGeometry::DirectMapped { bytes: 16 * 1024 });
        slc.insert(b(7), 1);
        assert_eq!(slc.insert(b(7), 2), None);
        assert_eq!(slc.get(b(7)), Some(&2));
    }

    #[test]
    fn remove_respects_tags() {
        let mut slc: Slc<u8> = Slc::new(SlcGeometry::DirectMapped { bytes: 16 * 1024 });
        slc.insert(b(3), 1);
        // Removing an aliasing block must not remove block 3.
        assert_eq!(slc.remove(b(3 + 512)), None);
        assert_eq!(slc.remove(b(3)), Some(1));
        assert!(slc.is_empty());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut slc: Slc<u32> = Slc::new(SlcGeometry::Infinite);
        slc.insert(b(0), 10);
        *slc.get_mut(b(0)).unwrap() += 5;
        assert_eq!(slc.get(b(0)), Some(&15));
        assert!(slc.get_mut(b(1)).is_none());
    }

    #[test]
    fn geometry_from_bytes() {
        assert_eq!(SlcGeometry::from_bytes(None), SlcGeometry::Infinite);
        assert_eq!(
            SlcGeometry::from_bytes(Some(16 * 1024)),
            SlcGeometry::DirectMapped { bytes: 16 * 1024 }
        );
    }

    #[test]
    fn iter_visits_resident_lines() {
        let mut slc: Slc<u8> = Slc::new(SlcGeometry::DirectMapped { bytes: 1024 });
        slc.insert(b(0), 1);
        slc.insert(b(5), 2);
        let mut blocks: Vec<u64> = slc.iter().map(|(blk, _)| blk.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 5]);
    }
}
