//! The write cache of the competitive-update extension.

use dirext_trace::{Addr, BlockAddr, WORDS_PER_BLOCK};

/// One write-cache block: which block it shadows and which words are dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcEntry {
    /// The shadowed cache block.
    pub block: BlockAddr,
    /// Per-word dirty bits (bit `i` = word `i` of the block modified).
    pub dirty_mask: u8,
}

impl WcEntry {
    /// Number of dirty words in this entry.
    pub fn dirty_words(&self) -> u32 {
        self.dirty_mask.count_ones()
    }
}

/// A small direct-mapped write cache (4 blocks in the paper) that allocates
/// on writes only and combines consecutive writes to the same block.
///
/// "Because consecutive writes to the same word are combined in the write
/// cache before being issued, the write traffic is reduced. This combining
/// is only possible under a relaxed memory consistency model." Flushing
/// happens at a release or when a block is victimized; the per-word dirty
/// bits let the home receive only the modified words in a single request.
///
/// # Example
///
/// ```
/// use dirext_memsys::WriteCache;
/// use dirext_trace::Addr;
///
/// let mut wc = WriteCache::new(4);
/// assert!(wc.write(Addr::new(0)).is_none()); // allocates, no victim
/// assert!(wc.write(Addr::new(4)).is_none()); // combines into same entry
/// let flushed = wc.flush_all();
/// assert_eq!(flushed.len(), 1);
/// assert_eq!(flushed[0].dirty_words(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCache {
    entries: Vec<Option<WcEntry>>,
    combined_writes: u64,
    allocations: u64,
}

impl WriteCache {
    /// Creates a write cache with `blocks` entries (4 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "write cache needs at least one block");
        WriteCache {
            entries: vec![None; blocks],
            combined_writes: 0,
            allocations: 0,
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() % self.entries.len() as u64) as usize
    }

    /// Records a write to `addr`.
    ///
    /// Returns the victim entry if a different block had to be evicted to
    /// make room (the victim's update must then be issued to the home node).
    pub fn write(&mut self, addr: Addr) -> Option<WcEntry> {
        let block = addr.block();
        let word_bit = 1u8 << addr.word_in_block();
        debug_assert!(addr.word_in_block() < WORDS_PER_BLOCK);
        let set = self.set_of(block);
        match self.entries[set] {
            Some(ref mut e) if e.block == block => {
                e.dirty_mask |= word_bit;
                self.combined_writes += 1;
                None
            }
            other => {
                self.entries[set] = Some(WcEntry {
                    block,
                    dirty_mask: word_bit,
                });
                self.allocations += 1;
                other
            }
        }
    }

    /// The entry shadowing `block`, if any (read hits in the write cache are
    /// serviced from here when the SLC misses).
    pub fn probe(&self, block: BlockAddr) -> Option<&WcEntry> {
        match &self.entries[self.set_of(block)] {
            Some(e) if e.block == block => Some(e),
            _ => None,
        }
    }

    /// Removes and returns the entry for `block` (e.g. when the block's
    /// update is being issued eagerly).
    pub fn take(&mut self, block: BlockAddr) -> Option<WcEntry> {
        let set = self.set_of(block);
        match &self.entries[set] {
            Some(e) if e.block == block => self.entries[set].take(),
            _ => None,
        }
    }

    /// Drains every entry (performed at a release: "the propagation of
    /// updates to a block in the write cache can wait until the write-cache
    /// block is replaced or until the release of a lock").
    pub fn flush_all(&mut self) -> Vec<WcEntry> {
        self.entries.iter_mut().filter_map(Option::take).collect()
    }

    /// Removes and returns the next resident entry in set order, or `None`
    /// when the cache is drained — the allocation-free counterpart of
    /// [`WriteCache::flush_all`] for release-time flushing, which happens
    /// on every lock release under CW. The cache is 4 entries in the
    /// paper, so the scan is cheaper than building a `Vec`.
    pub fn take_next(&mut self) -> Option<WcEntry> {
        self.entries.iter_mut().find_map(Option::take)
    }

    /// Whether any entry is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// Writes that combined into an existing entry (traffic saved).
    pub fn combined_writes(&self) -> u64 {
        self.combined_writes
    }

    /// Entry allocations (each eventually costs one update message).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirext_trace::BLOCK_BYTES;

    #[test]
    fn combines_writes_to_same_block() {
        let mut wc = WriteCache::new(4);
        assert!(wc.write(Addr::new(0)).is_none());
        assert!(wc.write(Addr::new(8)).is_none());
        assert!(wc.write(Addr::new(8)).is_none()); // same word again
        let e = wc.probe(BlockAddr::from_index(0)).unwrap();
        assert_eq!(e.dirty_mask, 0b0000_0101);
        assert_eq!(e.dirty_words(), 2);
        assert_eq!(wc.combined_writes(), 2);
        assert_eq!(wc.allocations(), 1);
    }

    #[test]
    fn conflict_evicts_victim() {
        let mut wc = WriteCache::new(4);
        wc.write(Addr::new(0));
        // Block 4 maps to the same entry as block 0 in a 4-entry cache.
        let victim = wc.write(Addr::new(4 * BLOCK_BYTES)).unwrap();
        assert_eq!(victim.block, BlockAddr::from_index(0));
        assert!(wc.probe(BlockAddr::from_index(4)).is_some());
    }

    #[test]
    fn flush_drains_everything() {
        let mut wc = WriteCache::new(4);
        for i in 0..3 {
            wc.write(Addr::new(i * BLOCK_BYTES));
        }
        let flushed = wc.flush_all();
        assert_eq!(flushed.len(), 3);
        assert!(wc.is_empty());
        assert!(wc.flush_all().is_empty());
    }

    #[test]
    fn take_removes_only_matching_block() {
        let mut wc = WriteCache::new(4);
        wc.write(Addr::new(32));
        assert!(wc.take(BlockAddr::from_index(5)).is_none());
        let e = wc.take(BlockAddr::from_index(1)).unwrap();
        assert_eq!(e.block, BlockAddr::from_index(1));
        assert!(wc.is_empty());
    }

    #[test]
    fn take_next_drains_in_flush_order() {
        let mut wc = WriteCache::new(4);
        for i in 0..3 {
            wc.write(Addr::new(i * BLOCK_BYTES));
        }
        let mut by_flush = WriteCache::new(4);
        for i in 0..3 {
            by_flush.write(Addr::new(i * BLOCK_BYTES));
        }
        let mut drained = Vec::new();
        while let Some(e) = wc.take_next() {
            drained.push(e);
        }
        assert_eq!(drained, by_flush.flush_all());
        assert!(wc.is_empty());
        assert!(wc.take_next().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = WriteCache::new(0);
    }
}
