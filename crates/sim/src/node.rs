//! Per-node cache-side state.

use std::collections::VecDeque;

use dirext_core::blockmap::BlockMap;
use dirext_core::config::ProtocolConfig;
use dirext_core::line::Line;
use dirext_core::proto::ExtStack;
use dirext_kernel::{Resource, Time};
use dirext_memsys::{Fifo, Flc, Slc, SlcGeometry, Timing, WcEntry, WriteCache};
use dirext_stats::{Histogram, StallBreakdown, StallKind};
use dirext_trace::{Addr, BlockAddr, NodeId, Program};
use std::sync::Arc;

/// What the processor is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Executing (a `ProcStep` event is or will be scheduled).
    Ready,
    /// Blocked; `since` starts the stall account.
    Stalled { kind: StallKind, since: Time },
    /// Program finished.
    Done,
}

/// An entry of the first-level write buffer: writes, read-miss requests,
/// and (under RC) synchronization operations, all in FIFO program order —
/// "synchronizations bypass the FLC and are inserted ... with other memory
/// requests", which is what orders a release after every earlier write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlwbEntry {
    Read(Addr),
    Write(Addr),
    /// A software prefetch instruction (droppable hint).
    SwPrefetch(Addr, bool),
    Sync(SyncOut),
}

/// A synchronization operation deferred until all previously issued
/// ownership/update requests complete (RC write-release semantics; barriers
/// include a release).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncOut {
    /// A lock release (the lock variable's address).
    Release(Addr),
    /// A barrier arrival (the barrier id).
    Barrier(u32),
}

/// The exact synchronization grant a stalled processor is waiting for.
///
/// Under a faulty network a duplicated grant could resume a processor that
/// has since moved on and stalled on something else. Each node records
/// what it is actually waiting for — for locks, down to the acquire
/// sequence number echoed in the grant's version field, since a node can
/// re-acquire the same lock across episodes. A grant that does not match
/// is a stale duplicate and is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncWait {
    /// Waiting for `AcqGrant` of this lock, for this acquire sequence.
    Lock(BlockAddr, u64),
    /// Waiting for `BarRelease` of this barrier id.
    Barrier(u32),
    /// Waiting for `RelAck` of this lock's release, for the acquire
    /// sequence being released (SC release stall).
    ReleaseAck(BlockAddr, u64),
}

/// A pending request held in the second-level write buffer (the SLWB doubles
/// as the lockup-free cache's miss-status registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlwbOp {
    /// Outstanding read miss or prefetch.
    Read {
        prefetch: bool,
        /// A demand access is blocked on this entry.
        demand_waiting: bool,
        /// When the demand access started waiting (read-latency metering).
        demand_since: Time,
        /// A write to the block arrived while this read was in flight: the
        /// stamp of that write. When the reply arrives, an ownership request
        /// follows (or, if the reply grants an exclusive migratory copy,
        /// the write completes silently).
        upgrade_version: Option<u64>,
        /// The processor is stalled on the upgrading write (SC).
        upgrade_sc: bool,
    },
    /// Outstanding ownership request.
    Own {
        need_data: bool,
        /// Version stamp of the processor write that triggered the request.
        write_version: u64,
        /// The processor is stalled on this write (SC).
        sc_wait: bool,
        /// A demand read is blocked on this entry (its copy was invalidated
        /// while the ownership request was in flight).
        demand_waiting: bool,
        /// When the demand read started waiting.
        demand_since: Time,
    },
    /// Outstanding competitive update.
    Update {
        /// Version stamp carried by the update.
        version: u64,
    },
    /// Outstanding writeback.
    Writeback,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlwbEntry {
    pub block: BlockAddr,
    pub op: SlwbOp,
}

/// Per-node counters that end up in [`dirext_stats::Metrics`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeCounters {
    pub shared_reads: u64,
    pub shared_writes: u64,
    pub slc_misses: u64,
    pub wc_read_hits: u64,
    pub read_miss_cycles: u64,
    pub read_miss_count: u64,
}

/// One processing node: processor + FLC + FLWB + SLC(+SLWB, write cache,
/// prefetcher) + local bus.
#[derive(Debug)]
pub(crate) struct Node {
    pub id: NodeId,
    pub program: Arc<Program>,
    pub pc: usize,
    pub pstate: ProcState,
    /// Skip re-charging FLC access time when retrying after a buffer stall.
    pub retry_no_charge: bool,
    pub stalls: StallBreakdown,
    pub finish: Option<Time>,

    pub flc: Flc,
    pub flwb: Fifo<FlwbEntry>,
    /// A drain chain (`FlwbHead` event) is scheduled.
    pub flwb_active: bool,

    pub slc: Slc<Line>,
    pub slwb: Vec<SlwbEntry>,
    pub slwb_cap: usize,
    pub slc_res: Resource,
    pub bus_res: Resource,

    pub wc: Option<WriteCache>,
    /// Version stamps of write-cache entries (debug coherence check).
    pub wc_version: BlockMap<u64>,
    /// Victim write-cache entries waiting for SLWB space.
    pub update_backlog: VecDeque<(WcEntry, u64)>,
    /// Evicted dirty blocks waiting for SLWB space: `(block, written,
    /// version)`.
    pub wb_backlog: VecDeque<(BlockAddr, bool, u64)>,

    /// Cache-side protocol-extension hooks (prefetch adaptation, write-mode
    /// selection), built from the same configuration as the home's stack.
    pub exts: ExtStack,

    /// Outstanding ownership/update requests (release gating).
    pub pending_writes: u64,
    /// Releases and barrier arrivals waiting for pending writes to drain.
    pub sync_waiting: VecDeque<SyncOut>,
    /// The synchronization grant this processor's stall is waiting for
    /// (guards grant delivery against duplicated messages).
    pub waiting_grant: Option<SyncWait>,
    /// Monotone counter stamping each lock acquire this node issues; the
    /// home's duplicate filter and the grant/release matching key on it.
    pub next_lock_seq: u64,
    /// Locks this node has been granted and not yet released, with the
    /// acquire sequence of the grant (echoed on the release).
    pub held_locks: BlockMap<u64>,

    pub counters: NodeCounters,
    /// Distribution of demand read-miss service times.
    pub read_miss_hist: Histogram,
    /// Competitive counter preset (0 when CW is off — unused).
    pub comp_preset: u8,
}

impl Node {
    pub(crate) fn new(
        id: NodeId,
        program: Arc<Program>,
        protocol: &ProtocolConfig,
        timing: &Timing,
    ) -> Self {
        let comp_preset = protocol.competitive.map_or(1, |c| c.threshold);
        Node {
            id,
            program,
            pc: 0,
            pstate: ProcState::Ready,
            retry_no_charge: false,
            stalls: StallBreakdown::default(),
            finish: None,
            flc: Flc::new(timing.flc_bytes),
            flwb: Fifo::new(timing.flwb_entries),
            flwb_active: false,
            slc: Slc::new(SlcGeometry::from_bytes(timing.slc_bytes)),
            slwb: Vec::with_capacity(timing.slwb_entries),
            slwb_cap: timing.slwb_entries,
            slc_res: Resource::new(),
            bus_res: Resource::new(),
            wc: protocol
                .competitive
                .filter(|c| c.write_cache)
                .map(|_| WriteCache::new(timing.write_cache_blocks)),
            wc_version: BlockMap::new(),
            update_backlog: VecDeque::new(),
            wb_backlog: VecDeque::new(),
            exts: ExtStack::from_protocol(protocol),
            pending_writes: 0,
            sync_waiting: VecDeque::new(),
            waiting_grant: None,
            next_lock_seq: 1,
            held_locks: BlockMap::new(),
            counters: NodeCounters::default(),
            read_miss_hist: Histogram::new(),
            comp_preset,
        }
    }

    /// Finds the SLWB entry for `block` matching `pred`.
    pub(crate) fn slwb_find(
        &mut self,
        block: BlockAddr,
        pred: impl Fn(&SlwbOp) -> bool,
    ) -> Option<&mut SlwbEntry> {
        self.slwb
            .iter_mut()
            .find(|e| e.block == block && pred(&e.op))
    }

    /// Removes and returns the SLWB entry for `block` matching `pred`.
    pub(crate) fn slwb_take(
        &mut self,
        block: BlockAddr,
        pred: impl Fn(&SlwbOp) -> bool,
    ) -> Option<SlwbEntry> {
        let pos = self
            .slwb
            .iter()
            .position(|e| e.block == block && pred(&e.op))?;
        Some(self.slwb.remove(pos))
    }

    /// Whether the SLWB can accept another entry.
    pub(crate) fn slwb_has_space(&self) -> bool {
        self.slwb.len() < self.slwb_cap
    }

    /// Whether any read (demand or prefetch) is pending for `block`.
    pub(crate) fn read_pending(&self, block: BlockAddr) -> bool {
        self.slwb
            .iter()
            .any(|e| e.block == block && matches!(e.op, SlwbOp::Read { .. }))
    }

    /// Whether an ownership request is pending for `block`.
    pub(crate) fn own_pending(&self, block: BlockAddr) -> bool {
        self.slwb
            .iter()
            .any(|e| e.block == block && matches!(e.op, SlwbOp::Own { .. }))
    }
}
