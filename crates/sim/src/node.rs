//! Per-node cache-side state, laid out as a structure of arrays.
//!
//! [`Nodes`] holds every node's processor/cache/buffer state as parallel
//! columns indexed by node: the event dispatch loop touches only the
//! columns the event class needs (a `Compute` retirement reads `pc`,
//! `pstate` and `stalls`; an FLC probe touches the flattened tag column)
//! instead of dragging whole per-node structs through the cache. Columns
//! that are identical across nodes (`slwb_cap`, `comp_preset`) are plain
//! scalars.

use std::collections::VecDeque;

use dirext_core::blockmap::BlockMap;
use dirext_core::config::ProtocolConfig;
use dirext_core::line::Line;
use dirext_core::proto::ExtStack;
use dirext_kernel::{Resource, Time};
use dirext_memsys::{Fifo, FlcArray, Slc, SlcGeometry, Timing, WcEntry, WriteCache};
use dirext_stats::{Histogram, StallBreakdown, StallKind};
use dirext_trace::{Addr, BlockAddr, Program};
use std::sync::Arc;

/// What the processor is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Executing (a `ProcStep` event is or will be scheduled).
    Ready,
    /// Blocked; `since` starts the stall account.
    Stalled { kind: StallKind, since: Time },
    /// Program finished.
    Done,
    /// The node is down under an injected crash (no `ProcStep` is live;
    /// the fault timeline re-admits it at its scheduled recovery cycle).
    Crashed,
}

/// An entry of the first-level write buffer: writes, read-miss requests,
/// and (under RC) synchronization operations, all in FIFO program order —
/// "synchronizations bypass the FLC and are inserted ... with other memory
/// requests", which is what orders a release after every earlier write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlwbEntry {
    Read(Addr),
    Write(Addr),
    /// A software prefetch instruction (droppable hint).
    SwPrefetch(Addr, bool),
    Sync(SyncOut),
}

/// A synchronization operation deferred until all previously issued
/// ownership/update requests complete (RC write-release semantics; barriers
/// include a release).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncOut {
    /// A lock release (the lock variable's address).
    Release(Addr),
    /// A barrier arrival (the barrier id).
    Barrier(u32),
}

/// The exact synchronization grant a stalled processor is waiting for.
///
/// Under a faulty network a duplicated grant could resume a processor that
/// has since moved on and stalled on something else. Each node records
/// what it is actually waiting for — for locks, down to the acquire
/// sequence number echoed in the grant's version field, since a node can
/// re-acquire the same lock across episodes. A grant that does not match
/// is a stale duplicate and is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncWait {
    /// Waiting for `AcqGrant` of this lock, for this acquire sequence.
    Lock(BlockAddr, u64),
    /// Waiting for `BarRelease` of this barrier id.
    Barrier(u32),
    /// Waiting for `RelAck` of this lock's release, for the acquire
    /// sequence being released (SC release stall).
    ReleaseAck(BlockAddr, u64),
}

/// A pending request held in the second-level write buffer (the SLWB doubles
/// as the lockup-free cache's miss-status registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlwbOp {
    /// Outstanding read miss or prefetch.
    Read {
        prefetch: bool,
        /// A demand access is blocked on this entry.
        demand_waiting: bool,
        /// When the demand access started waiting (read-latency metering).
        demand_since: Time,
        /// A write to the block arrived while this read was in flight: the
        /// stamp of that write. When the reply arrives, an ownership request
        /// follows (or, if the reply grants an exclusive migratory copy,
        /// the write completes silently).
        upgrade_version: Option<u64>,
        /// The processor is stalled on the upgrading write (SC).
        upgrade_sc: bool,
    },
    /// Outstanding ownership request.
    Own {
        need_data: bool,
        /// Version stamp of the processor write that triggered the request.
        write_version: u64,
        /// The processor is stalled on this write (SC).
        sc_wait: bool,
        /// A demand read is blocked on this entry (its copy was invalidated
        /// while the ownership request was in flight).
        demand_waiting: bool,
        /// When the demand read started waiting.
        demand_since: Time,
    },
    /// Outstanding competitive update.
    Update {
        /// Version stamp carried by the update.
        version: u64,
    },
    /// Outstanding writeback.
    Writeback,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlwbEntry {
    pub block: BlockAddr,
    pub op: SlwbOp,
}

/// Per-node counters that end up in [`dirext_stats::Metrics`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeCounters {
    pub shared_reads: u64,
    pub shared_writes: u64,
    pub slc_misses: u64,
    pub wc_read_hits: u64,
    pub read_miss_cycles: u64,
    pub read_miss_count: u64,
}

/// All nodes' cache-side state as parallel columns (structure of arrays).
///
/// Column `x[i]` is node `i`'s `x`. One processing node comprises:
/// processor + FLC + FLWB + SLC(+SLWB, write cache, prefetcher) + local
/// bus. Grouping is by access pattern: the processor columns are touched
/// on every `ProcStep`, the FLC/FLWB columns on reads/writes, the SLC and
/// write-cache columns only on misses and protocol traffic.
#[derive(Debug)]
pub(crate) struct Nodes {
    // ----- processor columns (every ProcStep) -----
    pub pc: Vec<usize>,
    pub pstate: Vec<ProcState>,
    /// Skip re-charging FLC access time when retrying after a buffer stall.
    pub retry_no_charge: Vec<bool>,
    pub finish: Vec<Option<Time>>,
    pub program: Vec<Arc<Program>>,
    pub stalls: Vec<StallBreakdown>,

    // ----- FLC / FLWB columns (reads and writes) -----
    /// Every node's FLC tag array, flattened node-major.
    pub flc: FlcArray,
    pub flwb: Vec<Fifo<FlwbEntry>>,
    /// A drain chain (`FlwbHead` event) is scheduled.
    pub flwb_active: Vec<bool>,

    // ----- SLC columns (misses and protocol traffic) -----
    pub slc: Vec<Slc<Line>>,
    pub slwb: Vec<Vec<SlwbEntry>>,
    pub slc_res: Vec<Resource>,
    pub bus_res: Vec<Resource>,

    // ----- write-cache columns -----
    pub wc: Vec<Option<WriteCache>>,
    /// Version stamps of write-cache entries (debug coherence check).
    pub wc_version: Vec<BlockMap<u64>>,
    /// Victim write-cache entries waiting for SLWB space.
    pub update_backlog: Vec<VecDeque<(WcEntry, u64)>>,
    /// Evicted dirty blocks waiting for SLWB space: `(block, written,
    /// version)`.
    pub wb_backlog: Vec<VecDeque<(BlockAddr, bool, u64)>>,

    // ----- protocol / synchronization columns -----
    /// Cache-side protocol-extension hooks (prefetch adaptation, write-mode
    /// selection), built from the same configuration as the home's stack.
    pub exts: Vec<ExtStack>,
    /// Outstanding ownership/update requests (release gating).
    pub pending_writes: Vec<u64>,
    /// Releases and barrier arrivals waiting for pending writes to drain.
    pub sync_waiting: Vec<VecDeque<SyncOut>>,
    /// The synchronization grant this processor's stall is waiting for
    /// (guards grant delivery against duplicated messages).
    pub waiting_grant: Vec<Option<SyncWait>>,
    /// Monotone counter stamping each lock acquire this node issues; the
    /// home's duplicate filter and the grant/release matching key on it.
    pub next_lock_seq: Vec<u64>,
    /// Locks this node has been granted and not yet released, with the
    /// acquire sequence of the grant (echoed on the release).
    pub held_locks: Vec<BlockMap<u64>>,

    // ----- metrics columns -----
    pub counters: Vec<NodeCounters>,
    /// Distribution of demand read-miss service times.
    pub read_miss_hist: Vec<Histogram>,

    // ----- machine-wide scalars (identical for every node) -----
    /// SLWB capacity.
    pub slwb_cap: usize,
    /// Competitive counter preset (0 when CW is off — unused).
    pub comp_preset: u8,
}

impl Nodes {
    /// Builds the columns for `programs.len()` nodes.
    pub(crate) fn new(
        programs: Vec<Arc<Program>>,
        protocol: &ProtocolConfig,
        timing: &Timing,
    ) -> Self {
        let n = programs.len();
        let comp_preset = protocol.competitive.map_or(1, |c| c.threshold);
        Nodes {
            pc: vec![0; n],
            pstate: vec![ProcState::Ready; n],
            retry_no_charge: vec![false; n],
            finish: vec![None; n],
            program: programs,
            stalls: vec![StallBreakdown::default(); n],
            flc: FlcArray::new(n, timing.flc_bytes),
            flwb: (0..n).map(|_| Fifo::new(timing.flwb_entries)).collect(),
            flwb_active: vec![false; n],
            slc: (0..n)
                .map(|_| Slc::new(SlcGeometry::from_bytes(timing.slc_bytes)))
                .collect(),
            slwb: (0..n)
                .map(|_| Vec::with_capacity(timing.slwb_entries))
                .collect(),
            slc_res: vec![Resource::new(); n],
            bus_res: vec![Resource::new(); n],
            wc: (0..n)
                .map(|_| {
                    protocol
                        .competitive
                        .filter(|c| c.write_cache)
                        .map(|_| WriteCache::new(timing.write_cache_blocks))
                })
                .collect(),
            wc_version: (0..n).map(|_| BlockMap::new()).collect(),
            update_backlog: (0..n).map(|_| VecDeque::new()).collect(),
            wb_backlog: (0..n).map(|_| VecDeque::new()).collect(),
            exts: (0..n).map(|_| ExtStack::from_protocol(protocol)).collect(),
            pending_writes: vec![0; n],
            sync_waiting: (0..n).map(|_| VecDeque::new()).collect(),
            waiting_grant: vec![None; n],
            next_lock_seq: vec![1; n],
            held_locks: (0..n).map(|_| BlockMap::new()).collect(),
            counters: vec![NodeCounters::default(); n],
            read_miss_hist: (0..n).map(|_| Histogram::new()).collect(),
            slwb_cap: timing.slwb_entries,
            comp_preset,
        }
    }

    /// An empty placeholder (no nodes); replaced when a workload is run.
    pub(crate) fn placeholder() -> Self {
        Nodes {
            pc: Vec::new(),
            pstate: Vec::new(),
            retry_no_charge: Vec::new(),
            finish: Vec::new(),
            program: Vec::new(),
            stalls: Vec::new(),
            flc: FlcArray::new(0, dirext_trace::BLOCK_BYTES),
            flwb: Vec::new(),
            flwb_active: Vec::new(),
            slc: Vec::new(),
            slwb: Vec::new(),
            slc_res: Vec::new(),
            bus_res: Vec::new(),
            wc: Vec::new(),
            wc_version: Vec::new(),
            update_backlog: Vec::new(),
            wb_backlog: Vec::new(),
            exts: Vec::new(),
            pending_writes: Vec::new(),
            sync_waiting: Vec::new(),
            waiting_grant: Vec::new(),
            next_lock_seq: Vec::new(),
            held_locks: Vec::new(),
            counters: Vec::new(),
            read_miss_hist: Vec::new(),
            slwb_cap: 0,
            comp_preset: 1,
        }
    }

    /// Finds node `i`'s SLWB entry for `block` matching `pred`.
    pub(crate) fn slwb_find(
        &mut self,
        i: usize,
        block: BlockAddr,
        pred: impl Fn(&SlwbOp) -> bool,
    ) -> Option<&mut SlwbEntry> {
        self.slwb[i]
            .iter_mut()
            .find(|e| e.block == block && pred(&e.op))
    }

    /// Removes and returns node `i`'s SLWB entry for `block` matching
    /// `pred`.
    pub(crate) fn slwb_take(
        &mut self,
        i: usize,
        block: BlockAddr,
        pred: impl Fn(&SlwbOp) -> bool,
    ) -> Option<SlwbEntry> {
        let pos = self.slwb[i]
            .iter()
            .position(|e| e.block == block && pred(&e.op))?;
        Some(self.slwb[i].remove(pos))
    }

    /// Whether node `i`'s SLWB can accept another entry.
    pub(crate) fn slwb_has_space(&self, i: usize) -> bool {
        self.slwb[i].len() < self.slwb_cap
    }

    /// Whether node `i` has any read (demand or prefetch) pending for
    /// `block`.
    pub(crate) fn read_pending(&self, i: usize, block: BlockAddr) -> bool {
        self.slwb[i]
            .iter()
            .any(|e| e.block == block && matches!(e.op, SlwbOp::Read { .. }))
    }

    /// Whether node `i` has an ownership request pending for `block`.
    pub(crate) fn own_pending(&self, i: usize, block: BlockAddr) -> bool {
        self.slwb[i]
            .iter()
            .any(|e| e.block == block && matches!(e.op, SlwbOp::Own { .. }))
    }
}
