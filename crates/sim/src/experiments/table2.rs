//! Table 2: cold and coherence miss-rate components.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};

/// The protocols of Table 2, in the paper's column order.
pub const TABLE2_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::Cw,
    ProtocolKind::PCw,
];

/// Result of the Table-2 sweep.
#[derive(Debug)]
pub struct Table2 {
    /// One row per application.
    pub rows: Vec<Table2Row>,
}

/// One application's miss-rate components per protocol.
#[derive(Debug)]
pub struct Table2Row {
    /// Application name.
    pub app: String,
    /// Metrics per protocol, in [`TABLE2_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl Table2Row {
    /// `(cold %, coherence %)` pairs in protocol order.
    pub fn components(&self) -> Vec<(f64, f64)> {
        self.metrics
            .iter()
            .map(|m| (m.cold_rate_pct(), m.coh_rate_pct()))
            .collect()
    }

    /// The paper's additivity observation: cold(P+CW) ≈ cold(P) and
    /// coh(P+CW) ≈ coh(CW). Returns the two absolute differences in
    /// percentage points.
    pub fn additivity_error(&self) -> (f64, f64) {
        let c = self.components();
        ((c[3].0 - c[1].0).abs(), (c[3].1 - c[2].1).abs())
    }
}

/// Runs the Table-2 sweep (RC, uniform network).
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn table2(suite: &[Workload]) -> Result<Table2, SweepError> {
    table2_with(suite, &SweepOpts::default())
}

/// [`table2`] with explicit sweep options (worker threads, fault plan,
/// journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn table2_with(suite: &[Workload], opts: &SweepOpts) -> Result<Table2, SweepError> {
    let nk = TABLE2_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            TABLE2_PROTOCOLS
                .iter()
                .map(move |&kind| Cell::new(w, kind, Consistency::Rc))
        })
        .collect();
    let all = run_cells("table2", &cells, opts)?;
    check_len("table2", all.len(), suite.len() * nk)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(nk))
        .map(|(w, chunk)| Table2Row {
            app: w.name().to_owned(),
            metrics: chunk.to_vec(),
        })
        .collect();
    Ok(Table2 { rows })
}

impl Table2 {
    /// CSV rendering: `app,protocol,cold_pct,coherence_pct`.
    pub fn csv(&self) -> String {
        let mut out = String::from("app,protocol,cold_pct,coherence_pct\n");
        for row in &self.rows {
            for (kind, m) in TABLE2_PROTOCOLS.iter().zip(&row.metrics) {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4}\n",
                    row.app,
                    kind.name(),
                    m.cold_rate_pct(),
                    m.coh_rate_pct()
                ));
            }
        }
        out
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: cold and coherence miss rates (% of shared references)"
        )?;
        let mut header = vec!["app".to_owned()];
        for k in TABLE2_PROTOCOLS {
            header.push(format!("{} cold", k.name()));
            header.push(format!("{} coh", k.name()));
        }
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let mut vals = Vec::new();
            for (cold, coh) in row.components() {
                vals.push(cold);
                vals.push(coh);
            }
            t.row_f64(&row.app, &vals, 2);
        }
        write!(f, "{t}")
    }
}
