//! Table 2: cold and coherence miss-rate components.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::pool::run_ordered;
use super::runner::{run_protocol_cfg, SweepOpts};
use crate::{NetworkKind, SimError};

/// The protocols of Table 2, in the paper's column order.
pub const TABLE2_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::Cw,
    ProtocolKind::PCw,
];

/// Result of the Table-2 sweep.
#[derive(Debug)]
pub struct Table2 {
    /// One row per application.
    pub rows: Vec<Table2Row>,
}

/// One application's miss-rate components per protocol.
#[derive(Debug)]
pub struct Table2Row {
    /// Application name.
    pub app: String,
    /// Metrics per protocol, in [`TABLE2_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl Table2Row {
    /// `(cold %, coherence %)` pairs in protocol order.
    pub fn components(&self) -> Vec<(f64, f64)> {
        self.metrics
            .iter()
            .map(|m| (m.cold_rate_pct(), m.coh_rate_pct()))
            .collect()
    }

    /// The paper's additivity observation: cold(P+CW) ≈ cold(P) and
    /// coh(P+CW) ≈ coh(CW). Returns the two absolute differences in
    /// percentage points.
    pub fn additivity_error(&self) -> (f64, f64) {
        let c = self.components();
        ((c[3].0 - c[1].0).abs(), (c[3].1 - c[2].1).abs())
    }
}

/// Runs the Table-2 sweep (RC, uniform network).
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn table2(suite: &[Workload]) -> Result<Table2, SimError> {
    table2_with(suite, &SweepOpts::default())
}

/// [`table2`] with explicit sweep options (worker threads, fault plan).
///
/// # Errors
///
/// Propagates the lowest-indexed [`SimError`] of the sweep.
pub fn table2_with(suite: &[Workload], opts: &SweepOpts) -> Result<Table2, SimError> {
    let nk = TABLE2_PROTOCOLS.len();
    let all = run_ordered(opts.jobs, suite.len() * nk, |i| {
        run_protocol_cfg(
            &suite[i / nk],
            TABLE2_PROTOCOLS[i % nk],
            Consistency::Rc,
            NetworkKind::Uniform,
            None,
            opts.fault,
        )
    })?;
    let mut all = all.into_iter();
    let rows = suite
        .iter()
        .map(|w| Table2Row {
            app: w.name().to_owned(),
            metrics: all.by_ref().take(nk).collect(),
        })
        .collect();
    Ok(Table2 { rows })
}

impl Table2 {
    /// CSV rendering: `app,protocol,cold_pct,coherence_pct`.
    pub fn csv(&self) -> String {
        let mut out = String::from("app,protocol,cold_pct,coherence_pct\n");
        for row in &self.rows {
            for (kind, m) in TABLE2_PROTOCOLS.iter().zip(&row.metrics) {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4}\n",
                    row.app,
                    kind.name(),
                    m.cold_rate_pct(),
                    m.coh_rate_pct()
                ));
            }
        }
        out
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: cold and coherence miss rates (% of shared references)"
        )?;
        let mut header = vec!["app".to_owned()];
        for k in TABLE2_PROTOCOLS {
            header.push(format!("{} cold", k.name()));
            header.push(format!("{} coh", k.name()));
        }
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let mut vals = Vec::new();
            for (cold, coh) in row.components() {
                vals.push(cold);
                vals.push(coh);
            }
            t.row_f64(&row.app, &vals, 2);
        }
        write!(f, "{t}")
    }
}
