//! Extension experiment (not in the paper): graceful-degradation sweep
//! under whole-node crash/recovery faults.
//!
//! Crosses the crash-count axis (how many nodes die and rejoin during the
//! run) against every feasible directory organization and the paper's key
//! protocol stacks, and reports what node failure costs each combination:
//! execution-time inflation over the same cell's crash-free row, modeled
//! data loss (dirty blocks whose only up-to-date copy died), and the
//! reconstruction work the directories performed (purged sharers,
//! orphaned-line reclaims). The interesting contrast is organizational:
//! an exact full map purges a dead node surgically, while the inexact
//! organizations must sweep regions or broadcast — the same
//! over-approximation tax the `dirscale` sweep prices, now under faults.
//!
//! Crash schedules come from [`NodeFaultPlan::seeded`], so every cell is
//! deterministic and the whole sweep is journaled, resumable and
//! fleet-shardable through [`run_cells`] like every paper artifact; the
//! crash windows are part of each cell's journal key. Like `dirscale`,
//! every cell runs on the two-level mesh ([`DIRSCALE_NETWORK`]) — the one
//! modelled topology that reaches the node counts where the organizations
//! actually diverge.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::sharer::DirOrg;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::dirscale::DIRSCALE_NETWORK;
use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};
use crate::NodeFaultPlan;

/// The crash-count axis: 0 is the crash-free baseline row the inflation
/// column normalizes against.
pub const DEGRADE_CRASHES: [usize; 4] = [0, 1, 2, 4];

/// The protocol stacks compared under failure: the baseline and the
/// paper's full combination, bracketing the extension space.
pub const DEGRADE_PROTOCOLS: [ProtocolKind; 2] = [ProtocolKind::Basic, ProtocolKind::PCwM];

/// Shape of the seeded crash schedules: the plan seed and the
/// detection-delay bound, fixed across the sweep so rows differ only on
/// the crash-count axis.
#[derive(Debug, Clone, Copy)]
pub struct DegradeParams {
    /// Seed for [`NodeFaultPlan::seeded`].
    pub seed: u64,
    /// Detection delay (cycles between a crash and the reconstruction
    /// sweep) applied to every plan.
    pub detect_delay: u64,
}

impl Default for DegradeParams {
    fn default() -> Self {
        DegradeParams {
            seed: 1,
            detect_delay: 500,
        }
    }
}

/// Result of the degradation sweep for one application.
#[derive(Debug)]
pub struct Degrade {
    /// Application name.
    pub app: String,
    /// One row per `(crashes, organization)` pair, crash-count-major in
    /// [`DEGRADE_CRASHES`] × feasible-[`DirOrg::ALL`] order.
    pub rows: Vec<DegradeRow>,
}

/// Metrics for one crash count under one directory organization.
#[derive(Debug)]
pub struct DegradeRow {
    /// Scheduled node crashes.
    pub crashes: usize,
    /// Directory organization.
    pub org: DirOrg,
    /// Metrics per protocol, in [`DEGRADE_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl Degrade {
    /// Execution-time inflation of `row` relative to the crash-free row
    /// of the same organization, per protocol (1.0 = no slowdown).
    pub fn inflation(&self, row: &DegradeRow) -> Vec<f64> {
        let base = self
            .rows
            .iter()
            .find(|r| r.crashes == 0 && r.org == row.org)
            .unwrap_or(row);
        row.metrics
            .iter()
            .zip(&base.metrics)
            .map(|(m, b)| m.relative_time(b))
            .collect()
    }
}

impl DegradeRow {
    /// Summed failure telemetry across the row's protocols:
    /// `(recoveries, purged sharers, orphan reclaims, data-loss blocks)`.
    pub fn fault_activity(&self) -> (u64, u64, u64, u64) {
        self.metrics.iter().fold((0, 0, 0, 0), |(r, p, o, d), m| {
            (
                r + m.node_recoveries,
                p + m.dir_purged_sharers,
                o + m.dir_orphan_reclaims,
                d + m.data_loss_blocks,
            )
        })
    }
}

/// The feasible `(crashes, org)` grid for a machine of `procs` nodes, in
/// row order. The crash axis is capped at `procs - 1` survivable crashes
/// (duplicated counts would journal identical cells twice).
fn grid(procs: usize) -> Vec<(usize, DirOrg)> {
    let mut counts: Vec<usize> = DEGRADE_CRASHES
        .into_iter()
        .map(|c| c.min(procs.saturating_sub(1)))
        .collect();
    counts.dedup();
    counts
        .into_iter()
        .flat_map(|crashes| {
            DirOrg::ALL
                .into_iter()
                .filter(move |org| org.validate(procs).is_ok())
                .map(move |org| (crashes, org))
        })
        .collect()
}

/// Runs the degradation sweep on `workload` with default schedule
/// parameters.
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn degrade(app_name: &str, workload: &Workload) -> Result<Degrade, SweepError> {
    degrade_with(
        app_name,
        workload,
        DegradeParams::default(),
        &SweepOpts::default(),
    )
}

/// [`degrade`] with explicit schedule parameters and sweep options
/// (worker threads, link-fault overlay, journal/fleet, quarantine,
/// cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn degrade_with(
    app_name: &str,
    workload: &Workload,
    params: DegradeParams,
    opts: &SweepOpts,
) -> Result<Degrade, SweepError> {
    let procs = workload.procs();
    let grid = grid(procs);
    let nk = DEGRADE_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = grid
        .iter()
        .flat_map(|&(crashes, org)| {
            DEGRADE_PROTOCOLS.iter().map(move |&kind| {
                let mut cell =
                    Cell::on(workload, kind, Consistency::Rc, DIRSCALE_NETWORK).with_dir(org);
                if crashes > 0 {
                    let mut plan = NodeFaultPlan::seeded(params.seed, procs, crashes);
                    plan.detect_delay = params.detect_delay;
                    cell = cell.with_node_faults(plan);
                }
                cell
            })
        })
        .collect();
    let all = run_cells("degrade", &cells, opts)?;
    check_len("degrade", all.len(), grid.len() * nk)?;
    let rows = grid
        .into_iter()
        .zip(all.chunks_exact(nk))
        .map(|((crashes, org), chunk)| DegradeRow {
            crashes,
            org,
            metrics: chunk.to_vec(),
        })
        .collect();
    Ok(Degrade {
        app: app_name.to_owned(),
        rows,
    })
}

impl fmt::Display for Degrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Graceful degradation (extension experiment): {} under seeded node \
             crash/recovery, exec time relative to the same organization's crash-free run (RC)",
            self.app
        )?;
        let mut header = vec!["crashes".to_owned(), "dir".to_owned()];
        header.extend(DEGRADE_PROTOCOLS.iter().map(|k| format!("{} x", k.name())));
        header.extend([
            "recovered".to_owned(),
            "purged".to_owned(),
            "reclaimed".to_owned(),
            "lost-blocks".to_owned(),
        ]);
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let infl = self.inflation(row);
            let (recovered, purged, reclaimed, lost) = row.fault_activity();
            let mut cells = vec![row.crashes.to_string(), row.org.cli_name()];
            cells.extend(infl.iter().map(|r| format!("{r:.2}")));
            cells.extend([
                recovered.to_string(),
                purged.to_string(),
                reclaimed.to_string(),
                lost.to_string(),
            ]);
            t.row(cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_caps_crashes_and_skips_infeasible_orgs() {
        // 4 nodes: the 4-crash level collapses into the 3-crash cap, so
        // the axis is [0, 1, 2, 3] with no duplicates.
        let g = grid(4);
        let counts: Vec<usize> = g.iter().map(|&(c, _)| c).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        let mut distinct = counts.clone();
        distinct.dedup();
        assert_eq!(
            distinct,
            vec![0, 1, 2, 3],
            "crash axis must cap at procs - 1 and dedup"
        );
        // 1024 nodes: the full map is infeasible and must be skipped.
        assert!(!grid(1024).iter().any(|&(_, o)| o == DirOrg::FullMap));
    }

    #[test]
    fn degrade_sweep_runs_and_shows_recovery_activity() {
        let w = dirext_workloads::micro::producer_consumer(8, 2, 40);
        let r = degrade_with(
            "micro",
            &w,
            DegradeParams::default(),
            &SweepOpts::default(),
        )
        .expect("degrade sweep must run");
        assert_eq!(r.rows.len(), grid(8).len());
        // The crash-free rows report no failure activity; a faulted row
        // reports exactly its scheduled recoveries per protocol.
        for row in &r.rows {
            let (recovered, ..) = row.fault_activity();
            if row.crashes == 0 {
                assert_eq!(recovered, 0, "{:?}", row.org);
                assert!(r.inflation(row).iter().all(|&x| x == 1.0));
            } else {
                assert_eq!(
                    recovered,
                    (row.crashes * DEGRADE_PROTOCOLS.len()) as u64,
                    "{} crashes under {:?}",
                    row.crashes,
                    row.org
                );
            }
        }
    }
}
