//! Section 5.1 (E8): average read-miss latency, BASIC vs CW.
//!
//! "We measured the average time to handle a read miss for MP3D and found
//! that it is 41 % shorter under CW than under BASIC" — because under CW
//! the memory copy is more often clean, so the remaining coherence misses
//! are serviced in two hops at the home instead of four through a dirty
//! third-party cache.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};

/// Result of the read-miss-latency comparison.
#[derive(Debug)]
pub struct MissLatency {
    /// One row per application.
    pub rows: Vec<MissLatencyRow>,
}

/// One application's read-miss latencies.
#[derive(Debug)]
pub struct MissLatencyRow {
    /// Application name.
    pub app: String,
    /// BASIC run.
    pub basic: Metrics,
    /// CW run.
    pub cw: Metrics,
}

impl MissLatencyRow {
    /// Fractional latency reduction under CW (0.41 ≈ the paper's MP3D).
    pub fn reduction(&self) -> f64 {
        let b = self.basic.avg_read_miss_latency();
        if b == 0.0 {
            return 0.0;
        }
        1.0 - self.cw.avg_read_miss_latency() / b
    }
}

/// Runs the read-miss-latency comparison (RC, uniform network).
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn miss_latency(suite: &[Workload]) -> Result<MissLatency, SweepError> {
    miss_latency_with(suite, &SweepOpts::default())
}

/// [`miss_latency`] with explicit sweep options (worker threads, fault
/// plan, journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn miss_latency_with(suite: &[Workload], opts: &SweepOpts) -> Result<MissLatency, SweepError> {
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            [ProtocolKind::Basic, ProtocolKind::Cw]
                .into_iter()
                .map(move |kind| Cell::new(w, kind, Consistency::Rc))
        })
        .collect();
    let all = run_cells("miss-latency", &cells, opts)?;
    check_len("miss-latency", all.len(), suite.len() * 2)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(2))
        .map(|(w, chunk)| match chunk {
            [basic, cw] => Ok(MissLatencyRow {
                app: w.name().to_owned(),
                basic: basic.clone(),
                cw: cw.clone(),
            }),
            _ => Err(SweepError::Assembly(
                "miss-latency: expected BASIC+CW pair per app".into(),
            )),
        })
        .collect::<Result<Vec<_>, SweepError>>()?;
    Ok(MissLatency { rows })
}

impl fmt::Display for MissLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Average demand read-miss latency (pclocks), BASIC vs CW (RC)"
        )?;
        let mut t = TextTable::new(vec![
            "app",
            "BASIC",
            "CW",
            "reduction %",
            "clean-reads BASIC %",
            "clean-reads CW %",
            "p95 BASIC",
            "p95 CW",
        ]);
        for row in &self.rows {
            t.row_f64(
                &row.app,
                &[
                    row.basic.avg_read_miss_latency(),
                    row.cw.avg_read_miss_latency(),
                    row.reduction() * 100.0,
                    row.basic.clean_read_fraction() * 100.0,
                    row.cw.clean_read_fraction() * 100.0,
                    row.basic.read_miss_hist.percentile(0.95) as f64,
                    row.cw.read_miss_hist.percentile(0.95) as f64,
                ],
                1,
            );
        }
        write!(f, "{t}")
    }
}
