//! Section 5.1 (E8): average read-miss latency, BASIC vs CW.
//!
//! "We measured the average time to handle a read miss for MP3D and found
//! that it is 41 % shorter under CW than under BASIC" — because under CW
//! the memory copy is more often clean, so the remaining coherence misses
//! are serviced in two hops at the home instead of four through a dirty
//! third-party cache.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::run_protocol;
use crate::SimError;

/// Result of the read-miss-latency comparison.
#[derive(Debug)]
pub struct MissLatency {
    /// One row per application.
    pub rows: Vec<MissLatencyRow>,
}

/// One application's read-miss latencies.
#[derive(Debug)]
pub struct MissLatencyRow {
    /// Application name.
    pub app: String,
    /// BASIC run.
    pub basic: Metrics,
    /// CW run.
    pub cw: Metrics,
}

impl MissLatencyRow {
    /// Fractional latency reduction under CW (0.41 ≈ the paper's MP3D).
    pub fn reduction(&self) -> f64 {
        let b = self.basic.avg_read_miss_latency();
        if b == 0.0 {
            return 0.0;
        }
        1.0 - self.cw.avg_read_miss_latency() / b
    }
}

/// Runs the read-miss-latency comparison (RC, uniform network).
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn miss_latency(suite: &[Workload]) -> Result<MissLatency, SimError> {
    let mut rows = Vec::new();
    for w in suite {
        rows.push(MissLatencyRow {
            app: w.name().to_owned(),
            basic: run_protocol(w, ProtocolKind::Basic, Consistency::Rc)?,
            cw: run_protocol(w, ProtocolKind::Cw, Consistency::Rc)?,
        });
    }
    Ok(MissLatency { rows })
}

impl fmt::Display for MissLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Average demand read-miss latency (pclocks), BASIC vs CW (RC)"
        )?;
        let mut t = TextTable::new(vec![
            "app",
            "BASIC",
            "CW",
            "reduction %",
            "clean-reads BASIC %",
            "clean-reads CW %",
            "p95 BASIC",
            "p95 CW",
        ]);
        for row in &self.rows {
            t.row_f64(
                &row.app,
                &[
                    row.basic.avg_read_miss_latency(),
                    row.cw.avg_read_miss_latency(),
                    row.reduction() * 100.0,
                    row.basic.clean_read_fraction() * 100.0,
                    row.cw.clean_read_fraction() * 100.0,
                    row.basic.read_miss_hist.percentile(0.95) as f64,
                    row.cw.read_miss_hist.percentile(0.95) as f64,
                ],
                1,
            );
        }
        write!(f, "{t}")
    }
}
