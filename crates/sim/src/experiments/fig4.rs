//! Figure 4: total network traffic normalized to BASIC.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};

/// The protocols of Figure 4, in the paper's x-axis order.
pub const FIG4_PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::Cw,
    ProtocolKind::M,
    ProtocolKind::PCw,
    ProtocolKind::PM,
];

/// Result of the Figure-4 sweep.
#[derive(Debug)]
pub struct Fig4 {
    /// One row per application.
    pub rows: Vec<Fig4Row>,
}

/// One application's traffic data.
#[derive(Debug)]
pub struct Fig4Row {
    /// Application name.
    pub app: String,
    /// Metrics per protocol, in [`FIG4_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl Fig4Row {
    /// Traffic relative to BASIC (= 1.0), in protocol order.
    pub fn relative_traffic(&self) -> Vec<f64> {
        self.metrics
            .iter()
            .map(|m| m.relative_traffic(&self.metrics[0]))
            .collect()
    }
}

/// Runs the Figure-4 sweep (RC, uniform network — traffic is metered even
/// though the ideal network never congests).
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn fig4(suite: &[Workload]) -> Result<Fig4, SweepError> {
    fig4_with(suite, &SweepOpts::default())
}

/// [`fig4`] with explicit sweep options (worker threads, fault plan,
/// journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn fig4_with(suite: &[Workload], opts: &SweepOpts) -> Result<Fig4, SweepError> {
    let nk = FIG4_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            FIG4_PROTOCOLS
                .iter()
                .map(move |&kind| Cell::new(w, kind, Consistency::Rc))
        })
        .collect();
    let all = run_cells("fig4", &cells, opts)?;
    check_len("fig4", all.len(), suite.len() * nk)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(nk))
        .map(|(w, chunk)| Fig4Row {
            app: w.name().to_owned(),
            metrics: chunk.to_vec(),
        })
        .collect();
    Ok(Fig4 { rows })
}

impl Fig4 {
    /// CSV rendering: `app,protocol,relative_traffic,net_bytes`.
    pub fn csv(&self) -> String {
        let mut out = String::from("app,protocol,relative_traffic,net_bytes\n");
        for row in &self.rows {
            for (kind, m) in FIG4_PROTOCOLS.iter().zip(&row.metrics) {
                out.push_str(&format!(
                    "{},{},{:.4},{}\n",
                    row.app,
                    kind.name(),
                    m.relative_traffic(&row.metrics[0]),
                    m.net_bytes
                ));
            }
        }
        out
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4: network traffic normalized to BASIC (RC, % of BASIC bytes)"
        )?;
        let mut header = vec!["app".to_owned()];
        header.extend(FIG4_PROTOCOLS.iter().map(|k| k.name().to_owned()));
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let vals: Vec<f64> = row.relative_traffic().iter().map(|v| v * 100.0).collect();
            t.row_f64(&row.app, &vals, 0);
        }
        write!(f, "{t}")
    }
}
