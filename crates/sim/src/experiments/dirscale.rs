//! Extension experiment (not in the paper): directory-organization
//! scaling sweep.
//!
//! The paper's full-map presence vector is priced for a 16-node machine;
//! at 256 or 1024 nodes the vector itself dominates memory overhead and
//! the organization stops being buildable. This sweep crosses the
//! scalable directory organizations (limited pointers with broadcast or
//! eviction, coarse vectors, directoryless broadcast) against the paper's
//! key protocol combinations at 64, 256 and 1024 nodes on the
//! hierarchical mesh, and reports how much each organization's
//! over-approximation costs: extra invalidation fan-out shows up directly
//! in execution time, and the `ovf`/`bcast`/`recall` columns count the
//! overflow machinery at work.
//!
//! Organizations that cannot serve a machine size (the full map past 64
//! nodes) are skipped rather than failed — the point of the sweep is the
//! feasible frontier. Cells run through [`run_cells`], so the sweep is
//! journaled, resumable, fleet-shardable and fault-injectable like every
//! paper artifact.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::sharer::DirOrg;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};
use crate::NetworkKind;

/// The node counts swept (the full map is only feasible at the first).
pub const DIRSCALE_PROCS: [usize; 3] = [64, 256, 1024];

/// The protocol combinations compared under each organization: the
/// baseline plus the paper's P, P+CW and P+M combinations, so the sweep
/// shows whether the extension gains survive an inexact sharer set.
pub const DIRSCALE_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::PCw,
    ProtocolKind::PM,
];

/// The interconnect every dirscale cell runs on: the two-level mesh is
/// the only modelled topology that reaches 1024 nodes, and using it at
/// every size keeps the organization comparison apples-to-apples.
pub const DIRSCALE_NETWORK: NetworkKind = NetworkKind::HierMesh { link_bits: 64 };

/// Result of the directory-organization scaling sweep for one
/// application.
#[derive(Debug)]
pub struct Dirscale {
    /// Application name.
    pub app: String,
    /// One row per feasible `(procs, organization)` pair, procs-major in
    /// [`DIRSCALE_PROCS`] × [`DirOrg::ALL`] order.
    pub rows: Vec<DirscaleRow>,
}

/// Metrics for one machine size under one directory organization.
#[derive(Debug)]
pub struct DirscaleRow {
    /// Processor count.
    pub procs: usize,
    /// Directory organization.
    pub org: DirOrg,
    /// Metrics per protocol, in [`DIRSCALE_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl DirscaleRow {
    /// Relative execution times vs BASIC under the same organization and
    /// machine size.
    pub fn relative_times(&self) -> Vec<f64> {
        self.metrics
            .iter()
            .map(|m| m.relative_time(&self.metrics[0]))
            .collect()
    }

    /// Summed directory-overflow activity across the row's protocols:
    /// `(overflows, broadcasts, recalls)`.
    pub fn dir_activity(&self) -> (u64, u64, u64) {
        self.metrics.iter().fold((0, 0, 0), |(o, b, r), m| {
            (
                o + m.dir_overflows,
                b + m.dir_broadcasts,
                r + m.dir_recalls,
            )
        })
    }
}

/// The feasible `(procs, org)` grid of the sweep, in row order.
fn grid() -> Vec<(usize, DirOrg)> {
    DIRSCALE_PROCS
        .into_iter()
        .flat_map(|procs| {
            DirOrg::ALL
                .into_iter()
                .filter(move |org| org.validate(procs).is_ok())
                .map(move |org| (procs, org))
        })
        .collect()
}

/// Runs the directory-organization scaling sweep. `make_workload` builds
/// the application for a given processor count (as in
/// [`super::scaling`]).
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn dirscale<F>(app_name: &str, make_workload: F) -> Result<Dirscale, SweepError>
where
    F: FnMut(usize) -> Workload,
{
    dirscale_with(app_name, make_workload, &SweepOpts::default())
}

/// [`dirscale`] with explicit sweep options (worker threads, fault plan,
/// journal/fleet, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn dirscale_with<F>(
    app_name: &str,
    mut make_workload: F,
    opts: &SweepOpts,
) -> Result<Dirscale, SweepError>
where
    F: FnMut(usize) -> Workload,
{
    let workloads: Vec<Workload> = DIRSCALE_PROCS.into_iter().map(&mut make_workload).collect();
    let workload_for = |procs: usize| {
        &workloads[DIRSCALE_PROCS
            .iter()
            .position(|&p| p == procs)
            .expect("grid procs come from DIRSCALE_PROCS")]
    };
    let grid = grid();
    let nk = DIRSCALE_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = grid
        .iter()
        .flat_map(|&(procs, org)| {
            DIRSCALE_PROTOCOLS.iter().map(move |&kind| {
                Cell::on(workload_for(procs), kind, Consistency::Rc, DIRSCALE_NETWORK)
                    .with_dir(org)
            })
        })
        .collect();
    let all = run_cells("dirscale", &cells, opts)?;
    check_len("dirscale", all.len(), grid.len() * nk)?;
    let rows = grid
        .into_iter()
        .zip(all.chunks_exact(nk))
        .map(|((procs, org), chunk)| DirscaleRow {
            procs,
            org,
            metrics: chunk.to_vec(),
        })
        .collect();
    Ok(Dirscale {
        app: app_name.to_owned(),
        rows,
    })
}

impl fmt::Display for Dirscale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Directory organizations (extension experiment): {} exec time relative to BASIC \
             under each organization (RC, hierarchical mesh)",
            self.app
        )?;
        let mut header = vec![
            "procs".to_owned(),
            "dir".to_owned(),
            "BASIC exec".to_owned(),
        ];
        header.extend(
            DIRSCALE_PROTOCOLS
                .iter()
                .skip(1)
                .map(|k| k.name().to_owned()),
        );
        header.extend(["ovf".to_owned(), "bcast".to_owned(), "recall".to_owned()]);
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let rel = row.relative_times();
            let (ovf, bcast, recall) = row.dir_activity();
            let mut cells = vec![
                row.procs.to_string(),
                row.org.cli_name(),
                row.metrics[0].exec_cycles.to_string(),
            ];
            cells.extend(rel.iter().skip(1).map(|r| format!("{r:.2}")));
            cells.extend([ovf.to_string(), bcast.to_string(), recall.to_string()]);
            t.row(cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_skips_infeasible_organizations() {
        let g = grid();
        // 64 nodes: every organization; 256/1024: all but the full map.
        assert_eq!(g.len(), DirOrg::ALL.len() + 2 * (DirOrg::ALL.len() - 1));
        assert!(g.contains(&(64, DirOrg::FullMap)));
        assert!(!g.iter().any(|&(p, o)| p > 64 && o == DirOrg::FullMap));
        // Row order is procs-major so resumed sweeps reassemble rows
        // identically.
        let mut sorted = g.clone();
        sorted.sort_by_key(|&(p, _)| p);
        assert_eq!(
            g.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            sorted.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
    }
}
