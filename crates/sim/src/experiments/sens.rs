//! Section 5.4: sensitivity to buffer depth and SLC size.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_memsys::Timing;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::pool::run_ordered;
use super::runner::{run_protocol_cfg, SweepOpts};
use crate::{NetworkKind, SimError};

/// The protocols compared in the sensitivity study.
pub const SENS_PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::Cw,
    ProtocolKind::M,
    ProtocolKind::PCw,
    ProtocolKind::PM,
];

/// Result of one §5.4 sensitivity sweep.
#[derive(Debug)]
pub struct Sensitivity {
    /// Which variant ran ("FLWB4/SLWB4" or "16-KB SLC").
    pub variant: &'static str,
    /// One row per application.
    pub rows: Vec<SensRow>,
}

/// One application's sensitivity data.
#[derive(Debug)]
pub struct SensRow {
    /// Application name.
    pub app: String,
    /// Baseline-parameter metrics per protocol.
    pub default_metrics: Vec<Metrics>,
    /// Constrained-parameter metrics per protocol.
    pub constrained_metrics: Vec<Metrics>,
}

impl SensRow {
    /// Slowdown of each protocol caused by the constraint
    /// (constrained / default execution time), in protocol order.
    pub fn slowdowns(&self) -> Vec<f64> {
        self.default_metrics
            .iter()
            .zip(&self.constrained_metrics)
            .map(|(d, c)| c.relative_time(d))
            .collect()
    }
}

/// Which §5.4 constraint to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// 4-entry FLWB and SLWB ("only BASIC and P suffered to some extent").
    SmallBuffers,
    /// 16-KB direct-mapped SLC ("the combinations yielding substantial
    /// gains with infinite caches did so too with limited caches").
    SmallSlc,
}

/// Runs a §5.4 sensitivity sweep under RC on the uniform network.
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn sensitivity(suite: &[Workload], constraint: Constraint) -> Result<Sensitivity, SimError> {
    sensitivity_with(suite, constraint, &SweepOpts::default())
}

/// [`sensitivity`] with explicit sweep options (worker threads, fault plan).
///
/// # Errors
///
/// Propagates the lowest-indexed [`SimError`] of the sweep.
pub fn sensitivity_with(
    suite: &[Workload],
    constraint: Constraint,
    opts: &SweepOpts,
) -> Result<Sensitivity, SimError> {
    let (variant, timing) = match constraint {
        Constraint::SmallBuffers => ("FLWB4/SLWB4", Timing::paper_default().with_small_buffers()),
        Constraint::SmallSlc => ("16-KB SLC", Timing::paper_default().with_limited_slc()),
    };
    // Per app: each protocol at default parameters, then constrained.
    let per_app = 2 * SENS_PROTOCOLS.len();
    let all = run_ordered(opts.jobs, suite.len() * per_app, |i| {
        let within = i % per_app;
        run_protocol_cfg(
            &suite[i / per_app],
            SENS_PROTOCOLS[within / 2],
            Consistency::Rc,
            NetworkKind::Uniform,
            if within.is_multiple_of(2) {
                None
            } else {
                Some(timing.clone())
            },
            opts.fault,
        )
    })?;
    let mut all = all.into_iter();
    let rows = suite
        .iter()
        .map(|w| {
            let mut default_metrics = Vec::with_capacity(SENS_PROTOCOLS.len());
            let mut constrained_metrics = Vec::with_capacity(SENS_PROTOCOLS.len());
            for _ in SENS_PROTOCOLS {
                default_metrics.push(all.next().expect("default run per protocol"));
                constrained_metrics.push(all.next().expect("constrained run per protocol"));
            }
            SensRow {
                app: w.name().to_owned(),
                default_metrics,
                constrained_metrics,
            }
        })
        .collect();
    Ok(Sensitivity { variant, rows })
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 5.4 sensitivity: slowdown with {} (constrained / default)",
            self.variant
        )?;
        let mut header = vec!["app".to_owned()];
        header.extend(SENS_PROTOCOLS.iter().map(|k| k.name().to_owned()));
        let mut t = TextTable::new(header);
        for row in &self.rows {
            t.row_f64(&row.app, &row.slowdowns(), 3);
        }
        write!(f, "{t}")
    }
}
