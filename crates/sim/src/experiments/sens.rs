//! Section 5.4: sensitivity to buffer depth and SLC size.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_memsys::Timing;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};

/// The protocols compared in the sensitivity study.
pub const SENS_PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::Cw,
    ProtocolKind::M,
    ProtocolKind::PCw,
    ProtocolKind::PM,
];

/// Result of one §5.4 sensitivity sweep.
#[derive(Debug)]
pub struct Sensitivity {
    /// Which variant ran ("FLWB4/SLWB4" or "16-KB SLC").
    pub variant: &'static str,
    /// One row per application.
    pub rows: Vec<SensRow>,
}

/// One application's sensitivity data.
#[derive(Debug)]
pub struct SensRow {
    /// Application name.
    pub app: String,
    /// Baseline-parameter metrics per protocol.
    pub default_metrics: Vec<Metrics>,
    /// Constrained-parameter metrics per protocol.
    pub constrained_metrics: Vec<Metrics>,
}

impl SensRow {
    /// Slowdown of each protocol caused by the constraint
    /// (constrained / default execution time), in protocol order.
    pub fn slowdowns(&self) -> Vec<f64> {
        self.default_metrics
            .iter()
            .zip(&self.constrained_metrics)
            .map(|(d, c)| c.relative_time(d))
            .collect()
    }
}

/// Which §5.4 constraint to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// 4-entry FLWB and SLWB ("only BASIC and P suffered to some extent").
    SmallBuffers,
    /// 16-KB direct-mapped SLC ("the combinations yielding substantial
    /// gains with infinite caches did so too with limited caches").
    SmallSlc,
}

/// Runs a §5.4 sensitivity sweep under RC on the uniform network.
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn sensitivity(suite: &[Workload], constraint: Constraint) -> Result<Sensitivity, SweepError> {
    sensitivity_with(suite, constraint, &SweepOpts::default())
}

/// [`sensitivity`] with explicit sweep options (worker threads, fault
/// plan, journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn sensitivity_with(
    suite: &[Workload],
    constraint: Constraint,
    opts: &SweepOpts,
) -> Result<Sensitivity, SweepError> {
    let (variant, tag, timing) = match constraint {
        Constraint::SmallBuffers => (
            "FLWB4/SLWB4",
            "flwb4-slwb4",
            Timing::paper_default().with_small_buffers(),
        ),
        Constraint::SmallSlc => (
            "16-KB SLC",
            "slc16k",
            Timing::paper_default().with_limited_slc(),
        ),
    };
    // Per app: each protocol at default parameters, then constrained. The
    // default-timing cells share journal keys across the two constraint
    // sweeps on purpose: they are the same configuration, so a resumed
    // `run-all` simulates them once.
    let per_app = 2 * SENS_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            let timing = &timing;
            SENS_PROTOCOLS.iter().flat_map(move |&kind| {
                [
                    Cell::new(w, kind, Consistency::Rc),
                    Cell::new(w, kind, Consistency::Rc).timed(timing.clone(), tag),
                ]
            })
        })
        .collect();
    let all = run_cells("sens", &cells, opts)?;
    check_len("sens", all.len(), suite.len() * per_app)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(per_app))
        .map(|(w, chunk)| {
            let mut default_metrics = Vec::with_capacity(SENS_PROTOCOLS.len());
            let mut constrained_metrics = Vec::with_capacity(SENS_PROTOCOLS.len());
            for pair in chunk.chunks_exact(2) {
                default_metrics.push(pair[0].clone());
                constrained_metrics.push(pair[1].clone());
            }
            SensRow {
                app: w.name().to_owned(),
                default_metrics,
                constrained_metrics,
            }
        })
        .collect();
    Ok(Sensitivity { variant, rows })
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 5.4 sensitivity: slowdown with {} (constrained / default)",
            self.variant
        )?;
        let mut header = vec!["app".to_owned()];
        header.extend(SENS_PROTOCOLS.iter().map(|k| k.name().to_owned()));
        let mut t = TextTable::new(header);
        for row in &self.rows {
            t.row_f64(&row.app, &row.slowdowns(), 3);
        }
        write!(f, "{t}")
    }
}
