//! Extension experiment (not in the paper): interconnect topology sweep.
//!
//! Section 5.3 varies mesh link width; this sweep also varies the
//! *topology*, comparing the ideal uniform network, the 4×4 wormhole mesh
//! and a bidirectional ring at equal link width. Rings have roughly half
//! the bisection bandwidth of the mesh at 16 nodes, so they separate the
//! bandwidth-hungry P+CW from the bandwidth-frugal P+M even more sharply
//! than the 16-bit mesh does.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::TextTable;
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};
use crate::NetworkKind;

/// The topologies swept (at 32-bit links for the contended ones).
pub const TOPOLOGIES: [NetworkKind; 3] = [
    NetworkKind::Uniform,
    NetworkKind::Mesh { link_bits: 32 },
    NetworkKind::Ring { link_bits: 32 },
];

/// Result of the topology sweep.
#[derive(Debug)]
pub struct Topology {
    /// One row per application.
    pub rows: Vec<TopologyRow>,
}

/// Per-application execution-time ratios vs BASIC on the same topology.
#[derive(Debug)]
pub struct TopologyRow {
    /// Application name.
    pub app: String,
    /// P+CW / BASIC per topology, in [`TOPOLOGIES`] order.
    pub pcw: [f64; 3],
    /// P+M / BASIC per topology.
    pub pm: [f64; 3],
}

/// Runs the topology sweep under RC.
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn topology(suite: &[Workload]) -> Result<Topology, SweepError> {
    topology_with(suite, &SweepOpts::default())
}

/// The protocols run on each topology (BASIC is the per-network baseline).
const TOPOLOGY_PROTOCOLS: [ProtocolKind; 3] =
    [ProtocolKind::Basic, ProtocolKind::PCw, ProtocolKind::PM];

/// [`topology`] with explicit sweep options (worker threads, fault plan,
/// journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn topology_with(suite: &[Workload], opts: &SweepOpts) -> Result<Topology, SweepError> {
    // Per app: TOPOLOGIES × {BASIC, P+CW, P+M}.
    let per_app = TOPOLOGIES.len() * TOPOLOGY_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            TOPOLOGIES.iter().flat_map(move |&network| {
                TOPOLOGY_PROTOCOLS
                    .iter()
                    .map(move |&kind| Cell::on(w, kind, Consistency::Rc, network))
            })
        })
        .collect();
    let all = run_cells("topology", &cells, opts)?;
    check_len("topology", all.len(), suite.len() * per_app)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(per_app))
        .map(|(w, chunk)| {
            let mut pcw = [0.0; 3];
            let mut pm = [0.0; 3];
            for (i, net) in chunk.chunks_exact(TOPOLOGY_PROTOCOLS.len()).enumerate() {
                let base = &net[0];
                pcw[i] = net[1].relative_time(base);
                pm[i] = net[2].relative_time(base);
            }
            TopologyRow {
                app: w.name().to_owned(),
                pcw,
                pm,
            }
        })
        .collect();
    Ok(Topology { rows })
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Topology sweep (extension): exec time vs BASIC on each interconnect (RC, 32-bit links)"
        )?;
        let mut t = TextTable::new(vec![
            "app",
            "P+CW unif",
            "P+CW mesh",
            "P+CW ring",
            "P+M unif",
            "P+M mesh",
            "P+M ring",
        ]);
        for row in &self.rows {
            let vals = [
                row.pcw[0], row.pcw[1], row.pcw[2], row.pm[0], row.pm[1], row.pm[2],
            ];
            t.row_f64(&row.app, &vals, 2);
        }
        write!(f, "{t}")
    }
}
