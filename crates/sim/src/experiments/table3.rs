//! Table 3: execution-time ratios on wormhole meshes (network contention).

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::TextTable;
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};
use crate::NetworkKind;

/// The link widths of Section 5.3, in bits.
pub const LINK_WIDTHS: [u32; 3] = [64, 32, 16];

/// Result of the Table-3 sweep.
#[derive(Debug)]
pub struct Table3 {
    /// One row per application.
    pub rows: Vec<Table3Row>,
}

/// Execution-time ratios (protocol / BASIC on the same mesh) per link
/// width, for P+CW and P+M.
#[derive(Debug)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// P+CW / BASIC ratios for 64-, 32- and 16-bit links.
    pub pcw: [f64; 3],
    /// P+M / BASIC ratios for 64-, 32- and 16-bit links.
    pub pm: [f64; 3],
}

impl Table3Row {
    /// How much each combination degrades from the widest to the narrowest
    /// mesh (the paper's observation: P+CW is sensitive to contention, P+M
    /// is not).
    pub fn degradation(&self) -> (f64, f64) {
        (self.pcw[2] - self.pcw[0], self.pm[2] - self.pm[0])
    }
}

/// Runs the Table-3 sweep: {BASIC, P+CW, P+M} × {64, 32, 16}-bit meshes
/// under RC.
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn table3(suite: &[Workload]) -> Result<Table3, SweepError> {
    table3_with(suite, &SweepOpts::default())
}

/// The protocols run at each link width (BASIC is the per-mesh baseline).
const TABLE3_PROTOCOLS: [ProtocolKind; 3] =
    [ProtocolKind::Basic, ProtocolKind::PCw, ProtocolKind::PM];

/// [`table3`] with explicit sweep options (worker threads, fault plan,
/// journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn table3_with(suite: &[Workload], opts: &SweepOpts) -> Result<Table3, SweepError> {
    // Per app: LINK_WIDTHS × {BASIC, P+CW, P+M}.
    let per_app = LINK_WIDTHS.len() * TABLE3_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            LINK_WIDTHS.iter().flat_map(move |&link_bits| {
                TABLE3_PROTOCOLS.iter().map(move |&kind| {
                    Cell::on(w, kind, Consistency::Rc, NetworkKind::Mesh { link_bits })
                })
            })
        })
        .collect();
    let all = run_cells("table3", &cells, opts)?;
    check_len("table3", all.len(), suite.len() * per_app)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(per_app))
        .map(|(w, chunk)| {
            let mut pcw = [0.0; 3];
            let mut pm = [0.0; 3];
            for (i, width) in chunk.chunks_exact(TABLE3_PROTOCOLS.len()).enumerate() {
                let base = &width[0];
                pcw[i] = width[1].relative_time(base);
                pm[i] = width[2].relative_time(base);
            }
            Table3Row {
                app: w.name().to_owned(),
                pcw,
                pm,
            }
        })
        .collect();
    Ok(Table3 { rows })
}

impl Table3 {
    /// CSV rendering: `app,protocol,link_bits,exec_ratio_vs_basic`.
    pub fn csv(&self) -> String {
        let mut out = String::from("app,protocol,link_bits,exec_ratio_vs_basic\n");
        for row in &self.rows {
            for (i, bits) in LINK_WIDTHS.iter().enumerate() {
                out.push_str(&format!("{},P+CW,{bits},{:.4}\n", row.app, row.pcw[i]));
                out.push_str(&format!("{},P+M,{bits},{:.4}\n", row.app, row.pm[i]));
            }
        }
        out
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: execution-time ratio vs BASIC on wormhole meshes (RC)"
        )?;
        let mut t = TextTable::new(vec![
            "app", "P+CW 64b", "P+CW 32b", "P+CW 16b", "P+M 64b", "P+M 32b", "P+M 16b",
        ]);
        for row in &self.rows {
            let vals = [
                row.pcw[0], row.pcw[1], row.pcw[2], row.pm[0], row.pm[1], row.pm[2],
            ];
            t.row_f64(&row.app, &vals, 2);
        }
        write!(f, "{t}")
    }
}
