//! Extension experiment (not in the paper): processor-count scaling.
//!
//! The paper's conclusions are drawn at 16 processors. This sweep reruns
//! the key combinations at 4, 8, 16 and 32 nodes to show how the gains
//! move with scale: invalidation fan-outs and lock contention grow with
//! the machine, so the migratory optimization's ownership elimination and
//! CW's coherence-miss elimination both matter *more* at larger N, while
//! the prefetcher's benefit is scale-neutral. `DESIGN.md` lists this under
//! future-work items the paper's framework supports.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};

/// The node counts swept.
pub const SCALING_PROCS: [usize; 5] = [4, 8, 16, 32, 64];

/// The protocols compared at each scale.
pub const SCALING_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Basic,
    ProtocolKind::P,
    ProtocolKind::PCw,
    ProtocolKind::PM,
];

/// Result of the scaling sweep for one application.
#[derive(Debug)]
pub struct Scaling {
    /// Application name.
    pub app: String,
    /// One row per machine size, in [`SCALING_PROCS`] order.
    pub rows: Vec<ScalingRow>,
}

/// Metrics at one machine size.
#[derive(Debug)]
pub struct ScalingRow {
    /// Processor count.
    pub procs: usize,
    /// Metrics per protocol, in [`SCALING_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl ScalingRow {
    /// Relative execution times vs BASIC at the same machine size.
    pub fn relative_times(&self) -> Vec<f64> {
        self.metrics
            .iter()
            .map(|m| m.relative_time(&self.metrics[0]))
            .collect()
    }
}

/// Runs the scaling sweep. `make_workload` builds the application for a
/// given processor count (workload sizes are per-machine, so the generator
/// is a callback instead of a fixed [`Workload`]).
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn scaling<F>(app_name: &str, make_workload: F) -> Result<Scaling, SweepError>
where
    F: FnMut(usize) -> Workload,
{
    scaling_with(app_name, make_workload, &SweepOpts::default())
}

/// [`scaling`] with explicit sweep options (worker threads, fault plan,
/// journal, quarantine, cancellation).
///
/// The workloads for all machine sizes are generated up front (in
/// [`SCALING_PROCS`] order, so generation sees the same call sequence as
/// the serial sweep) and the runs fan out over the worker pool; cloning is
/// avoided because [`Workload`] shares its programs by reference count.
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`].
pub fn scaling_with<F>(
    app_name: &str,
    mut make_workload: F,
    opts: &SweepOpts,
) -> Result<Scaling, SweepError>
where
    F: FnMut(usize) -> Workload,
{
    let workloads: Vec<Workload> = SCALING_PROCS.into_iter().map(&mut make_workload).collect();
    let nk = SCALING_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = workloads
        .iter()
        .flat_map(|w| {
            SCALING_PROTOCOLS
                .iter()
                .map(move |&kind| Cell::new(w, kind, Consistency::Rc))
        })
        .collect();
    let all = run_cells("scaling", &cells, opts)?;
    check_len("scaling", all.len(), workloads.len() * nk)?;
    let rows = SCALING_PROCS
        .into_iter()
        .zip(all.chunks_exact(nk))
        .map(|(procs, chunk)| ScalingRow {
            procs,
            metrics: chunk.to_vec(),
        })
        .collect();
    Ok(Scaling {
        app: app_name.to_owned(),
        rows,
    })
}

impl fmt::Display for Scaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scaling (extension experiment): {} exec time relative to BASIC at each N (RC)",
            self.app
        )?;
        let mut header = vec!["procs".to_owned(), "BASIC exec".to_owned()];
        header.extend(
            SCALING_PROTOCOLS
                .iter()
                .skip(1)
                .map(|k| k.name().to_owned()),
        );
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let rel = row.relative_times();
            let mut cells = vec![
                row.procs.to_string(),
                row.metrics[0].exec_cycles.to_string(),
            ];
            cells.extend(rel.iter().skip(1).map(|r| format!("{r:.2}")));
            t.row(cells);
        }
        write!(f, "{t}")
    }
}
