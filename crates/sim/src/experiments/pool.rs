//! Work-stealing executor for sweep fan-out.
//!
//! Every experiment driver is a nested loop over independent simulator
//! configurations (application × protocol × consistency × network). This
//! module flattens such a loop into an indexed task list and runs it on a
//! pool of scoped worker threads: a shared atomic cursor hands out the next
//! unclaimed configuration index, so a worker that finishes a short run
//! immediately steals the next pending one instead of idling behind a
//! static partition (MP3D at 64 procs takes ~20× longer than LU at 4).
//!
//! Determinism: each configuration runs an isolated [`crate::Machine`]
//! whose behaviour depends only on its inputs, and results are written to a
//! per-index slot and collected in index order. The output is therefore
//! byte-identical to the serial loop for any worker count — `jobs` affects
//! wall-clock only. `tests/parallel_determinism.rs` locks this in.
//!
//! Built on `std::thread::scope` only — no external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `jobs` worker threads, checking `should_stop`
/// before each claim, and returns per-index results in order.
///
/// `None` marks an index that was never claimed because `should_stop`
/// turned true first — the crash-safe sweep orchestrator uses this for
/// fail-fast drains and cooperative SIGINT cancellation. Claimed tasks
/// always run to completion (the stop flag is only consulted *between*
/// cells), so a drain never tears a simulator run in half.
///
/// With `jobs <= 1` (or fewer than two tasks) the loop runs inline on the
/// caller's thread with no pool setup at all.
///
/// # Panics
///
/// Propagates a panic from `f` (callers that need isolation wrap `f` in
/// `catch_unwind` themselves — see [`super::runner::run_cells`]).
pub fn run_collect<T, F, S>(jobs: usize, n: usize, should_stop: &S, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    S: Fn() -> bool + Sync + ?Sized,
{
    if jobs <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if should_stop() {
                break;
            }
            out.push(Some(f(i)));
        }
        out.resize_with(n, || None);
        return out;
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                if should_stop() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned"))
        .collect()
}

/// Runs `f(0..n)` across `jobs` worker threads and returns the results in
/// index order.
///
/// With `jobs <= 1` (or fewer than two tasks) the loop runs inline on the
/// caller's thread with no pool setup at all, so serial sweeps pay nothing
/// for the parallel capability.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task — the same one the
/// serial loop would have hit first. (Unlike the serial loop, later tasks
/// still run; their results are discarded.)
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn run_ordered<T, E, F>(jobs: usize, n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    run_collect(jobs, n, &|| false, f)
        .into_iter()
        .map(|slot| slot.expect("every index claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| -> Result<usize, ()> { Ok(i * i) };
        let serial = run_ordered(1, 100, f).unwrap();
        let parallel = run_ordered(8, 100, f).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn lowest_index_error_wins() {
        let f = |i: usize| -> Result<usize, usize> {
            if i % 3 == 2 {
                Err(i)
            } else {
                Ok(i)
            }
        };
        assert_eq!(run_ordered(4, 50, f), Err(2));
        assert_eq!(run_ordered(1, 50, f), Err(2));
    }

    #[test]
    fn more_workers_than_tasks() {
        let r = run_ordered(16, 3, |i| -> Result<usize, ()> { Ok(i + 1) }).unwrap();
        assert_eq!(r, vec![1, 2, 3]);
    }

    #[test]
    fn empty_task_list() {
        let r: Vec<usize> = run_ordered(4, 0, |_| -> Result<usize, ()> { unreachable!() }).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn run_collect_without_stop_claims_everything() {
        for jobs in [1, 4] {
            let r = run_collect(jobs, 10, &|| false, |i| i * 2);
            assert_eq!(r.len(), 10);
            assert!(r.iter().all(Option::is_some));
            assert_eq!(r[4], Some(8));
        }
    }

    #[test]
    fn run_collect_stop_leaves_unclaimed_slots_none() {
        use std::sync::atomic::AtomicBool;
        for jobs in [1, 4] {
            let stop = AtomicBool::new(false);
            let r = run_collect(jobs, 64, &|| stop.load(Ordering::Relaxed), |i| {
                if i == 3 {
                    stop.store(true, Ordering::Relaxed);
                }
                i
            });
            assert_eq!(r.len(), 64);
            assert_eq!(r[3], Some(3), "claimed cells run to completion");
            assert!(
                r.iter().any(Option::is_none),
                "stop flag must leave later cells unclaimed"
            );
        }
    }

    #[test]
    fn run_collect_stop_set_up_front_runs_nothing() {
        let r = run_collect(4, 8, &|| true, |i| i);
        assert_eq!(r, vec![None; 8]);
    }
}
