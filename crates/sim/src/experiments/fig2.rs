//! Figure 2: execution times relative to BASIC under release consistency.

use std::fmt;

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_stats::{Metrics, TextTable};
use dirext_trace::Workload;

use super::runner::{check_len, run_cells, Cell, SweepError, SweepOpts};

/// The protocols of Figure 2, in the paper's bar order.
pub const FIG2_PROTOCOLS: [ProtocolKind; 8] = ProtocolKind::ALL;

/// Result of the Figure-2 sweep: for each application, one [`Metrics`] per
/// protocol (BASIC first).
#[derive(Debug)]
pub struct Fig2 {
    /// One row per application.
    pub rows: Vec<Fig2Row>,
}

/// One application's Figure-2 data.
#[derive(Debug)]
pub struct Fig2Row {
    /// Application name.
    pub app: String,
    /// Metrics per protocol, in [`FIG2_PROTOCOLS`] order.
    pub metrics: Vec<Metrics>,
}

impl Fig2Row {
    /// The BASIC run (the normalization baseline).
    pub fn baseline(&self) -> &Metrics {
        &self.metrics[0]
    }

    /// Relative execution times (BASIC = 1.0), in protocol order.
    pub fn relative_times(&self) -> Vec<f64> {
        self.metrics
            .iter()
            .map(|m| m.relative_time(self.baseline()))
            .collect()
    }
}

/// Runs the Figure-2 sweep: all eight protocols under RC on the uniform
/// ("infinite bandwidth") network.
///
/// # Errors
///
/// Propagates the first [`SweepError`].
pub fn fig2(suite: &[Workload]) -> Result<Fig2, SweepError> {
    fig2_with(suite, &SweepOpts::default())
}

/// [`fig2`] with explicit sweep options (worker threads, fault plan,
/// journal, quarantine, cancellation).
///
/// # Errors
///
/// Propagates the sweep's [`SweepError`] (lowest-indexed failure, or the
/// full quarantine under `keep_going`).
pub fn fig2_with(suite: &[Workload], opts: &SweepOpts) -> Result<Fig2, SweepError> {
    let nk = FIG2_PROTOCOLS.len();
    let cells: Vec<Cell<'_>> = suite
        .iter()
        .flat_map(|w| {
            FIG2_PROTOCOLS
                .iter()
                .map(move |&kind| Cell::new(w, kind, Consistency::Rc))
        })
        .collect();
    let all = run_cells("fig2", &cells, opts)?;
    check_len("fig2", all.len(), suite.len() * nk)?;
    let rows = suite
        .iter()
        .zip(all.chunks_exact(nk))
        .map(|(w, chunk)| Fig2Row {
            app: w.name().to_owned(),
            metrics: chunk.to_vec(),
        })
        .collect();
    Ok(Fig2 { rows })
}

impl Fig2 {
    /// CSV rendering: `app,protocol,relative_time,exec_cycles`.
    pub fn csv(&self) -> String {
        let mut out = String::from("app,protocol,relative_time,exec_cycles\n");
        for row in &self.rows {
            for (kind, m) in FIG2_PROTOCOLS.iter().zip(&row.metrics) {
                out.push_str(&format!(
                    "{},{},{:.4},{}\n",
                    row.app,
                    kind.name(),
                    m.relative_time(row.baseline()),
                    m.exec_cycles
                ));
            }
        }
        out
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2: execution time relative to BASIC (RC, uniform network)"
        )?;
        let mut header = vec!["app".to_owned()];
        header.extend(FIG2_PROTOCOLS.iter().map(|k| k.name().to_owned()));
        let mut t = TextTable::new(header);
        for row in &self.rows {
            t.row_f64(&row.app, &row.relative_times(), 2);
        }
        write!(f, "{t}")?;
        writeln!(f)?;
        writeln!(f, "decomposition (busy / read / acquire, % of each bar):")?;
        let mut header = vec!["app".to_owned()];
        header.extend(FIG2_PROTOCOLS.iter().map(|k| k.name().to_owned()));
        let mut t = TextTable::new(header);
        for row in &self.rows {
            let cells: Vec<String> = std::iter::once(row.app.clone())
                .chain(row.metrics.iter().map(|m| {
                    let fr = m.stalls.fractions();
                    format!(
                        "{:.0}/{:.0}/{:.0}",
                        fr[0] * 100.0,
                        fr[1] * 100.0,
                        (fr[3] + fr[5]) * 100.0
                    )
                }))
                .collect();
            t.row(cells);
        }
        write!(f, "{t}")
    }
}
