//! Append-only sweep journal: a write-ahead log of completed cells.
//!
//! A full paper sweep is hundreds of independent machine runs ("cells").
//! The journal makes that fleet crash-safe: every finished cell is
//! appended to a JSONL file *before* the sweep moves on, so a killed or
//! interrupted run can be re-launched with `--resume` and skip every cell
//! that already completed. Because [`Metrics`] is built entirely from
//! integers, strings and integer vectors, the stored record round-trips
//! exactly and a resumed sweep reassembles **byte-identical** artifacts
//! versus an uninterrupted run.
//!
//! # Cell keys
//!
//! Each cell is identified by a deterministic, self-describing key:
//!
//! ```text
//! driver/workload@procs.events.refs/protocol/consistency/network/variant/fault[/dir=ORG]
//! e.g.  fig2/MP3D@16.48576.23712/P+CW/RC/uniform/base/f=none
//! e.g.  dirscale/MP3D@256.48576.23712/P/RC/hmesh64/base/f=none/dir=ptr4b
//! ```
//!
//! The workload component carries a content fingerprint (processor count,
//! total events, total shared references) so the same application at a
//! different `--scale` or `--procs` never collides; the variant tags a
//! timing override (the §5.4 sensitivity runs); the fault component
//! encodes the full fault plan. A non-default directory organization
//! appends a final `dir=` segment — full-map cells keep the historical
//! key shape, so journals written before the directory axis existed
//! still resolve. Journals from unrelated sweeps can therefore share a
//! file without ambiguity — a lookup simply misses.
//!
//! # File format
//!
//! Line 1 is a version header; every further line is one record:
//! `status` is `"ok"` (with the full metrics) or `"failed"` (with the
//! error text and attempt count). New journals are written as version 2
//! ([`HEADER_V2`]): each record line is prefixed with the CRC32 of its
//! JSON payload (`xxxxxxxx {json}`), so a storage bit-flip that leaves
//! the JSON well-formed — a corrupted digit inside a metric — is caught
//! by checksum instead of silently merged into an artifact. Version-1
//! files ([`HEADER`], no checksums) still load, and a resumed v1 journal
//! keeps appending v1 lines so the file stays internally consistent.
//!
//! Records are written under a lock with a single `write_all` and
//! duplicate keys are resolved last-wins, so concurrent workers and
//! re-runs are safe. A crash can at worst truncate the final line;
//! unparseable trailing lines are dropped on load and counted in
//! [`Journal::recovered_lines`], while checksum-failed lines whose JSON
//! still parses are quarantined — dropped and counted separately in
//! [`Journal::corrupt_lines`], and the cells they claimed to record run
//! again. Failed cells are *not* treated as completed — a resumed sweep
//! runs them again.
//!
//! # Fencing tokens
//!
//! Every record carries a `fence` — the fencing token of the lease under
//! which the cell ran (0 for single-process sweeps). In fleet mode a cell
//! whose worker died can be reclaimed and re-run under a strictly higher
//! fence; when [`assemble`] folds multiple worker journals, duplicate
//! keys resolve last-wins **by fence**, so a stale completion from a
//! paused-then-resumed dead worker can never shadow the reclaimer's
//! result. Pre-fleet journals (no `fence` field) load as fence 0.

use std::collections::HashMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dirext_core::sharer::DirOrg;
use dirext_core::{Consistency, ProtocolKind};
use dirext_network::FaultPlan;
use dirext_stats::Metrics;
use dirext_trace::Workload;
use serde::{Deserialize, Serialize};

use crate::NetworkKind;

/// Version-1 header: record lines are bare JSON, no checksums. Still
/// readable; no longer written for new journals.
pub const HEADER: &str = "{\"dirext_journal\":1}";

/// Version-2 header: every record line is `xxxxxxxx {json}` where the
/// prefix is the lowercase-hex CRC32 (IEEE) of the JSON payload bytes.
pub const HEADER_V2: &str = "{\"dirext_journal\":2,\"line_crc\":\"crc32\"}";

/// CRC32 (IEEE 802.3, reflected) of `bytes` — the checksum `gzip` and
/// `cksum -o3` compute. Bitwise, no table: journal lines are small and
/// this keeps the format self-contained.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

/// Splits a v2 record line into its checksum prefix and JSON payload.
fn split_crc(line: &str) -> Option<(u32, &str)> {
    let (prefix, rest) = line.split_at_checked(8)?;
    let payload = rest.strip_prefix(' ')?;
    u32::from_str_radix(prefix, 16).ok().map(|c| (c, payload))
}

/// One record of the journal file.
#[derive(Debug, Clone, Serialize)]
struct JournalLine {
    /// The cell key (see the module docs).
    key: String,
    /// `"ok"` or `"failed"`.
    status: String,
    /// How many attempts the cell took (1 = first try).
    attempts: u32,
    /// Fencing token of the lease the cell ran under (0 = unfenced).
    fence: u64,
    /// The rendered error for failed cells.
    error: Option<String>,
    /// The full result record for completed cells.
    metrics: Option<Metrics>,
}

// Hand-written so `fence` can default to 0: journals written before fleet
// mode lack the field, and the derive's `field()` hard-errors on missing
// keys (which would silently drop every pre-fence record as "recovered").
impl Deserialize for JournalLine {
    fn deserialize(content: &serde::Content) -> Result<Self, String> {
        let fence = match content.get("fence") {
            serde::Content::Null => 0,
            v => u64::deserialize(v).map_err(|e| format!("field `fence`: {e}"))?,
        };
        Ok(JournalLine {
            key: serde::field(content, "key")?,
            status: serde::field(content, "status")?,
            attempts: serde::field(content, "attempts")?,
            fence,
            error: serde::field(content, "error")?,
            metrics: serde::field(content, "metrics")?,
        })
    }
}

/// A journal open/parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError(String);

impl JournalError {
    pub(crate) fn new(msg: impl Into<String>) -> JournalError {
        JournalError(msg.into())
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal: {}", self.0)
    }
}

impl std::error::Error for JournalError {}

/// One completed cell as read back from a journal file.
#[derive(Debug, Clone)]
pub struct OkCell {
    /// Fencing token the cell completed under (0 = unfenced).
    pub fence: u64,
    /// Attempts the cell took.
    pub attempts: u32,
    /// The recorded result.
    pub metrics: Metrics,
}

/// One failed cell's diagnostics as read back from a journal file.
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// Fencing token the cell failed under (0 = unfenced).
    pub fence: u64,
    /// Attempts the cell took before giving up.
    pub attempts: u32,
    /// The rendered error.
    pub error: String,
}

struct Inner {
    file: std::fs::File,
    /// Whether appended lines carry the v2 checksum prefix (false only
    /// when resuming a version-1 file, which must stay internally v1).
    crc: bool,
    /// Completed cells only (failed cells must re-run on resume).
    completed: HashMap<String, OkCell>,
    /// Terminal failures (diagnostics for quarantine reports; a key never
    /// appears in both maps — success outranks failure).
    failed: HashMap<String, FailedCell>,
    /// Set when an append fails; surfaces as a sweep error so an
    /// interrupted run is never silently un-resumable.
    write_error: Option<String>,
}

/// The append-only sweep journal. Thread-safe: sweep workers record cells
/// concurrently.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
    loaded: usize,
    recovered: usize,
    corrupt: usize,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("loaded", &self.loaded)
            .field("recovered", &self.recovered)
            .field("corrupt", &self.corrupt)
            .finish_non_exhaustive()
    }
}

/// Parses journal record lines (everything after the header), building
/// the completed/failed maps with last-wins semantics. With `crc` set
/// (version-2 files) every line must carry a matching checksum prefix: a
/// mismatch whose payload still parses as JSON is a quarantined
/// corruption, while a mismatch that is also unparseable is the familiar
/// crash-torn tail.
fn parse_records<'a>(lines: impl Iterator<Item = &'a str>, crc: bool) -> JournalScan {
    let mut completed: HashMap<String, OkCell> = HashMap::new();
    let mut failed: HashMap<String, FailedCell> = HashMap::new();
    let mut loaded = 0usize;
    let mut recovered = 0usize;
    let mut corrupt = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let payload = if crc {
            match split_crc(line) {
                Some((stored, payload)) if stored == crc32(payload.as_bytes()) => payload,
                Some((_, payload)) if serde_json::from_str::<JournalLine>(payload).is_ok() => {
                    corrupt += 1;
                    continue;
                }
                _ => {
                    recovered += 1;
                    continue;
                }
            }
        } else {
            line
        };
        match serde_json::from_str::<JournalLine>(payload) {
            Ok(rec) => {
                loaded += 1;
                if rec.status == "ok" {
                    if let Some(m) = rec.metrics {
                        // Last record wins: a re-run overrides history.
                        completed.insert(
                            rec.key.clone(),
                            OkCell {
                                fence: rec.fence,
                                attempts: rec.attempts,
                                metrics: m,
                            },
                        );
                        failed.remove(&rec.key);
                    }
                } else {
                    // A failure never invalidates an earlier success
                    // (deterministic cells cannot regress without a code
                    // change, and re-running is always safe).
                    if !completed.contains_key(&rec.key) {
                        failed.insert(
                            rec.key,
                            FailedCell {
                                fence: rec.fence,
                                attempts: rec.attempts,
                                error: rec.error.unwrap_or_default(),
                            },
                        );
                    }
                }
            }
            Err(_) => recovered += 1,
        }
    }
    JournalScan {
        completed,
        failed,
        loaded,
        recovered,
        corrupt,
    }
}

/// Classifies the first line of a journal file.
enum HeaderCheck {
    /// Valid header; parse the rest (`crc` = version-2 checksummed lines).
    Ok { crc: bool },
    /// Empty file or a crash-torn header prefix: treat as fresh.
    Fresh { recovered: usize },
    /// Some other file entirely.
    Foreign,
}

fn check_header(text: &str) -> HeaderCheck {
    let mut lines = text.lines();
    match lines.next() {
        None => HeaderCheck::Fresh { recovered: 0 },
        Some(first) if first.trim() == HEADER_V2 => HeaderCheck::Ok { crc: true },
        Some(first) if first.trim() == HEADER => HeaderCheck::Ok { crc: false },
        // A SIGKILL during `create` can leave a prefix of the header with
        // no newline; no record can follow it, so starting over is safe.
        Some(first)
            if (HEADER_V2.starts_with(first.trim_end()) || HEADER.starts_with(first.trim_end()))
                && lines.next().is_none()
                && !text.ends_with('\n') =>
        {
            HeaderCheck::Fresh { recovered: 1 }
        }
        Some(_) => HeaderCheck::Foreign,
    }
}

impl Journal {
    /// Creates a fresh journal at `path`, writing the header line.
    ///
    /// # Errors
    ///
    /// Refuses to overwrite an existing non-empty file (pass it to
    /// [`Journal::resume`] instead, or delete it), and reports I/O errors.
    pub fn create(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        if let Ok(meta) = std::fs::metadata(path) {
            if meta.len() > 0 {
                return Err(JournalError(format!(
                    "{} already exists; resume it with --resume or delete it first",
                    path.display()
                )));
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError(format!("cannot create {}: {e}", path.display())))?;
        file.write_all(format!("{HEADER_V2}\n").as_bytes())
            .map_err(|e| JournalError(format!("cannot write {}: {e}", path.display())))?;
        Ok(Journal {
            path: path.to_owned(),
            inner: Mutex::new(Inner {
                file,
                crc: true,
                completed: HashMap::new(),
                failed: HashMap::new(),
                write_error: None,
            }),
            loaded: 0,
            recovered: 0,
            corrupt: 0,
        })
    }

    /// Opens an existing journal and loads its completed cells; a missing,
    /// zero-length, or header-torn file starts a fresh journal (so
    /// `--resume` on the first run of a sweep just works, and a `SIGKILL`
    /// landing inside `create` is survivable).
    ///
    /// Unparseable lines — the typical aftermath of a `SIGKILL` landing
    /// mid-append — are dropped and counted in
    /// [`Journal::recovered_lines`]; the cells they would have recorded
    /// simply run again.
    ///
    /// # Errors
    ///
    /// Reports I/O errors and files that are not dirext journals.
    pub fn resume(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Journal::create(path);
            }
            Err(e) => return Err(JournalError(format!("cannot read {}: {e}", path.display()))),
        };
        let crc = match check_header(&text) {
            HeaderCheck::Ok { crc } => crc,
            HeaderCheck::Fresh { recovered } => {
                std::fs::remove_file(path).ok();
                let mut j = Journal::create(path)?;
                j.recovered = recovered;
                return Ok(j);
            }
            HeaderCheck::Foreign => {
                return Err(JournalError(format!(
                    "{} is not a dirext journal (expected a `{HEADER_V2}` or `{HEADER}` header)",
                    path.display()
                )));
            }
        };
        let scan = parse_records(text.lines().skip(1), crc);
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError(format!("cannot append to {}: {e}", path.display())))?;
        Ok(Journal {
            path: path.to_owned(),
            inner: Mutex::new(Inner {
                file,
                crc,
                completed: scan.completed,
                failed: scan.failed,
                write_error: None,
            }),
            loaded: scan.loaded,
            recovered: scan.recovered,
            corrupt: scan.corrupt,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records loaded from an existing file by [`Journal::resume`].
    pub fn loaded_records(&self) -> usize {
        self.loaded
    }

    /// Unparseable (crash-truncated) lines dropped on load.
    pub fn recovered_lines(&self) -> usize {
        self.recovered
    }

    /// Checksum-failed but well-formed lines quarantined on load: the
    /// on-disk bytes were altered after the record was written (storage
    /// corruption), so the record is untrusted and its cell re-runs.
    pub fn corrupt_lines(&self) -> usize {
        self.corrupt
    }

    /// Number of distinct completed cells currently known.
    pub fn completed_cells(&self) -> usize {
        self.inner.lock().expect("journal lock").completed.len()
    }

    /// The stored metrics for `key`, if that cell already completed.
    pub fn lookup(&self, key: &str) -> Option<Metrics> {
        self.inner
            .lock()
            .expect("journal lock")
            .completed
            .get(key)
            .map(|c| c.metrics.clone())
    }

    /// Like [`Journal::lookup`], but also returns the fencing token the
    /// cell completed under.
    pub fn lookup_fenced(&self, key: &str) -> Option<(u64, Metrics)> {
        self.inner
            .lock()
            .expect("journal lock")
            .completed
            .get(key)
            .map(|c| (c.fence, c.metrics.clone()))
    }

    /// Finds a completed cell whose key matches `suffix` — everything
    /// after the driver component — regardless of which driver recorded
    /// it. Ties resolve to the lexicographically smallest full key, so
    /// the answer is deterministic across journal layouts. Used by the
    /// result server to satisfy queries from any sweep's records.
    pub fn lookup_config(&self, suffix: &str) -> Option<(String, Metrics)> {
        let inner = self.inner.lock().expect("journal lock");
        let mut best: Option<&String> = None;
        for key in inner.completed.keys() {
            if key.split_once('/').map(|(_, rest)| rest) == Some(suffix)
                && best.is_none_or(|b| key < b)
            {
                best = Some(key);
            }
        }
        best.map(|k| (k.clone(), inner.completed[k].metrics.clone()))
    }

    /// Whether `key` is recorded as a terminal failure (and not since
    /// superseded by a success).
    pub fn is_failed(&self, key: &str) -> bool {
        self.inner
            .lock()
            .expect("journal lock")
            .failed
            .contains_key(key)
    }

    /// The recorded diagnostics for a failed cell.
    pub fn failed_cell(&self, key: &str) -> Option<FailedCell> {
        self.inner
            .lock()
            .expect("journal lock")
            .failed
            .get(key)
            .cloned()
    }

    /// Appends a completed cell (flushed before returning).
    pub fn record_ok(&self, key: &str, attempts: u32, metrics: &Metrics) {
        self.record_ok_fenced(key, attempts, 0, metrics);
    }

    /// Appends a completed cell under a fencing token.
    pub fn record_ok_fenced(&self, key: &str, attempts: u32, fence: u64, metrics: &Metrics) {
        self.append(JournalLine {
            key: key.to_owned(),
            status: "ok".to_owned(),
            attempts,
            fence,
            error: None,
            metrics: Some(metrics.clone()),
        });
    }

    /// Appends a failed cell (diagnostic only — failed cells re-run on
    /// resume).
    pub fn record_failed(&self, key: &str, attempts: u32, error: &str) {
        self.record_failed_fenced(key, attempts, 0, error);
    }

    /// Appends a failed cell under a fencing token.
    pub fn record_failed_fenced(&self, key: &str, attempts: u32, fence: u64, error: &str) {
        self.append(JournalLine {
            key: key.to_owned(),
            status: "failed".to_owned(),
            attempts,
            fence,
            error: Some(error.to_owned()),
            metrics: None,
        });
    }

    /// The first append error, if any occurred (checked by the sweep
    /// orchestrator after the run so a broken journal is never silent).
    pub fn take_write_error(&self) -> Option<String> {
        self.inner.lock().expect("journal lock").write_error.take()
    }

    /// Whether an append error is pending (without consuming it).
    pub fn has_write_error(&self) -> bool {
        self.inner
            .lock()
            .expect("journal lock")
            .write_error
            .is_some()
    }

    /// Injects a pending write error, exactly as a failed append would.
    /// Test hook for the must-fail-the-run contract; not for production
    /// use.
    #[doc(hidden)]
    pub fn inject_write_error(&self, msg: &str) {
        self.note_write_error(msg.to_owned());
    }

    fn append(&self, line: JournalLine) {
        let rendered = match serde_json::to_string(&line) {
            Ok(s) => s,
            Err(e) => {
                self.note_write_error(format!("serialize {}: {e}", line.key));
                return;
            }
        };
        let mut inner = self.inner.lock().expect("journal lock");
        let rendered = if inner.crc {
            format!("{:08x} {rendered}", crc32(rendered.as_bytes()))
        } else {
            rendered
        };
        // One write_all per record keeps lines whole under concurrency
        // (the mutex) and leaves at most one torn line after SIGKILL.
        if let Err(e) = inner.file.write_all(format!("{rendered}\n").as_bytes()) {
            let path = self.path.display().to_string();
            inner
                .write_error
                .get_or_insert(format!("append to {path}: {e}"));
            return;
        }
        if line.status == "ok" {
            if let Some(m) = line.metrics {
                inner.failed.remove(&line.key);
                inner.completed.insert(
                    line.key,
                    OkCell {
                        fence: line.fence,
                        attempts: line.attempts,
                        metrics: m,
                    },
                );
            }
        } else if !inner.completed.contains_key(&line.key) {
            inner.failed.insert(
                line.key,
                FailedCell {
                    fence: line.fence,
                    attempts: line.attempts,
                    error: line.error.unwrap_or_default(),
                },
            );
        }
    }

    fn note_write_error(&self, msg: String) {
        self.inner
            .lock()
            .expect("journal lock")
            .write_error
            .get_or_insert(msg);
    }
}

/// A read-only parse of a journal file (no append handle taken).
#[derive(Debug, Default)]
pub struct JournalScan {
    /// Completed cells, last-wins within the file.
    pub completed: HashMap<String, OkCell>,
    /// Terminal failures not superseded by a success.
    pub failed: HashMap<String, FailedCell>,
    /// Parsed record count.
    pub loaded: usize,
    /// Unparseable (crash-torn) lines dropped.
    pub recovered: usize,
    /// Checksum-failed but well-formed lines quarantined (v2 files only).
    pub corrupt: usize,
}

/// Parses a journal file without opening it for append. As lenient as
/// [`Journal::resume`]: a missing, empty, or header-torn file scans as
/// empty (a fleet sibling may have died inside `create`).
///
/// # Errors
///
/// Reports I/O errors and files that are recognizably not dirext
/// journals.
pub fn scan(path: impl AsRef<Path>) -> Result<JournalScan, JournalError> {
    let path = path.as_ref();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(JournalError(format!("cannot read {}: {e}", path.display()))),
    };
    let crc = match check_header(&text) {
        HeaderCheck::Ok { crc } => crc,
        HeaderCheck::Fresh { recovered } => {
            return Ok(JournalScan {
                recovered,
                ..JournalScan::default()
            })
        }
        HeaderCheck::Foreign => {
            return Err(JournalError(format!(
                "{} is not a dirext journal (expected a `{HEADER_V2}` or `{HEADER}` header)",
                path.display()
            )));
        }
    };
    Ok(parse_records(text.lines().skip(1), crc))
}

/// What [`assemble`] folded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleSummary {
    /// Worker journals read.
    pub workers: usize,
    /// Distinct completed cells in the merged journal.
    pub cells: usize,
    /// Distinct terminally-failed (quarantined) cells.
    pub failed: usize,
    /// Crash-torn lines dropped across all inputs.
    pub recovered: usize,
    /// Checksum-failed lines quarantined across all inputs.
    pub corrupt: usize,
}

/// Folds one-or-many worker journals into a single merged journal at
/// `out`, overwriting it. Duplicate keys resolve **last-wins by fencing
/// token**: the record with the highest fence is kept (on a tie, the
/// journal later in sorted-by-path order wins — ties only occur for
/// unfenced records, where any copy is equally authoritative). A success
/// under any fence outranks a stale failure. Output records are sorted
/// by key, so the merged file is byte-deterministic regardless of which
/// worker computed which cell.
///
/// # Errors
///
/// Reports I/O errors, unreadable inputs, and an empty `paths` list.
pub fn assemble(paths: &[PathBuf], out: &Path) -> Result<AssembleSummary, JournalError> {
    if paths.is_empty() {
        return Err(JournalError("assemble: no worker journals to fold".into()));
    }
    let mut paths = paths.to_vec();
    paths.sort();
    let mut completed: HashMap<String, OkCell> = HashMap::new();
    let mut failed: HashMap<String, FailedCell> = HashMap::new();
    let mut recovered = 0usize;
    let mut corrupt = 0usize;
    for path in &paths {
        let scan = scan(path)?;
        recovered += scan.recovered;
        corrupt += scan.corrupt;
        for (key, cell) in scan.completed {
            match completed.get(&key) {
                Some(cur) if cur.fence > cell.fence => {}
                _ => {
                    completed.insert(key, cell);
                }
            }
        }
        for (key, cell) in scan.failed {
            match failed.get(&key) {
                Some(cur) if cur.fence > cell.fence => {}
                _ => {
                    failed.insert(key, cell);
                }
            }
        }
    }
    failed.retain(|k, _| !completed.contains_key(k));
    let mut text = String::from(HEADER_V2);
    text.push('\n');
    let render = |line: &JournalLine| -> Result<String, JournalError> {
        serde_json::to_string(line)
            .map(|json| format!("{:08x} {json}", crc32(json.as_bytes())))
            .map_err(|e| JournalError(format!("assemble: serialize {}: {e}", line.key)))
    };
    let mut ok_keys: Vec<&String> = completed.keys().collect();
    ok_keys.sort();
    for key in ok_keys {
        let cell = &completed[key];
        text.push_str(&render(&JournalLine {
            key: key.clone(),
            status: "ok".to_owned(),
            attempts: cell.attempts,
            fence: cell.fence,
            error: None,
            metrics: Some(cell.metrics.clone()),
        })?);
        text.push('\n');
    }
    let mut failed_keys: Vec<&String> = failed.keys().collect();
    failed_keys.sort();
    for key in failed_keys {
        let cell = &failed[key];
        text.push_str(&render(&JournalLine {
            key: key.clone(),
            status: "failed".to_owned(),
            attempts: cell.attempts,
            fence: cell.fence,
            error: Some(cell.error.clone()),
            metrics: None,
        })?);
        text.push('\n');
    }
    std::fs::write(out, text)
        .map_err(|e| JournalError(format!("assemble: cannot write {}: {e}", out.display())))?;
    Ok(AssembleSummary {
        workers: paths.len(),
        cells: completed.len(),
        failed: failed.len(),
        recovered,
        corrupt,
    })
}

/// Builds the deterministic cell key for one simulator configuration (see
/// the module docs for the format).
// Every argument is one key segment; a params struct would only move the
// eight names one call-site away.
#[allow(clippy::too_many_arguments)]
pub fn cell_key(
    driver: &str,
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
    dir: DirOrg,
    variant: &str,
    fault: Option<&FaultPlan>,
) -> String {
    let net = match network {
        NetworkKind::Uniform => "uniform".to_owned(),
        NetworkKind::Mesh { link_bits } => format!("mesh{link_bits}"),
        NetworkKind::HierMesh { link_bits } => format!("hmesh{link_bits}"),
        NetworkKind::Ring { link_bits } => format!("ring{link_bits}"),
    };
    let cons = match consistency {
        Consistency::Rc => "RC",
        Consistency::Sc => "SC",
    };
    let fault = match fault {
        Some(f) if f.is_active() => format!(
            "f=s{}.d{}.u{}.j{}.r{}.b{}",
            f.seed, f.drop_permille, f.dup_permille, f.jitter_cycles, f.retry_budget, f.retry_base
        ),
        _ => "f=none".to_owned(),
    };
    // Full-map cells keep the pre-directory-axis key shape so existing
    // journals stay resumable byte for byte.
    let dir = match dir {
        DirOrg::FullMap => String::new(),
        other => format!("/dir={}", other.cli_name()),
    };
    format!(
        "{driver}/{}@{}.{}.{}/{}/{cons}/{net}/{variant}/{fault}{dir}",
        workload.name(),
        workload.procs(),
        workload.total_events(),
        workload.total_data_refs(),
        kind.name(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dirext-journal-unit-{}-{name}", std::process::id()))
    }

    fn sample_metrics(exec: u64) -> Metrics {
        Metrics {
            workload: "demo".into(),
            protocol: "BASIC".into(),
            consistency: "RC".into(),
            network: "uniform-54".into(),
            procs: 4,
            exec_cycles: exec,
            ..Metrics::default()
        }
    }

    #[test]
    fn round_trip_and_resume() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).expect("create");
        j.record_ok("a/b/c", 1, &sample_metrics(123));
        j.record_failed("a/b/d", 3, "watchdog fired:\nmulti-line\n\"detail\"");
        drop(j);
        let j = Journal::resume(&path).expect("resume");
        assert_eq!(j.loaded_records(), 2);
        assert_eq!(j.completed_cells(), 1);
        assert_eq!(j.lookup("a/b/c").expect("hit").exec_cycles, 123);
        assert!(j.lookup("a/b/d").is_none(), "failed cells must re-run");
        assert!(j.is_failed("a/b/d"));
        let fc = j.failed_cell("a/b/d").expect("diagnostics survive resume");
        assert_eq!(fc.attempts, 3);
        assert!(fc.error.contains("watchdog"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_recovered() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).expect("create");
        j.record_ok("k1", 1, &sample_metrics(1));
        j.record_ok("k2", 1, &sample_metrics(2));
        drop(j);
        // Chop the file mid-way through the last record, as SIGKILL would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();
        let j = Journal::resume(&path).expect("resume survives torn tail");
        assert_eq!(j.completed_cells(), 1);
        assert_eq!(j.recovered_lines(), 1);
        assert!(j.lookup("k1").is_some());
        assert!(j.lookup("k2").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_refuses_existing_and_resume_rejects_foreign_files() {
        let path = tmp("guard");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(Journal::create(&path).is_err());
        assert!(Journal::resume(&path).is_err());
        assert!(scan(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_missing_file_starts_fresh() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let j = Journal::resume(&path).expect("fresh");
        assert_eq!(j.completed_cells(), 0);
        assert_eq!(j.loaded_records(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_zero_length_file_starts_fresh() {
        let path = tmp("zero");
        std::fs::write(&path, "").unwrap();
        let j = Journal::resume(&path).expect("zero-length file is a fresh journal");
        assert_eq!(j.completed_cells(), 0);
        assert_eq!(j.recovered_lines(), 0);
        j.record_ok("z1", 1, &sample_metrics(7));
        drop(j);
        let j = Journal::resume(&path).expect("and it round-trips");
        assert_eq!(j.lookup("z1").expect("hit").exec_cycles, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_truncated_header_starts_fresh() {
        let path = tmp("torn-header");
        // SIGKILL mid-`create`: a strict prefix of the header, no newline.
        std::fs::write(&path, &HEADER[..HEADER.len() / 2]).unwrap();
        let j = Journal::resume(&path).expect("torn header is recoverable");
        assert_eq!(j.completed_cells(), 0);
        assert_eq!(
            j.recovered_lines(),
            1,
            "the torn header counts as recovered"
        );
        j.record_ok("t1", 1, &sample_metrics(9));
        drop(j);
        let j = Journal::resume(&path).expect("rewritten header round-trips");
        assert_eq!(j.lookup("t1").expect("hit").exec_cycles, 9);
        // But a complete first line that is not our header stays foreign.
        std::fs::write(&path, "{\"other\":1}\n").unwrap();
        assert!(Journal::resume(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_fence_records_load_as_fence_zero() {
        let path = tmp("prefence");
        let metrics_json = serde_json::to_string(&sample_metrics(5)).unwrap();
        std::fs::write(
            &path,
            format!(
                "{HEADER}\n{{\"key\":\"old/cell\",\"status\":\"ok\",\"attempts\":1,\
                 \"error\":null,\"metrics\":{metrics_json}}}\n"
            ),
        )
        .unwrap();
        let j = Journal::resume(&path).expect("pre-fence journal loads");
        assert_eq!(j.recovered_lines(), 0, "old records are not dropped");
        assert_eq!(j.lookup_fenced("old/cell").expect("hit").0, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_a_record_is_quarantined_not_merged() {
        let path = tmp("bitflip");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).expect("create");
        j.record_ok("cell/clean", 1, &sample_metrics(111));
        j.record_ok("cell/flipped", 1, &sample_metrics(999));
        drop(j);
        // Flip one bit inside a digit of the second record's metrics. The
        // line stays perfectly well-formed JSON — only the checksum can
        // tell the record was altered after it was written.
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes
            .windows(3)
            .position(|w| w == b"999")
            .expect("the corrupted value is in the file");
        bytes[pos] ^= 0x01; // '9' (0x39) -> '8' (0x38)
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::resume(&path).expect("resume survives corruption");
        assert_eq!(j.corrupt_lines(), 1, "the flipped line is quarantined");
        assert_eq!(j.recovered_lines(), 0, "corruption is not a torn tail");
        assert_eq!(j.lookup("cell/clean").expect("hit").exec_cycles, 111);
        assert!(
            j.lookup("cell/flipped").is_none(),
            "the altered record must not be merged; its cell re-runs"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_journals_load_and_keep_appending_v1_lines() {
        let path = tmp("v1-compat");
        let metrics_json = serde_json::to_string(&sample_metrics(5)).unwrap();
        std::fs::write(
            &path,
            format!(
                "{HEADER}\n{{\"key\":\"old/cell\",\"status\":\"ok\",\"attempts\":1,\
                 \"fence\":0,\"error\":null,\"metrics\":{metrics_json}}}\n"
            ),
        )
        .unwrap();
        let j = Journal::resume(&path).expect("version-1 journal loads");
        assert_eq!(j.corrupt_lines(), 0);
        assert_eq!(j.lookup("old/cell").expect("hit").exec_cycles, 5);
        // Appends must match the file's own version, or a later resume
        // would see checksum prefixes as garbage.
        j.record_ok("new/cell", 1, &sample_metrics(6));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().skip(1).all(|l| l.starts_with('{')),
            "v1 files must stay checksum-free: {text}"
        );
        let j = Journal::resume(&path).expect("mixed-age v1 journal round-trips");
        assert_eq!(j.loaded_records(), 2);
        assert_eq!(j.lookup("new/cell").expect("hit").exec_cycles, 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn new_journals_checksum_every_line() {
        let path = tmp("v2-lines");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).expect("create");
        j.record_ok("k", 1, &sample_metrics(1));
        j.record_failed("k2", 2, "boom");
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(HEADER_V2));
        for line in lines {
            let (stored, payload) = split_crc(line).expect("crc prefix");
            assert_eq!(stored, crc32(payload.as_bytes()), "checksum holds: {line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn assemble_duplicate_keys_resolve_by_fence() {
        let dir = tmp("assemble");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("worker-a.jsonl");
        let b = dir.join("worker-b.jsonl");
        // Worker a completed the cell under fence 3 *after* worker b's
        // stale fence-2 completion; metrics deliberately differ so the
        // assertion can tell which record won.
        let ja = Journal::create(&a).unwrap();
        ja.record_ok_fenced("s/dup", 1, 3, &sample_metrics(300));
        ja.record_ok_fenced("s/only-a", 1, 1, &sample_metrics(11));
        drop(ja);
        let jb = Journal::create(&b).unwrap();
        jb.record_ok_fenced("s/dup", 1, 2, &sample_metrics(200));
        jb.record_ok_fenced("s/only-b", 1, 1, &sample_metrics(22));
        jb.record_failed_fenced("s/bad", 2, 1, "deadlock");
        drop(jb);
        let out = dir.join("assembled.jsonl");
        let summary = assemble(&[b.clone(), a.clone()], &out).expect("assemble");
        assert_eq!(summary.workers, 2);
        assert_eq!(summary.cells, 3);
        assert_eq!(summary.failed, 1);
        let merged = Journal::resume(&out).expect("merged journal loads");
        let (fence, m) = merged.lookup_fenced("s/dup").expect("dup resolved");
        assert_eq!(fence, 3, "highest fence wins");
        assert_eq!(m.exec_cycles, 300, "the fence-3 record's metrics won");
        assert!(merged.lookup("s/only-a").is_some());
        assert!(merged.lookup("s/only-b").is_some());
        assert!(merged.is_failed("s/bad"));
        // Assembly is byte-deterministic regardless of input order.
        let out2 = dir.join("assembled2.jsonl");
        assemble(&[a, b], &out2).expect("assemble again");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&out2).unwrap(),
            "merged bytes are independent of input order"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn assemble_success_outranks_stale_failure() {
        let dir = tmp("assemble-fail");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("worker-a.jsonl");
        let b = dir.join("worker-b.jsonl");
        let ja = Journal::create(&a).unwrap();
        ja.record_failed_fenced("s/cell", 3, 1, "watchdog");
        drop(ja);
        let jb = Journal::create(&b).unwrap();
        jb.record_ok_fenced("s/cell", 1, 2, &sample_metrics(42));
        drop(jb);
        let out = dir.join("assembled.jsonl");
        let summary = assemble(&[a, b], &out).expect("assemble");
        assert_eq!(summary.cells, 1);
        assert_eq!(summary.failed, 0, "the success shadows the failure");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_config_matches_any_driver() {
        let path = tmp("suffix");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).unwrap();
        j.record_ok(
            "zeta/W@2.1.1/BASIC/RC/uniform/base/f=none",
            1,
            &sample_metrics(1),
        );
        j.record_ok(
            "alpha/W@2.1.1/BASIC/RC/uniform/base/f=none",
            1,
            &sample_metrics(2),
        );
        let (key, _) = j
            .lookup_config("W@2.1.1/BASIC/RC/uniform/base/f=none")
            .expect("suffix hit");
        assert_eq!(key, "alpha/W@2.1.1/BASIC/RC/uniform/base/f=none");
        assert!(j
            .lookup_config("W@2.1.1/BASIC/SC/uniform/base/f=none")
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_error_injection_is_sticky_until_taken() {
        let path = tmp("werr");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).unwrap();
        assert!(!j.has_write_error());
        j.inject_write_error("disk full (simulated)");
        j.inject_write_error("second error must not overwrite the first");
        assert!(j.has_write_error());
        let msg = j.take_write_error().expect("pending error");
        assert!(msg.contains("disk full"));
        assert!(!j.has_write_error());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keys_distinguish_every_axis() {
        use dirext_trace::{MemEvent, Program};
        let w = |n: usize| {
            Workload::new(
                "W",
                (0..n)
                    .map(|_| Program::from_events(vec![MemEvent::Read(dirext_trace::Addr::new(0))]))
                    .collect(),
            )
        };
        let w2 = w(2);
        let base = cell_key(
            "fig2",
            &w2,
            ProtocolKind::Basic,
            Consistency::Rc,
            NetworkKind::Uniform,
            DirOrg::FullMap,
            "base",
            None,
        );
        let others = [
            cell_key(
                "fig3",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                DirOrg::FullMap,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w(3),
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                DirOrg::FullMap,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::P,
                Consistency::Rc,
                NetworkKind::Uniform,
                DirOrg::FullMap,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Sc,
                NetworkKind::Uniform,
                DirOrg::FullMap,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Mesh { link_bits: 32 },
                DirOrg::FullMap,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                DirOrg::FullMap,
                "flwb4",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                DirOrg::FullMap,
                "base",
                Some(&FaultPlan {
                    drop_permille: 5,
                    ..FaultPlan::seeded(9)
                }),
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                DirOrg::LimitedPtr {
                    ptrs: 4,
                    broadcast: true,
                },
                "base",
                None,
            ),
        ];
        for other in &others {
            assert_ne!(&base, other);
        }
    }

    #[test]
    fn full_map_keys_keep_the_historical_shape() {
        use dirext_trace::{MemEvent, Program};
        let w = Workload::new(
            "W",
            vec![Program::from_events(vec![MemEvent::Read(
                dirext_trace::Addr::new(0),
            )])],
        );
        let key = cell_key(
            "fig2",
            &w,
            ProtocolKind::Basic,
            Consistency::Rc,
            NetworkKind::Uniform,
            DirOrg::FullMap,
            "base",
            None,
        );
        assert!(
            key.ends_with("/f=none"),
            "full-map keys must not grow a dir segment: {key}"
        );
        let scaled = cell_key(
            "dirscale",
            &w,
            ProtocolKind::Basic,
            Consistency::Rc,
            NetworkKind::HierMesh { link_bits: 64 },
            DirOrg::CoarseVector { region: 8 },
            "base",
            None,
        );
        assert!(
            scaled.ends_with("/f=none/dir=coarse8"),
            "non-default organizations tag the key: {scaled}"
        );
    }
}
