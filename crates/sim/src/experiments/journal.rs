//! Append-only sweep journal: a write-ahead log of completed cells.
//!
//! A full paper sweep is hundreds of independent machine runs ("cells").
//! The journal makes that fleet crash-safe: every finished cell is
//! appended to a JSONL file *before* the sweep moves on, so a killed or
//! interrupted run can be re-launched with `--resume` and skip every cell
//! that already completed. Because [`Metrics`] is built entirely from
//! integers, strings and integer vectors, the stored record round-trips
//! exactly and a resumed sweep reassembles **byte-identical** artifacts
//! versus an uninterrupted run.
//!
//! # Cell keys
//!
//! Each cell is identified by a deterministic, self-describing key:
//!
//! ```text
//! driver/workload@procs.events.refs/protocol/consistency/network/variant/fault
//! e.g.  fig2/MP3D@16.48576.23712/P+CW/RC/uniform/base/f=none
//! ```
//!
//! The workload component carries a content fingerprint (processor count,
//! total events, total shared references) so the same application at a
//! different `--scale` or `--procs` never collides; the variant tags a
//! timing override (the §5.4 sensitivity runs); the fault component
//! encodes the full fault plan. Journals from unrelated sweeps can
//! therefore share a file without ambiguity — a lookup simply misses.
//!
//! # File format
//!
//! Line 1 is the header [`HEADER`]; every further line is one JSON
//! record: `status` is `"ok"` (with the full metrics) or
//! `"failed"` (with the error text and attempt count). Records are
//! written under a lock with a single `write_all` and duplicate keys are
//! resolved last-wins, so concurrent workers and re-runs are safe. A
//! crash can at worst truncate the final line; unparseable trailing lines
//! are dropped on load and counted in [`Journal::recovered_lines`].
//! Failed cells are *not* treated as completed — a resumed sweep runs
//! them again.

use std::collections::HashMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dirext_core::{Consistency, ProtocolKind};
use dirext_network::FaultPlan;
use dirext_stats::Metrics;
use dirext_trace::Workload;
use serde::{Deserialize, Serialize};

use crate::NetworkKind;

/// First line of every journal file; identifies the format version.
pub const HEADER: &str = "{\"dirext_journal\":1}";

/// One record of the journal file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalLine {
    /// The cell key (see the module docs).
    key: String,
    /// `"ok"` or `"failed"`.
    status: String,
    /// How many attempts the cell took (1 = first try).
    attempts: u32,
    /// The rendered error for failed cells.
    error: Option<String>,
    /// The full result record for completed cells.
    metrics: Option<Metrics>,
}

/// A journal open/parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError(String);

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal: {}", self.0)
    }
}

impl std::error::Error for JournalError {}

struct Inner {
    file: std::fs::File,
    /// Completed cells only (failed cells must re-run on resume).
    completed: HashMap<String, Metrics>,
    /// Set when an append fails; surfaces as a sweep error so an
    /// interrupted run is never silently un-resumable.
    write_error: Option<String>,
}

/// The append-only sweep journal. Thread-safe: sweep workers record cells
/// concurrently.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
    loaded: usize,
    recovered: usize,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("loaded", &self.loaded)
            .field("recovered", &self.recovered)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates a fresh journal at `path`, writing the header line.
    ///
    /// # Errors
    ///
    /// Refuses to overwrite an existing non-empty file (pass it to
    /// [`Journal::resume`] instead, or delete it), and reports I/O errors.
    pub fn create(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        if let Ok(meta) = std::fs::metadata(path) {
            if meta.len() > 0 {
                return Err(JournalError(format!(
                    "{} already exists; resume it with --resume or delete it first",
                    path.display()
                )));
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError(format!("cannot create {}: {e}", path.display())))?;
        file.write_all(format!("{HEADER}\n").as_bytes())
            .map_err(|e| JournalError(format!("cannot write {}: {e}", path.display())))?;
        Ok(Journal {
            path: path.to_owned(),
            inner: Mutex::new(Inner {
                file,
                completed: HashMap::new(),
                write_error: None,
            }),
            loaded: 0,
            recovered: 0,
        })
    }

    /// Opens an existing journal and loads its completed cells; a missing
    /// file starts a fresh journal (so `--resume` on the first run of a
    /// sweep just works).
    ///
    /// Unparseable lines — the typical aftermath of a `SIGKILL` landing
    /// mid-append — are dropped and counted in
    /// [`Journal::recovered_lines`]; the cells they would have recorded
    /// simply run again.
    ///
    /// # Errors
    ///
    /// Reports I/O errors and files that are not dirext journals.
    pub fn resume(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Journal::create(path);
            }
            Err(e) => return Err(JournalError(format!("cannot read {}: {e}", path.display()))),
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(JournalError(format!(
                "{} is not a dirext journal (missing `{HEADER}` header)",
                path.display()
            )));
        }
        let mut completed = HashMap::new();
        let mut loaded = 0usize;
        let mut recovered = 0usize;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalLine>(line) {
                Ok(rec) => {
                    loaded += 1;
                    if rec.status == "ok" {
                        if let Some(m) = rec.metrics {
                            // Last record wins: a re-run overrides history.
                            completed.insert(rec.key, m);
                        }
                    } else {
                        // A later failure invalidates an earlier success
                        // only if it is for the same key *after* it; keep
                        // the success (deterministic cells cannot regress
                        // without a code change, and re-running is safe).
                    }
                }
                Err(_) => recovered += 1,
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError(format!("cannot append to {}: {e}", path.display())))?;
        Ok(Journal {
            path: path.to_owned(),
            inner: Mutex::new(Inner {
                file,
                completed,
                write_error: None,
            }),
            loaded,
            recovered,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records loaded from an existing file by [`Journal::resume`].
    pub fn loaded_records(&self) -> usize {
        self.loaded
    }

    /// Unparseable (crash-truncated) lines dropped on load.
    pub fn recovered_lines(&self) -> usize {
        self.recovered
    }

    /// Number of distinct completed cells currently known.
    pub fn completed_cells(&self) -> usize {
        self.inner.lock().expect("journal lock").completed.len()
    }

    /// The stored metrics for `key`, if that cell already completed.
    pub fn lookup(&self, key: &str) -> Option<Metrics> {
        self.inner
            .lock()
            .expect("journal lock")
            .completed
            .get(key)
            .cloned()
    }

    /// Appends a completed cell (flushed before returning).
    pub fn record_ok(&self, key: &str, attempts: u32, metrics: &Metrics) {
        self.append(JournalLine {
            key: key.to_owned(),
            status: "ok".to_owned(),
            attempts,
            error: None,
            metrics: Some(metrics.clone()),
        });
    }

    /// Appends a failed cell (diagnostic only — failed cells re-run on
    /// resume).
    pub fn record_failed(&self, key: &str, attempts: u32, error: &str) {
        self.append(JournalLine {
            key: key.to_owned(),
            status: "failed".to_owned(),
            attempts,
            error: Some(error.to_owned()),
            metrics: None,
        });
    }

    /// The first append error, if any occurred (checked by the sweep
    /// orchestrator after the run so a broken journal is never silent).
    pub fn take_write_error(&self) -> Option<String> {
        self.inner.lock().expect("journal lock").write_error.take()
    }

    fn append(&self, line: JournalLine) {
        let rendered = match serde_json::to_string(&line) {
            Ok(s) => s,
            Err(e) => {
                self.note_write_error(format!("serialize {}: {e}", line.key));
                return;
            }
        };
        let mut inner = self.inner.lock().expect("journal lock");
        // One write_all per record keeps lines whole under concurrency
        // (the mutex) and leaves at most one torn line after SIGKILL.
        if let Err(e) = inner.file.write_all(format!("{rendered}\n").as_bytes()) {
            let path = self.path.display().to_string();
            inner
                .write_error
                .get_or_insert(format!("append to {path}: {e}"));
            return;
        }
        if line.status == "ok" {
            if let Some(m) = line.metrics {
                inner.completed.insert(line.key, m);
            }
        }
    }

    fn note_write_error(&self, msg: String) {
        self.inner
            .lock()
            .expect("journal lock")
            .write_error
            .get_or_insert(msg);
    }
}

/// Builds the deterministic cell key for one simulator configuration (see
/// the module docs for the format).
pub fn cell_key(
    driver: &str,
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
    variant: &str,
    fault: Option<&FaultPlan>,
) -> String {
    let net = match network {
        NetworkKind::Uniform => "uniform".to_owned(),
        NetworkKind::Mesh { link_bits } => format!("mesh{link_bits}"),
        NetworkKind::Ring { link_bits } => format!("ring{link_bits}"),
    };
    let cons = match consistency {
        Consistency::Rc => "RC",
        Consistency::Sc => "SC",
    };
    let fault = match fault {
        Some(f) if f.is_active() => format!(
            "f=s{}.d{}.u{}.j{}.r{}.b{}",
            f.seed, f.drop_permille, f.dup_permille, f.jitter_cycles, f.retry_budget, f.retry_base
        ),
        _ => "f=none".to_owned(),
    };
    format!(
        "{driver}/{}@{}.{}.{}/{}/{cons}/{net}/{variant}/{fault}",
        workload.name(),
        workload.procs(),
        workload.total_events(),
        workload.total_data_refs(),
        kind.name(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dirext-journal-unit-{}-{name}", std::process::id()))
    }

    fn sample_metrics(exec: u64) -> Metrics {
        Metrics {
            workload: "demo".into(),
            protocol: "BASIC".into(),
            consistency: "RC".into(),
            network: "uniform-54".into(),
            procs: 4,
            exec_cycles: exec,
            ..Metrics::default()
        }
    }

    #[test]
    fn round_trip_and_resume() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).expect("create");
        j.record_ok("a/b/c", 1, &sample_metrics(123));
        j.record_failed("a/b/d", 3, "watchdog fired:\nmulti-line\n\"detail\"");
        drop(j);
        let j = Journal::resume(&path).expect("resume");
        assert_eq!(j.loaded_records(), 2);
        assert_eq!(j.completed_cells(), 1);
        assert_eq!(j.lookup("a/b/c").expect("hit").exec_cycles, 123);
        assert!(j.lookup("a/b/d").is_none(), "failed cells must re-run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_recovered() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path).expect("create");
        j.record_ok("k1", 1, &sample_metrics(1));
        j.record_ok("k2", 1, &sample_metrics(2));
        drop(j);
        // Chop the file mid-way through the last record, as SIGKILL would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();
        let j = Journal::resume(&path).expect("resume survives torn tail");
        assert_eq!(j.completed_cells(), 1);
        assert_eq!(j.recovered_lines(), 1);
        assert!(j.lookup("k1").is_some());
        assert!(j.lookup("k2").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_refuses_existing_and_resume_rejects_foreign_files() {
        let path = tmp("guard");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(Journal::create(&path).is_err());
        assert!(Journal::resume(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_missing_file_starts_fresh() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let j = Journal::resume(&path).expect("fresh");
        assert_eq!(j.completed_cells(), 0);
        assert_eq!(j.loaded_records(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keys_distinguish_every_axis() {
        use dirext_trace::{MemEvent, Program};
        let w = |n: usize| {
            Workload::new(
                "W",
                (0..n)
                    .map(|_| {
                        Program::from_events(vec![MemEvent::Read(dirext_trace::Addr::new(0))])
                    })
                    .collect(),
            )
        };
        let w2 = w(2);
        let base = cell_key(
            "fig2",
            &w2,
            ProtocolKind::Basic,
            Consistency::Rc,
            NetworkKind::Uniform,
            "base",
            None,
        );
        let others = [
            cell_key(
                "fig3",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w(3),
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::P,
                Consistency::Rc,
                NetworkKind::Uniform,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Sc,
                NetworkKind::Uniform,
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Mesh { link_bits: 32 },
                "base",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                "flwb4",
                None,
            ),
            cell_key(
                "fig2",
                &w2,
                ProtocolKind::Basic,
                Consistency::Rc,
                NetworkKind::Uniform,
                "base",
                Some(&FaultPlan {
                    drop_permille: 5,
                    ..FaultPlan::seeded(9)
                }),
            ),
        ];
        for other in &others {
            assert_ne!(&base, other);
        }
    }
}
