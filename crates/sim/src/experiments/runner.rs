//! Shared run helpers for the experiment drivers.

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_memsys::Timing;
use dirext_network::FaultPlan;
use dirext_stats::Metrics;
use dirext_trace::Workload;

use crate::{Machine, MachineConfig, NetworkKind, SimError};

/// Options shared by every sweep driver's `*_with` variant.
///
/// `jobs` sets the worker-thread count for [`super::pool::run_ordered`]
/// (0 or 1 = run inline); `fault` optionally overlays a fault-injection
/// plan on every run of the sweep, which the determinism tests use to
/// cover the faulty-network path under parallel execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOpts {
    /// Worker threads for the sweep (0 or 1 = serial inline).
    pub jobs: usize,
    /// Fault plan applied to every run, if any.
    pub fault: Option<FaultPlan>,
}

impl SweepOpts {
    /// Options running on `jobs` worker threads, no fault injection.
    pub fn jobs(jobs: usize) -> Self {
        SweepOpts { jobs, fault: None }
    }

    /// Returns these options with `fault` overlaid on every run.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Runs `workload` on the paper's 16-node machine (or `workload.procs()`
/// nodes) under `kind` × `consistency` with the default uniform network.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn run_protocol(
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
) -> Result<Metrics, SimError> {
    run_protocol_on(workload, kind, consistency, NetworkKind::Uniform, None)
}

/// [`run_protocol`] with an explicit network and optional timing override.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn run_protocol_on(
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
    timing: Option<Timing>,
) -> Result<Metrics, SimError> {
    run_protocol_cfg(workload, kind, consistency, network, timing, None)
}

/// The fully-general run helper: explicit network, optional timing
/// override, optional fault plan. Every sweep configuration bottoms out
/// here.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn run_protocol_cfg(
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
    timing: Option<Timing>,
    fault: Option<FaultPlan>,
) -> Result<Metrics, SimError> {
    let mut cfg = MachineConfig::new(workload.procs(), kind.config(consistency));
    cfg = cfg.with_network(network);
    if let Some(t) = timing {
        cfg = cfg.with_timing(t);
    }
    if let Some(p) = fault {
        cfg = cfg.with_faults(p);
    }
    Machine::new(cfg).run(workload)
}
