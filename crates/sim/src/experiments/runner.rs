//! Shared run helpers for the experiment drivers.

use dirext_core::config::Consistency;
use dirext_core::ProtocolKind;
use dirext_memsys::Timing;
use dirext_stats::Metrics;
use dirext_trace::Workload;

use crate::{Machine, MachineConfig, NetworkKind, SimError};

/// Runs `workload` on the paper's 16-node machine (or `workload.procs()`
/// nodes) under `kind` × `consistency` with the default uniform network.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn run_protocol(
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
) -> Result<Metrics, SimError> {
    run_protocol_on(workload, kind, consistency, NetworkKind::Uniform, None)
}

/// [`run_protocol`] with an explicit network and optional timing override.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn run_protocol_on(
    workload: &Workload,
    kind: ProtocolKind,
    consistency: Consistency,
    network: NetworkKind,
    timing: Option<Timing>,
) -> Result<Metrics, SimError> {
    let mut cfg = MachineConfig::new(workload.procs(), kind.config(consistency));
    cfg = cfg.with_network(network);
    if let Some(t) = timing {
        cfg = cfg.with_timing(t);
    }
    Machine::new(cfg).run(workload)
}
